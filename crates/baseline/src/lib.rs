//! A Berkeley-DB-like embedded storage engine.
//!
//! The TDB paper's evaluation (§7) compares against Berkeley DB 3.0.55 — a
//! conventional page-oriented embedded database: update-in-place B-trees
//! over fixed-size pages, a buffer pool, and a write-ahead log carrying
//! record-level before/after images, with one map per database and
//! immutable keys. Since that binary is not available here, this crate
//! implements the same architecture class from scratch so the comparison
//! measures *architectures* (update-in-place + WAL vs. TDB's log-structured
//! store), not implementations.
//!
//! Design points mirrored from Berkeley DB:
//!
//! * **4 KiB pages** in a single database file, cached in a buffer pool;
//! * **B-tree access method**, one tree per named database, variable-size
//!   keys/values, *immutable keys* (the restriction the paper calls out in
//!   §7.1 — no functional indexes, no multi-index maintenance);
//! * **write-ahead logging**: record-level before/after images appended to
//!   a log that is synced at commit (the paper configured `WRITE_THROUGH`);
//!   this is why Berkeley DB "writes approximately twice as much data per
//!   transaction as TDB" (§7.4) — each update logs both images;
//! * **no-force** page management: dirty pages reach the file only at
//!   checkpoints or under cache pressure (and never while an uncommitted
//!   transaction's changes sit on them); redo-only recovery replays
//!   committed operations from the log;
//! * the log is **not checkpointed during benchmarks** (the paper notes
//!   Berkeley DB "does not checkpoint the log during the benchmark", which
//!   is why its on-disk footprint in Figure 11 keeps growing).
//!
//! No encryption, hashing, or tamper detection — exactly the functionality
//! gap the paper highlights.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod env;
pub mod error;
pub mod pagefile;
pub mod wal;

pub use env::{BaselineConfig, DbId, Env, Txn};
pub use error::{BaselineError, Result};

/// Page size in bytes (Berkeley DB's default).
pub const PAGE_SIZE: usize = 4096;
