//! The write-ahead log: record-level before/after images.
//!
//! Like Berkeley DB's log, each update carries both the old and the new
//! value — the before image supports in-memory rollback of aborted
//! transactions, and the pair is why the baseline "writes approximately
//! twice as much data per transaction as TDB" (paper §7.4). Records are
//! buffered in memory and flushed + synced when a transaction commits
//! (`WRITE_THROUGH` in the paper's configuration). Recovery replays the
//! operations of committed transactions in log order; the log is truncated
//! at checkpoints (which the TPC-B benchmark never takes, matching the
//! paper's observation that Berkeley DB's footprint keeps growing).

use crate::error::{BaselineError, Result};
use tdb_platform::RandomAccessFile;

/// A logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A database was created.
    CreateDb {
        /// Transaction id.
        txn: u64,
        /// Database name.
        name: String,
    },
    /// Insert or update.
    Put {
        /// Transaction id.
        txn: u64,
        /// Database index (position in the environment's catalog).
        db: u16,
        /// Key bytes.
        key: Vec<u8>,
        /// Before image (`None` for a fresh insert).
        old: Option<Vec<u8>>,
        /// After image.
        new: Vec<u8>,
    },
    /// Delete.
    Del {
        /// Transaction id.
        txn: u64,
        /// Database index.
        db: u16,
        /// Key bytes.
        key: Vec<u8>,
        /// Before image.
        old: Vec<u8>,
    },
    /// Transaction committed.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// Transaction aborted (informational; aborted ops are never redone).
    Abort {
        /// Transaction id.
        txn: u64,
    },
}

fn fnv(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(16777619);
    }
    h
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::CreateDb { txn, name } => {
                out.push(0);
                out.extend_from_slice(&txn.to_le_bytes());
                put_bytes(&mut out, name.as_bytes());
            }
            WalRecord::Put {
                txn,
                db,
                key,
                old,
                new,
            } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&db.to_le_bytes());
                put_bytes(&mut out, key);
                match old {
                    Some(old) => {
                        out.push(1);
                        put_bytes(&mut out, old);
                    }
                    None => out.push(0),
                }
                put_bytes(&mut out, new);
            }
            WalRecord::Del { txn, db, key, old } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&db.to_le_bytes());
                put_bytes(&mut out, key);
                put_bytes(&mut out, old);
            }
            WalRecord::Commit { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
            }
        }
        out
    }

    fn decode_payload(bytes: &[u8]) -> Result<WalRecord> {
        let corrupt = |m: &str| BaselineError::Corrupt(format!("wal record: {m}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(corrupt("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let get_bytes = |pos: &mut usize| -> Result<Vec<u8>> {
            let len = u32::from_le_bytes(take(pos, 4)?.try_into().expect("4")) as usize;
            Ok(take(pos, len)?.to_vec())
        };
        let tag = take(&mut pos, 1)?[0];
        let txn = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let rec = match tag {
            0 => {
                let name =
                    String::from_utf8(get_bytes(&mut pos)?).map_err(|_| corrupt("bad db name"))?;
                WalRecord::CreateDb { txn, name }
            }
            1 => {
                let db = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2"));
                let key = get_bytes(&mut pos)?;
                let old = match take(&mut pos, 1)?[0] {
                    0 => None,
                    1 => Some(get_bytes(&mut pos)?),
                    _ => return Err(corrupt("bad option tag")),
                };
                let new = get_bytes(&mut pos)?;
                WalRecord::Put {
                    txn,
                    db,
                    key,
                    old,
                    new,
                }
            }
            2 => {
                let db = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2"));
                let key = get_bytes(&mut pos)?;
                let old = get_bytes(&mut pos)?;
                WalRecord::Del { txn, db, key, old }
            }
            3 => WalRecord::Commit { txn },
            4 => WalRecord::Abort { txn },
            _ => return Err(corrupt("unknown tag")),
        };
        if pos != bytes.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(rec)
    }
}

/// The log writer.
pub struct Wal {
    file: Box<dyn RandomAccessFile>,
    /// Next append offset.
    offset: u64,
    /// Unflushed record bytes.
    buf: Vec<u8>,
    /// Total bytes appended (stats).
    pub bytes_written: u64,
    /// Syncs issued (stats).
    pub syncs: u64,
}

impl Wal {
    /// Open over a log file, appending after `offset` (recovery's scan end;
    /// 0 for a fresh log).
    pub fn new(file: Box<dyn RandomAccessFile>, offset: u64) -> Self {
        Wal {
            file,
            offset,
            buf: Vec::new(),
            bytes_written: 0,
            syncs: 0,
        }
    }

    /// Append a record to the in-memory buffer.
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode_payload();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&fnv(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
    }

    /// Flush buffered records and sync — the commit point.
    pub fn flush_sync(&mut self) -> Result<()> {
        if !self.buf.is_empty() {
            self.file.write_at(self.offset, &self.buf)?;
            self.offset += self.buf.len() as u64;
            self.bytes_written += self.buf.len() as u64;
            self.buf.clear();
        }
        self.file.sync()?;
        self.syncs += 1;
        Ok(())
    }

    /// Drop buffered (un-flushed) records — abort of a transaction whose
    /// records were never synced. Only safe if the buffer holds exactly
    /// that transaction's records (single-writer engine).
    pub fn drop_buffered(&mut self) {
        self.buf.clear();
    }

    /// Truncate the log (checkpoint).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.sync()?;
        self.offset = 0;
        self.buf.clear();
        Ok(())
    }

    /// Current log size in bytes.
    pub fn size(&self) -> u64 {
        self.offset
    }

    /// Scan a log file from the start, yielding records until the end or a
    /// torn/corrupt tail. Returns the records and the clean scan end
    /// offset.
    pub fn scan(file: &dyn RandomAccessFile) -> Result<(Vec<WalRecord>, u64)> {
        let len = file.len()?;
        let mut records = Vec::new();
        let mut pos = 0u64;
        loop {
            if pos + 8 > len {
                break;
            }
            let mut header = [0u8; 8];
            if file.read_at(pos, &mut header).is_err() {
                break;
            }
            let payload_len = u32::from_le_bytes(header[..4].try_into().expect("4")) as u64;
            let checksum = u32::from_le_bytes(header[4..].try_into().expect("4"));
            if pos + 8 + payload_len > len {
                break; // torn tail
            }
            let mut payload = vec![0u8; payload_len as usize];
            if file.read_at(pos + 8, &mut payload).is_err() {
                break;
            }
            if fnv(&payload) != checksum {
                break; // torn or corrupt tail: stop at last good record
            }
            match WalRecord::decode_payload(&payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
            pos += 8 + payload_len;
        }
        Ok((records, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_platform::{MemStore, UntrustedStore};

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateDb {
                txn: 1,
                name: "account".into(),
            },
            WalRecord::Put {
                txn: 1,
                db: 0,
                key: b"k".to_vec(),
                old: None,
                new: b"v1".to_vec(),
            },
            WalRecord::Put {
                txn: 1,
                db: 0,
                key: b"k".to_vec(),
                old: Some(b"v1".to_vec()),
                new: b"v2".to_vec(),
            },
            WalRecord::Del {
                txn: 1,
                db: 0,
                key: b"k".to_vec(),
                old: b"v2".to_vec(),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn append_flush_scan_roundtrip() {
        let mem = MemStore::new();
        let mut wal = Wal::new(mem.open("wal", true).unwrap(), 0);
        for rec in sample_records() {
            wal.append(&rec);
        }
        wal.flush_sync().unwrap();
        assert!(wal.bytes_written > 0);
        assert_eq!(wal.syncs, 1);

        let file = mem.open("wal", false).unwrap();
        let (records, end) = Wal::scan(&*file).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(end, wal.size());
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mem = MemStore::new();
        let mut wal = Wal::new(mem.open("wal", true).unwrap(), 0);
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.flush_sync().unwrap();
        let good_end = wal.size();
        wal.append(&WalRecord::Commit { txn: 2 });
        wal.flush_sync().unwrap();
        // Tear the second record.
        let raw_len = mem.raw("wal").unwrap().len();
        mem.open("wal", false)
            .unwrap()
            .set_len(raw_len as u64 - 3)
            .unwrap();

        let file = mem.open("wal", false).unwrap();
        let (records, end) = Wal::scan(&*file).unwrap();
        assert_eq!(records, vec![WalRecord::Commit { txn: 1 }]);
        assert_eq!(end, good_end);
    }

    #[test]
    fn scan_stops_at_corrupt_record() {
        let mem = MemStore::new();
        let mut wal = Wal::new(mem.open("wal", true).unwrap(), 0);
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.append(&WalRecord::Commit { txn: 2 });
        wal.flush_sync().unwrap();
        // Flip a byte inside the second record's payload.
        let raw = mem.raw("wal").unwrap();
        mem.corrupt("wal", raw.len() as u64 - 2, 1).unwrap();
        let file = mem.open("wal", false).unwrap();
        let (records, _) = Wal::scan(&*file).unwrap();
        assert_eq!(records, vec![WalRecord::Commit { txn: 1 }]);
    }

    #[test]
    fn drop_buffered_discards_unflushed() {
        let mem = MemStore::new();
        let mut wal = Wal::new(mem.open("wal", true).unwrap(), 0);
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.drop_buffered();
        wal.flush_sync().unwrap();
        let file = mem.open("wal", false).unwrap();
        let (records, _) = Wal::scan(&*file).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn truncate_resets() {
        let mem = MemStore::new();
        let mut wal = Wal::new(mem.open("wal", true).unwrap(), 0);
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.flush_sync().unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.size(), 0);
        let file = mem.open("wal", false).unwrap();
        let (records, _) = Wal::scan(&*file).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn payload_decode_rejects_garbage() {
        for cut in 0..10 {
            let payload = WalRecord::Put {
                txn: 1,
                db: 0,
                key: b"key".to_vec(),
                old: None,
                new: b"value".to_vec(),
            }
            .encode_payload();
            let cut_len = payload.len().saturating_sub(cut + 1);
            assert!(WalRecord::decode_payload(&payload[..cut_len]).is_err());
        }
        assert!(WalRecord::decode_payload(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
