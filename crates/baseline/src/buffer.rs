//! The buffer pool: an LRU cache of database pages.
//!
//! Pages dirtied by still-active transactions are never written out (the
//! engine is redo-only: there are no undo records to roll back a stolen
//! page, so stealing is simply forbidden). Pages whose dirtying
//! transactions have all finished may be flushed under pressure or at a
//! checkpoint — no-force otherwise.

use crate::error::{BaselineError, Result};
use crate::pagefile::PageFile;
use std::collections::{HashMap, HashSet};

struct Frame {
    data: Vec<u8>,
    dirty: bool,
    /// Active transactions whose uncommitted changes sit on this page.
    dirty_txns: HashSet<u64>,
    tick: u64,
}

/// The buffer pool.
pub struct BufferPool {
    frames: HashMap<u32, Frame>,
    capacity_pages: usize,
    tick: u64,
    /// Number of clean resident frames (evict fast-path bookkeeping).
    clean_count: usize,
    /// Pages each active transaction has dirtied (so releasing a
    /// transaction is O(its pages), not O(pool)).
    txn_pages: HashMap<u64, Vec<u32>>,
    /// Bytes of pages written back to the file (stats).
    pub page_bytes_flushed: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity_pages` pages.
    pub fn new(capacity_pages: usize) -> Self {
        BufferPool {
            frames: HashMap::new(),
            capacity_pages: capacity_pages.max(8),
            tick: 0,
            clean_count: 0,
            txn_pages: HashMap::new(),
            page_bytes_flushed: 0,
        }
    }

    /// Get a page for reading, loading it from `file` on a miss.
    pub fn get(&mut self, file: &PageFile, no: u32) -> Result<&[u8]> {
        self.load(file, no)?;
        let frame = self.frames.get_mut(&no).expect("just loaded");
        self.tick += 1;
        frame.tick = self.tick;
        Ok(&frame.data)
    }

    /// Get a page for writing under transaction `txn`; marks it dirty.
    pub fn get_mut(&mut self, file: &PageFile, no: u32, txn: u64) -> Result<&mut Vec<u8>> {
        self.load(file, no)?;
        let frame = self.frames.get_mut(&no).expect("just loaded");
        self.tick += 1;
        frame.tick = self.tick;
        if !frame.dirty {
            frame.dirty = true;
            self.clean_count -= 1;
        }
        if frame.dirty_txns.insert(txn) {
            self.txn_pages.entry(txn).or_default().push(no);
        }
        let frame = self.frames.get_mut(&no).expect("present");
        Ok(&mut frame.data)
    }

    /// Install a brand-new (all-zero) page under transaction `txn`.
    pub fn install_new(&mut self, file: &PageFile, no: u32, txn: u64) -> Result<&mut Vec<u8>> {
        self.tick += 1;
        self.frames.insert(
            no,
            Frame {
                data: vec![0u8; crate::PAGE_SIZE],
                dirty: true,
                dirty_txns: std::iter::once(txn).collect(),
                tick: self.tick,
            },
        );
        self.txn_pages.entry(txn).or_default().push(no);
        self.evict_if_needed(file, no)?;
        Ok(&mut self.frames.get_mut(&no).expect("just inserted").data)
    }

    fn load(&mut self, file: &PageFile, no: u32) -> Result<()> {
        if !self.frames.contains_key(&no) {
            let data = file.read_page(no)?;
            self.tick += 1;
            self.frames.insert(
                no,
                Frame {
                    data,
                    dirty: false,
                    dirty_txns: HashSet::new(),
                    tick: self.tick,
                },
            );
            self.clean_count += 1;
            self.evict_if_needed(file, no)?;
        }
        Ok(())
    }

    /// A transaction finished: its pages become flushable (commit) — the
    /// caller has already ensured the WAL covers them — or were reverted in
    /// memory (abort).
    pub fn release_txn(&mut self, txn: u64) {
        if let Some(pages) = self.txn_pages.remove(&txn) {
            for no in pages {
                if let Some(frame) = self.frames.get_mut(&no) {
                    frame.dirty_txns.remove(&txn);
                }
            }
        }
    }

    fn evict_if_needed(&mut self, _file: &PageFile, keep: u32) -> Result<()> {
        // Only *clean* frames are evicted. Dirty frames stay resident until
        // a checkpoint: the on-disk file therefore always holds exactly the
        // last checkpoint's (structurally consistent) state, which is what
        // makes redo-only recovery sound. If everything is dirty the pool
        // temporarily overflows its budget rather than stealing.
        //
        // One pass: collect the clean frames oldest-first and evict enough
        // in a batch. A per-eviction scan would be O(frames) for every page
        // load once the pool is over budget — quadratic across a bulk load.
        if self.frames.len() <= self.capacity_pages || self.clean_count == 0 {
            return Ok(());
        }
        let excess = self.frames.len() - self.capacity_pages;
        let mut clean: Vec<(u64, u32)> = self
            .frames
            .iter()
            .filter(|(no, f)| !f.dirty && **no != keep)
            .map(|(no, f)| (f.tick, *no))
            .collect();
        clean.sort_unstable();
        for (_, no) in clean.into_iter().take(excess) {
            self.frames.remove(&no);
            self.clean_count -= 1;
        }
        Ok(())
    }

    /// Flush every dirty page not pinned by an active transaction
    /// (checkpoint / clean shutdown). Errors if any page is still pinned
    /// and `require_all` is set.
    pub fn flush_all(&mut self, file: &PageFile, require_all: bool) -> Result<()> {
        for (no, frame) in self.frames.iter_mut() {
            if frame.dirty {
                if !frame.dirty_txns.is_empty() {
                    if require_all {
                        return Err(BaselineError::Corrupt(
                            "checkpoint with active transactions".into(),
                        ));
                    }
                    continue;
                }
                file.write_page(*no, &frame.data)?;
                self.page_bytes_flushed += frame.data.len() as u64;
                frame.dirty = false;
                self.clean_count += 1;
            }
        }
        Ok(())
    }

    /// Number of resident pages (diagnostics).
    pub fn resident(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_platform::{MemStore, UntrustedStore};

    fn setup() -> (PageFile, BufferPool) {
        let mem = MemStore::new();
        let pf = PageFile::new(mem.open("db", true).unwrap());
        (pf, BufferPool::new(8))
    }

    #[test]
    fn read_through_and_cache() {
        let (pf, mut bp) = setup();
        pf.write_page(0, &vec![9u8; crate::PAGE_SIZE]).unwrap();
        assert_eq!(bp.get(&pf, 0).unwrap()[0], 9);
        // Mutate underlying file; cached copy served.
        pf.write_page(0, &vec![1u8; crate::PAGE_SIZE]).unwrap();
        assert_eq!(bp.get(&pf, 0).unwrap()[0], 9);
    }

    #[test]
    fn dirty_pages_never_leak_before_checkpoint() {
        let (pf, mut bp) = setup();
        // Dirty page 0 under txn 1.
        bp.get_mut(&pf, 0, 1).unwrap()[0] = 42;
        bp.release_txn(1);
        // Fill the pool far beyond capacity with clean pages.
        for no in 1..40 {
            pf.write_page(no, &vec![0u8; crate::PAGE_SIZE]).unwrap();
            bp.get(&pf, no).unwrap();
        }
        // Page 0 is dirty and must still be resident, never stolen: the
        // on-disk file holds exactly the last checkpoint state.
        assert_ne!(pf.read_page(0).unwrap()[0], 42, "dirty page leaked to disk");
        assert!(
            bp.resident() <= 9 + 1,
            "clean frames should have been evicted"
        );
        bp.flush_all(&pf, true).unwrap();
        assert_eq!(pf.read_page(0).unwrap()[0], 42);
        assert!(bp.page_bytes_flushed >= crate::PAGE_SIZE as u64);
    }

    #[test]
    fn flush_all_requires_no_active_txns() {
        let (pf, mut bp) = setup();
        bp.get_mut(&pf, 0, 7).unwrap()[0] = 1;
        assert!(bp.flush_all(&pf, true).is_err());
        bp.release_txn(7);
        bp.flush_all(&pf, true).unwrap();
    }
}
