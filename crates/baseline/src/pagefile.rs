//! Page-addressed access to the single database file.

use crate::error::Result;
use crate::PAGE_SIZE;
use tdb_platform::RandomAccessFile;

/// Reads and writes fixed-size pages in the database file.
pub struct PageFile {
    file: Box<dyn RandomAccessFile>,
}

impl PageFile {
    /// Wrap an open file.
    pub fn new(file: Box<dyn RandomAccessFile>) -> Self {
        PageFile { file }
    }

    /// Number of whole pages currently in the file.
    pub fn page_count(&self) -> Result<u32> {
        Ok((self.file.len()? / PAGE_SIZE as u64) as u32)
    }

    /// Read page `no` into a fresh buffer. Pages beyond the end of the
    /// file (never written) read as zeros, like a sparse file.
    pub fn read_page(&self, no: u32) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; PAGE_SIZE];
        let start = no as u64 * PAGE_SIZE as u64;
        let len = self.file.len()?;
        if start >= len {
            return Ok(buf);
        }
        let available = ((len - start) as usize).min(PAGE_SIZE);
        self.file.read_at(start, &mut buf[..available])?;
        Ok(buf)
    }

    /// Write page `no` (extends the file as needed).
    pub fn write_page(&self, no: u32, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        self.file.write_at(no as u64 * PAGE_SIZE as u64, data)?;
        Ok(())
    }

    /// Flush to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Total file size in bytes.
    pub fn size(&self) -> Result<u64> {
        Ok(self.file.len()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_platform::{MemStore, UntrustedStore};

    #[test]
    fn page_io_roundtrip() {
        let mem = MemStore::new();
        let pf = PageFile::new(mem.open("db", true).unwrap());
        assert_eq!(pf.page_count().unwrap(), 0);
        let page = vec![7u8; PAGE_SIZE];
        pf.write_page(3, &page).unwrap();
        assert_eq!(pf.page_count().unwrap(), 4);
        assert_eq!(pf.read_page(3).unwrap(), page);
        // Unwritten pages in between read as zeros.
        assert_eq!(pf.read_page(1).unwrap(), vec![0u8; PAGE_SIZE]);
        pf.sync().unwrap();
        assert_eq!(pf.size().unwrap(), 4 * PAGE_SIZE as u64);
    }
}
