//! Baseline engine errors.

use std::fmt;

/// Result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;

/// Errors from the baseline engine.
#[derive(Debug)]
pub enum BaselineError {
    /// Platform/storage error.
    Platform(tdb_platform::PlatformError),
    /// The database file is structurally corrupt.
    Corrupt(String),
    /// No database with this name in the environment.
    NoSuchDb(String),
    /// A database with this name already exists.
    DbExists(String),
    /// Key already present (puts are insert-or-update, so this only arises
    /// from `insert_new`).
    KeyExists,
    /// A key or value exceeds what a page can hold.
    TooLarge(usize),
    /// The transaction was already finished.
    TxnInactive,
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Platform(e) => write!(f, "platform: {e}"),
            BaselineError::Corrupt(m) => write!(f, "corrupt database: {m}"),
            BaselineError::NoSuchDb(n) => write!(f, "no database named {n:?}"),
            BaselineError::DbExists(n) => write!(f, "database {n:?} already exists"),
            BaselineError::KeyExists => write!(f, "key already exists"),
            BaselineError::TooLarge(n) => write!(f, "entry of {n} bytes exceeds page capacity"),
            BaselineError::TxnInactive => write!(f, "transaction already finished"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdb_platform::PlatformError> for BaselineError {
    fn from(e: tdb_platform::PlatformError) -> Self {
        BaselineError::Platform(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(BaselineError::NoSuchDb("x".into())
            .to_string()
            .contains('x'));
        assert!(BaselineError::TooLarge(9000).to_string().contains("9000"));
    }
}
