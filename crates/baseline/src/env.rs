//! The environment: catalog, transactions, commit/abort, recovery.
//!
//! One environment owns one database file (`bdb.db`) and one log
//! (`bdb.wal`), with any number of named B-tree databases inside — like a
//! Berkeley DB environment with a shared transaction log.
//!
//! The engine is single-writer: one transaction at a time (the TDB paper's
//! comparison workload is a single-threaded TPC-B driver, and Berkeley
//! DB's own strength was never concurrency). Reads outside transactions
//! are allowed.

use crate::btree;
use crate::buffer::BufferPool;
use crate::error::{BaselineError, Result};
use crate::pagefile::PageFile;
use crate::wal::{Wal, WalRecord};
use crate::PAGE_SIZE;
use parking_lot::Mutex;
use std::sync::Arc;
use tdb_platform::UntrustedStore;

const META_MAGIC: [u8; 8] = *b"BDBMETA1";
const DB_FILE: &str = "bdb.db";
const WAL_FILE: &str = "bdb.wal";

/// Index of a named database within the environment's catalog.
pub type DbId = u16;

/// Configuration.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Buffer pool capacity in pages (default 1024 = 4 MiB, the paper's
    /// cache size).
    pub cache_pages: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig { cache_pages: 1024 }
    }
}

struct Catalog {
    names: Vec<String>,
    roots: Vec<u32>,
}

impl Catalog {
    fn id_of(&self, name: &str) -> Option<DbId> {
        self.names.iter().position(|n| n == name).map(|i| i as DbId)
    }

    fn serialize_into(&self, next_page: u32, page: &mut [u8]) {
        page.fill(0);
        page[..8].copy_from_slice(&META_MAGIC);
        page[8..12].copy_from_slice(&next_page.to_le_bytes());
        page[12..14].copy_from_slice(&(self.names.len() as u16).to_le_bytes());
        let mut pos = 14;
        for (name, root) in self.names.iter().zip(&self.roots) {
            page[pos..pos + 2].copy_from_slice(&(name.len() as u16).to_le_bytes());
            pos += 2;
            page[pos..pos + name.len()].copy_from_slice(name.as_bytes());
            pos += name.len();
            page[pos..pos + 4].copy_from_slice(&root.to_le_bytes());
            pos += 4;
        }
    }

    fn deserialize(page: &[u8]) -> Result<(Catalog, u32)> {
        let corrupt = |m: &str| BaselineError::Corrupt(format!("meta page: {m}"));
        if page.len() < 14 || page[..8] != META_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let next_page = u32::from_le_bytes(page[8..12].try_into().expect("4"));
        let count = u16::from_le_bytes(page[12..14].try_into().expect("2")) as usize;
        let mut names = Vec::with_capacity(count);
        let mut roots = Vec::with_capacity(count);
        let mut pos = 14usize;
        for _ in 0..count {
            if pos + 2 > page.len() {
                return Err(corrupt("catalog out of bounds"));
            }
            let len = u16::from_le_bytes(page[pos..pos + 2].try_into().expect("2")) as usize;
            pos += 2;
            if pos + len + 4 > page.len() {
                return Err(corrupt("catalog entry out of bounds"));
            }
            let name = String::from_utf8(page[pos..pos + len].to_vec())
                .map_err(|_| corrupt("bad db name"))?;
            pos += len;
            let root = u32::from_le_bytes(page[pos..pos + 4].try_into().expect("4"));
            pos += 4;
            names.push(name);
            roots.push(root);
        }
        Ok((Catalog { names, roots }, next_page))
    }
}

/// An undo entry for in-memory abort.
enum Undo {
    /// Restore a previous value (or remove if `None`).
    Put {
        db: DbId,
        key: Vec<u8>,
        old: Option<Vec<u8>>,
    },
    /// Re-insert a deleted value.
    Del {
        db: DbId,
        key: Vec<u8>,
        old: Vec<u8>,
    },
}

/// An open transaction handle.
pub struct Txn {
    id: u64,
    undo: Vec<Undo>,
    finished: bool,
}

impl Txn {
    /// Transaction id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }
}

struct EnvInner {
    file: PageFile,
    pool: BufferPool,
    wal: Wal,
    catalog: Catalog,
    next_page: u32,
    next_txn: u64,
    active: Option<u64>,
    /// Meta page needs rewriting before the next checkpoint.
    meta_dirty: bool,
}

impl EnvInner {
    fn ctx(&mut self, txn: u64) -> btree::Ctx<'_> {
        btree::Ctx {
            pool: &mut self.pool,
            file: &self.file,
            next_page: &mut self.next_page,
            txn,
        }
    }

    fn write_meta(&mut self, txn: u64) -> Result<()> {
        let mut page = vec![0u8; PAGE_SIZE];
        self.catalog.serialize_into(self.next_page, &mut page);
        let frame = self.pool.get_mut(&self.file, 0, txn)?;
        frame.copy_from_slice(&page);
        self.meta_dirty = false;
        Ok(())
    }

    fn apply_put(&mut self, txn: u64, db: DbId, key: &[u8], val: &[u8]) -> Result<Option<Vec<u8>>> {
        let root = self.catalog.roots[db as usize];
        let (old, new_root) = {
            let mut ctx = self.ctx(txn);
            btree::put(&mut ctx, root, key, val)?
        };
        if let Some(new_root) = new_root {
            self.catalog.roots[db as usize] = new_root;
            self.write_meta(txn)?;
        }
        Ok(old)
    }

    fn apply_del(&mut self, txn: u64, db: DbId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let root = self.catalog.roots[db as usize];
        let mut ctx = self.ctx(txn);
        btree::del(&mut ctx, root, key)
    }

    fn create_db_inner(&mut self, txn: u64, name: &str) -> Result<DbId> {
        if self.catalog.id_of(name).is_some() {
            return Err(BaselineError::DbExists(name.to_string()));
        }
        let root = {
            let mut ctx = self.ctx(txn);
            btree::create(&mut ctx)?
        };
        self.catalog.names.push(name.to_string());
        self.catalog.roots.push(root);
        self.write_meta(txn)?;
        Ok((self.catalog.names.len() - 1) as DbId)
    }
}

/// A Berkeley-DB-like environment.
pub struct Env {
    inner: Mutex<EnvInner>,
}

impl Env {
    /// Create a fresh environment in `store`.
    pub fn create(store: Arc<dyn UntrustedStore>, cfg: BaselineConfig) -> Result<Self> {
        if store.exists(DB_FILE)? {
            return Err(BaselineError::DbExists(DB_FILE.to_string()));
        }
        let file = PageFile::new(store.open(DB_FILE, true)?);
        let wal = Wal::new(store.open(WAL_FILE, true)?, 0);
        let mut inner = EnvInner {
            file,
            pool: BufferPool::new(cfg.cache_pages),
            wal,
            catalog: Catalog {
                names: Vec::new(),
                roots: Vec::new(),
            },
            next_page: 1,
            next_txn: 1,
            active: None,
            meta_dirty: true,
        };
        inner.write_meta(0)?;
        inner.pool.release_txn(0);
        inner.pool.flush_all(&inner.file, true)?;
        inner.file.sync()?;
        Ok(Env {
            inner: Mutex::new(inner),
        })
    }

    /// Open an existing environment, running redo recovery from the log.
    pub fn open(store: Arc<dyn UntrustedStore>, cfg: BaselineConfig) -> Result<Self> {
        let file = PageFile::new(store.open(DB_FILE, false)?);
        let meta = file.read_page(0)?;
        let (catalog, next_page) = Catalog::deserialize(&meta)?;
        let wal_file = store.open(WAL_FILE, true)?;
        let (records, scan_end) = Wal::scan(&*wal_file)?;
        let wal = Wal::new(wal_file, scan_end);
        let mut inner = EnvInner {
            file,
            pool: BufferPool::new(cfg.cache_pages),
            wal,
            catalog,
            next_page,
            next_txn: 1,
            active: None,
            meta_dirty: false,
        };

        // Redo pass: apply operations of committed transactions in order.
        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        let mut max_txn = 0u64;
        for record in &records {
            match record {
                WalRecord::CreateDb { txn, name } if committed.contains(txn) => {
                    max_txn = max_txn.max(*txn);
                    if inner.catalog.id_of(name).is_none() {
                        inner.create_db_inner(0, name)?;
                    }
                }
                WalRecord::Put {
                    txn, db, key, new, ..
                } if committed.contains(txn) => {
                    max_txn = max_txn.max(*txn);
                    inner.apply_put(0, *db, key, new)?;
                }
                WalRecord::Del { txn, db, key, .. } if committed.contains(txn) => {
                    max_txn = max_txn.max(*txn);
                    inner.apply_del(0, *db, key)?;
                }
                _ => {}
            }
        }
        inner.pool.release_txn(0);
        inner.next_txn = max_txn + 1;
        Ok(Env {
            inner: Mutex::new(inner),
        })
    }

    /// Create a named database (auto-committed, like `db_create` + open).
    pub fn create_db(&self, name: &str) -> Result<DbId> {
        let mut inner = self.inner.lock();
        if inner.active.is_some() {
            return Err(BaselineError::Corrupt(
                "create_db during a transaction".into(),
            ));
        }
        let txn = inner.next_txn;
        inner.next_txn += 1;
        let id = inner.create_db_inner(txn, name)?;
        inner.wal.append(&WalRecord::CreateDb {
            txn,
            name: name.to_string(),
        });
        inner.wal.append(&WalRecord::Commit { txn });
        inner.wal.flush_sync()?;
        inner.pool.release_txn(txn);
        Ok(id)
    }

    /// Look up a database by name.
    pub fn db(&self, name: &str) -> Result<DbId> {
        self.inner
            .lock()
            .catalog
            .id_of(name)
            .ok_or_else(|| BaselineError::NoSuchDb(name.to_string()))
    }

    /// Names of all databases.
    pub fn db_names(&self) -> Vec<String> {
        self.inner.lock().catalog.names.clone()
    }

    /// Begin a transaction (single writer).
    pub fn begin(&self) -> Result<Txn> {
        let mut inner = self.inner.lock();
        if inner.active.is_some() {
            return Err(BaselineError::Corrupt(
                "another transaction is active (single-writer engine)".into(),
            ));
        }
        let id = inner.next_txn;
        inner.next_txn += 1;
        inner.active = Some(id);
        Ok(Txn {
            id,
            undo: Vec::new(),
            finished: false,
        })
    }

    /// Read a key (usable inside or outside transactions).
    pub fn get(&self, db: DbId, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock();
        let root = inner.catalog.roots[db as usize];
        let mut ctx = inner.ctx(0);
        let out = btree::get(&mut ctx, root, key);
        inner.pool.release_txn(0);
        out
    }

    /// Insert or update under a transaction; logs before/after images.
    pub fn put(&self, txn: &mut Txn, db: DbId, key: &[u8], val: &[u8]) -> Result<()> {
        if txn.finished {
            return Err(BaselineError::TxnInactive);
        }
        let mut inner = self.inner.lock();
        let old = inner.apply_put(txn.id, db, key, val)?;
        inner.wal.append(&WalRecord::Put {
            txn: txn.id,
            db,
            key: key.to_vec(),
            old: old.clone(),
            new: val.to_vec(),
        });
        txn.undo.push(Undo::Put {
            db,
            key: key.to_vec(),
            old,
        });
        Ok(())
    }

    /// Delete under a transaction; returns whether the key existed.
    pub fn del(&self, txn: &mut Txn, db: DbId, key: &[u8]) -> Result<bool> {
        if txn.finished {
            return Err(BaselineError::TxnInactive);
        }
        let mut inner = self.inner.lock();
        match inner.apply_del(txn.id, db, key)? {
            Some(old) => {
                inner.wal.append(&WalRecord::Del {
                    txn: txn.id,
                    db,
                    key: key.to_vec(),
                    old: old.clone(),
                });
                txn.undo.push(Undo::Del {
                    db,
                    key: key.to_vec(),
                    old,
                });
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Commit: append the commit record, flush and sync the log.
    pub fn commit(&self, mut txn: Txn) -> Result<()> {
        if txn.finished {
            return Err(BaselineError::TxnInactive);
        }
        txn.finished = true;
        let mut inner = self.inner.lock();
        inner.wal.append(&WalRecord::Commit { txn: txn.id });
        inner.wal.flush_sync()?;
        inner.pool.release_txn(txn.id);
        inner.active = None;
        Ok(())
    }

    /// Abort: revert in memory via before images; drop the (unflushed) log
    /// records.
    pub fn abort(&self, mut txn: Txn) -> Result<()> {
        if txn.finished {
            return Err(BaselineError::TxnInactive);
        }
        txn.finished = true;
        let mut inner = self.inner.lock();
        for undo in txn.undo.drain(..).rev() {
            match undo {
                Undo::Put { db, key, old } => match old {
                    Some(old) => {
                        inner.apply_put(txn.id, db, &key, &old)?;
                    }
                    None => {
                        inner.apply_del(txn.id, db, &key)?;
                    }
                },
                Undo::Del { db, key, old } => {
                    inner.apply_put(txn.id, db, &key, &old)?;
                }
            }
        }
        inner.wal.drop_buffered();
        inner.wal.append(&WalRecord::Abort { txn: txn.id });
        inner.pool.release_txn(txn.id);
        inner.active = None;
        Ok(())
    }

    /// Checkpoint: flush all pages, sync the file, truncate the log. Must
    /// not run with an active transaction.
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.active.is_some() {
            return Err(BaselineError::Corrupt(
                "checkpoint during a transaction".into(),
            ));
        }
        if inner.meta_dirty {
            inner.write_meta(0)?;
            inner.pool.release_txn(0);
        }
        let EnvInner {
            ref mut pool,
            ref file,
            ..
        } = *inner;
        pool.flush_all(file, true)?;
        inner.file.sync()?;
        inner.wal.truncate()?;
        Ok(())
    }

    /// Total on-disk footprint: database file + log (the paper's Figure 11
    /// "database size" for Berkeley DB includes its un-checkpointed log).
    pub fn disk_size(&self) -> Result<u64> {
        let inner = self.inner.lock();
        Ok(inner.file.size()? + inner.wal.size())
    }

    /// (log bytes written, log syncs, page bytes flushed) — the §7.4
    /// bytes-per-transaction accounting.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (
            inner.wal.bytes_written,
            inner.wal.syncs,
            inner.pool.page_bytes_flushed,
        )
    }

    /// Visit every entry of a database in key order (table scans / tests).
    pub fn for_each(&self, db: DbId, f: &mut impl FnMut(&[u8], &[u8])) -> Result<()> {
        let mut inner = self.inner.lock();
        let root = inner.catalog.roots[db as usize];
        let mut ctx = inner.ctx(0);
        let out = btree::for_each(&mut ctx, root, f);
        inner.pool.release_txn(0);
        out
    }
}
