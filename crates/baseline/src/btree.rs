//! Page-based B-tree access method (one tree per named database,
//! variable-size keys and values, update-in-place).
//!
//! Each node occupies exactly one 4 KiB page. Inner nodes hold separator
//! keys (the minimum key of the right subtree) and child page numbers;
//! splits propagate bottom-up. Deletion removes leaf entries without
//! rebalancing, like many embedded engines.

use crate::buffer::BufferPool;
use crate::error::{BaselineError, Result};
use crate::pagefile::PageFile;
use crate::PAGE_SIZE;

const LEAF_TAG: u8 = 1;
const INNER_TAG: u8 = 2;
/// Serialized node must leave this much slack before splitting.
const SPLIT_MARGIN: usize = 32;
/// Largest key+value an entry may carry.
pub const MAX_ENTRY: usize = PAGE_SIZE / 4;

/// In-memory form of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Node {
    Leaf(Vec<(Vec<u8>, Vec<u8>)>),
    Inner {
        first: u32,
        /// `(separator key, right child)`; the separator is the minimum
        /// key reachable through that child.
        entries: Vec<(Vec<u8>, u32)>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf(entries) => {
                3 + entries
                    .iter()
                    .map(|(k, v)| 4 + k.len() + v.len())
                    .sum::<usize>()
            }
            Node::Inner { entries, .. } => {
                3 + 4 + entries.iter().map(|(k, _)| 6 + k.len()).sum::<usize>()
            }
        }
    }

    fn overflows(&self) -> bool {
        self.serialized_size() + SPLIT_MARGIN > PAGE_SIZE
    }

    fn serialize_into(&self, page: &mut [u8]) {
        page.fill(0);
        match self {
            Node::Leaf(entries) => {
                page[0] = LEAF_TAG;
                page[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                let mut pos = 3;
                for (k, v) in entries {
                    page[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    page[pos + 2..pos + 4].copy_from_slice(&(v.len() as u16).to_le_bytes());
                    pos += 4;
                    page[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    page[pos..pos + v.len()].copy_from_slice(v);
                    pos += v.len();
                }
            }
            Node::Inner { first, entries } => {
                page[0] = INNER_TAG;
                page[1..3].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                page[3..7].copy_from_slice(&first.to_le_bytes());
                let mut pos = 7;
                for (k, child) in entries {
                    page[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    pos += 2;
                    page[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    page[pos..pos + 4].copy_from_slice(&child.to_le_bytes());
                    pos += 4;
                }
            }
        }
    }

    fn deserialize(page: &[u8]) -> Result<Node> {
        let corrupt = |m: &str| BaselineError::Corrupt(format!("btree page: {m}"));
        if page.len() < 3 {
            return Err(corrupt("short page"));
        }
        let count = u16::from_le_bytes(page[1..3].try_into().expect("2")) as usize;
        match page[0] {
            LEAF_TAG => {
                let mut entries = Vec::with_capacity(count);
                let mut pos = 3usize;
                for _ in 0..count {
                    if pos + 4 > page.len() {
                        return Err(corrupt("leaf entry header out of bounds"));
                    }
                    let klen =
                        u16::from_le_bytes(page[pos..pos + 2].try_into().expect("2")) as usize;
                    let vlen =
                        u16::from_le_bytes(page[pos + 2..pos + 4].try_into().expect("2")) as usize;
                    pos += 4;
                    if pos + klen + vlen > page.len() {
                        return Err(corrupt("leaf entry out of bounds"));
                    }
                    let key = page[pos..pos + klen].to_vec();
                    pos += klen;
                    let val = page[pos..pos + vlen].to_vec();
                    pos += vlen;
                    entries.push((key, val));
                }
                Ok(Node::Leaf(entries))
            }
            INNER_TAG => {
                if page.len() < 7 {
                    return Err(corrupt("short inner page"));
                }
                let first = u32::from_le_bytes(page[3..7].try_into().expect("4"));
                let mut entries = Vec::with_capacity(count);
                let mut pos = 7usize;
                for _ in 0..count {
                    if pos + 2 > page.len() {
                        return Err(corrupt("inner entry header out of bounds"));
                    }
                    let klen =
                        u16::from_le_bytes(page[pos..pos + 2].try_into().expect("2")) as usize;
                    pos += 2;
                    if pos + klen + 4 > page.len() {
                        return Err(corrupt("inner entry out of bounds"));
                    }
                    let key = page[pos..pos + klen].to_vec();
                    pos += klen;
                    let child = u32::from_le_bytes(page[pos..pos + 4].try_into().expect("4"));
                    pos += 4;
                    entries.push((key, child));
                }
                Ok(Node::Inner { first, entries })
            }
            other => Err(corrupt(&format!("unknown tag {other}"))),
        }
    }
}

/// Mutable context for tree operations.
pub(crate) struct Ctx<'a> {
    pub pool: &'a mut BufferPool,
    pub file: &'a PageFile,
    pub next_page: &'a mut u32,
    pub txn: u64,
}

impl Ctx<'_> {
    fn read_node(&mut self, no: u32) -> Result<Node> {
        Node::deserialize(self.pool.get(self.file, no)?)
    }

    fn write_node(&mut self, no: u32, node: &Node) -> Result<()> {
        let page = self.pool.get_mut(self.file, no, self.txn)?;
        node.serialize_into(page);
        Ok(())
    }

    fn alloc_node(&mut self, node: &Node) -> Result<u32> {
        let no = *self.next_page;
        *self.next_page += 1;
        let page = self.pool.install_new(self.file, no, self.txn)?;
        node.serialize_into(page);
        Ok(no)
    }
}

/// Create an empty tree; returns the root page number.
pub(crate) fn create(ctx: &mut Ctx<'_>) -> Result<u32> {
    ctx.alloc_node(&Node::Leaf(Vec::new()))
}

/// Index of the child covering `key` in an inner node.
fn child_for(first: u32, entries: &[(Vec<u8>, u32)], key: &[u8]) -> (usize, u32) {
    let idx = entries.partition_point(|(k, _)| k.as_slice() <= key);
    if idx == 0 {
        (0, first)
    } else {
        (idx, entries[idx - 1].1)
    }
}

/// Look up a key.
pub(crate) fn get(ctx: &mut Ctx<'_>, root: u32, key: &[u8]) -> Result<Option<Vec<u8>>> {
    let mut no = root;
    loop {
        match ctx.read_node(no)? {
            Node::Leaf(entries) => {
                return Ok(entries
                    .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                    .ok()
                    .map(|i| entries[i].1.clone()));
            }
            Node::Inner { first, entries } => {
                no = child_for(first, &entries, key).1;
            }
        }
    }
}

/// Insert or update. Returns `(old value, new root if the root split)`.
pub(crate) fn put(
    ctx: &mut Ctx<'_>,
    root: u32,
    key: &[u8],
    val: &[u8],
) -> Result<(Option<Vec<u8>>, Option<u32>)> {
    if key.len() + val.len() > MAX_ENTRY {
        return Err(BaselineError::TooLarge(key.len() + val.len()));
    }
    let (old, split) = insert_rec(ctx, root, key, val)?;
    match split {
        None => Ok((old, None)),
        Some((sep, right)) => {
            let new_root = ctx.alloc_node(&Node::Inner {
                first: root,
                entries: vec![(sep, right)],
            })?;
            Ok((old, Some(new_root)))
        }
    }
}

type Split = Option<(Vec<u8>, u32)>;

fn insert_rec(
    ctx: &mut Ctx<'_>,
    no: u32,
    key: &[u8],
    val: &[u8],
) -> Result<(Option<Vec<u8>>, Split)> {
    match ctx.read_node(no)? {
        Node::Leaf(mut entries) => {
            let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Ok(i) => Some(std::mem::replace(&mut entries[i].1, val.to_vec())),
                Err(i) => {
                    entries.insert(i, (key.to_vec(), val.to_vec()));
                    None
                }
            };
            let node = Node::Leaf(entries);
            if !node.overflows() {
                ctx.write_node(no, &node)?;
                return Ok((old, None));
            }
            let Node::Leaf(mut entries) = node else {
                unreachable!()
            };
            let mid = entries.len() / 2;
            let right_entries = entries.split_off(mid);
            let sep = right_entries[0].0.clone();
            let right = ctx.alloc_node(&Node::Leaf(right_entries))?;
            ctx.write_node(no, &Node::Leaf(entries))?;
            Ok((old, Some((sep, right))))
        }
        Node::Inner { first, mut entries } => {
            let (idx, child) = child_for(first, &entries, key);
            let (old, split) = insert_rec(ctx, child, key, val)?;
            let Some((sep, new_child)) = split else {
                return Ok((old, None));
            };
            entries.insert(idx, (sep, new_child));
            let node = Node::Inner { first, entries };
            if !node.overflows() {
                ctx.write_node(no, &node)?;
                return Ok((old, None));
            }
            let Node::Inner { first, mut entries } = node else {
                unreachable!()
            };
            let mid = entries.len() / 2;
            let mut right_part = entries.split_off(mid);
            let (up_key, right_first) = right_part.remove(0);
            let right = ctx.alloc_node(&Node::Inner {
                first: right_first,
                entries: right_part,
            })?;
            ctx.write_node(no, &Node::Inner { first, entries })?;
            Ok((old, Some((up_key, right))))
        }
    }
}

/// Delete a key; returns the old value if present. Leaf-only removal, no
/// rebalancing.
pub(crate) fn del(ctx: &mut Ctx<'_>, root: u32, key: &[u8]) -> Result<Option<Vec<u8>>> {
    let mut no = root;
    loop {
        match ctx.read_node(no)? {
            Node::Leaf(mut entries) => {
                return match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, val) = entries.remove(i);
                        ctx.write_node(no, &Node::Leaf(entries))?;
                        Ok(Some(val))
                    }
                    Err(_) => Ok(None),
                };
            }
            Node::Inner { first, entries } => {
                no = child_for(first, &entries, key).1;
            }
        }
    }
}

/// Visit every entry in key order.
pub(crate) fn for_each(
    ctx: &mut Ctx<'_>,
    root: u32,
    f: &mut impl FnMut(&[u8], &[u8]),
) -> Result<()> {
    match ctx.read_node(root)? {
        Node::Leaf(entries) => {
            for (k, v) in &entries {
                f(k, v);
            }
        }
        Node::Inner { first, entries } => {
            for_each(ctx, first, f)?;
            for (_, child) in &entries {
                for_each(ctx, *child, f)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tdb_platform::{MemStore, UntrustedStore};

    struct Fix {
        file: PageFile,
        pool: BufferPool,
        next_page: u32,
    }

    impl Fix {
        fn new() -> Self {
            let mem = MemStore::new();
            Fix {
                file: PageFile::new(mem.open("db", true).unwrap()),
                pool: BufferPool::new(64),
                next_page: 1,
            }
        }

        fn ctx(&mut self) -> Ctx<'_> {
            Ctx {
                pool: &mut self.pool,
                file: &self.file,
                next_page: &mut self.next_page,
                txn: 1,
            }
        }
    }

    #[test]
    fn node_serialization_roundtrip() {
        let leaf = Node::Leaf(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"bb".to_vec(), vec![9; 100]),
        ]);
        let mut page = vec![0u8; PAGE_SIZE];
        leaf.serialize_into(&mut page);
        assert_eq!(Node::deserialize(&page).unwrap(), leaf);

        let inner = Node::Inner {
            first: 7,
            entries: vec![(b"m".to_vec(), 9), (b"t".to_vec(), 12)],
        };
        inner.serialize_into(&mut page);
        assert_eq!(Node::deserialize(&page).unwrap(), inner);
        assert!(Node::deserialize(&[9u8; 16]).is_err());
    }

    #[test]
    fn put_get_del_against_model() {
        let mut fx = Fix::new();
        let mut root = create(&mut fx.ctx()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        // Enough entries (with 100-byte values) to force multi-level splits.
        let mut state = 99u64;
        for i in 0..2000u32 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = (state % 3000).to_be_bytes().to_vec();
            let val = format!("value-{i:04}").into_bytes().repeat(3);
            let (old, new_root) = put(&mut fx.ctx(), root, &key, &val).unwrap();
            assert_eq!(old, model.insert(key, val), "step {i}");
            if let Some(nr) = new_root {
                root = nr;
            }
        }
        for (k, v) in &model {
            assert_eq!(get(&mut fx.ctx(), root, k).unwrap().as_ref(), Some(v));
        }
        assert_eq!(get(&mut fx.ctx(), root, b"absent").unwrap(), None);

        // Ordered scan agrees with the model.
        let mut scanned = Vec::new();
        for_each(&mut fx.ctx(), root, &mut |k, _| scanned.push(k.to_vec())).unwrap();
        assert_eq!(scanned, model.keys().cloned().collect::<Vec<_>>());

        // Delete half.
        let keys: Vec<Vec<u8>> = model.keys().cloned().collect();
        for (i, key) in keys.iter().enumerate() {
            if i % 2 == 0 {
                let old = del(&mut fx.ctx(), root, key).unwrap();
                assert_eq!(old.as_ref(), model.get(key));
                model.remove(key);
            }
        }
        for key in keys {
            assert_eq!(
                get(&mut fx.ctx(), root, &key).unwrap(),
                model.get(&key).cloned()
            );
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut fx = Fix::new();
        let root = create(&mut fx.ctx()).unwrap();
        let big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            put(&mut fx.ctx(), root, b"k", &big),
            Err(BaselineError::TooLarge(_))
        ));
    }
}
