//! Property test: the baseline engine against a `BTreeMap` model under
//! random puts/deletes/commits/aborts/crash-reopens.

use baseline::{BaselineConfig, Env};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tdb_platform::MemStore;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u16, len: usize },
    Del { key: u16 },
    Commit,
    Abort,
    CrashReopen,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), 1usize..300).prop_map(|(key, len)| Op::Put { key: key % 200, len }),
        2 => any::<u16>().prop_map(|key| Op::Del { key: key % 200 }),
        4 => Just(Op::Commit),
        1 => Just(Op::Abort),
        1 => Just(Op::CrashReopen),
        1 => Just(Op::Checkpoint),
    ]
}

fn value(key: u16, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (key as u8).wrapping_add(i as u8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn baseline_matches_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mem = MemStore::new();
        let mut env = Env::create(Arc::new(mem.clone()), BaselineConfig { cache_pages: 16 }).unwrap();
        let db = env.create_db("d").unwrap();

        let mut committed: BTreeMap<u16, Vec<u8>> = BTreeMap::new();
        let mut staged: Vec<(u16, Option<Vec<u8>>)> = Vec::new();
        let mut txn: Option<baseline::Txn> = None;

        for op in ops {
            match op {
                Op::Put { key, len } => {
                    let t = match txn.as_mut() {
                        Some(t) => t,
                        None => {
                            txn = Some(env.begin().unwrap());
                            txn.as_mut().unwrap()
                        }
                    };
                    let v = value(key, len);
                    env.put(t, db, &key.to_be_bytes(), &v).unwrap();
                    staged.push((key, Some(v)));
                }
                Op::Del { key } => {
                    let t = match txn.as_mut() {
                        Some(t) => t,
                        None => {
                            txn = Some(env.begin().unwrap());
                            txn.as_mut().unwrap()
                        }
                    };
                    let existed = env.del(t, db, &key.to_be_bytes()).unwrap();
                    // Visibility within the transaction is immediate.
                    let visible = staged.iter().rev().find(|(k, _)| *k == key)
                        .map(|(_, v)| v.is_some())
                        .unwrap_or_else(|| committed.contains_key(&key));
                    prop_assert_eq!(existed, visible);
                    if existed {
                        staged.push((key, None));
                    }
                }
                Op::Commit => {
                    if let Some(t) = txn.take() {
                        env.commit(t).unwrap();
                        for (k, v) in staged.drain(..) {
                            match v {
                                Some(v) => { committed.insert(k, v); }
                                None => { committed.remove(&k); }
                            }
                        }
                    }
                }
                Op::Abort => {
                    if let Some(t) = txn.take() {
                        env.abort(t).unwrap();
                        staged.clear();
                    }
                }
                Op::CrashReopen => {
                    if let Some(t) = txn.take() {
                        std::mem::forget(t);
                        staged.clear();
                    }
                    drop(env);
                    env = Env::open(Arc::new(mem.clone()), BaselineConfig { cache_pages: 16 }).unwrap();
                }
                Op::Checkpoint => {
                    if txn.is_none() {
                        env.checkpoint().unwrap();
                    }
                }
            }

            // Agreement on committed state when no txn is open.
            if txn.is_none() {
                for (k, v) in &committed {
                    let got = env.get(db, &k.to_be_bytes()).unwrap();
                    prop_assert_eq!(got.as_ref(), Some(v));
                }
            }
        }

        // Final: commit leftovers, crash, reopen, verify.
        if let Some(t) = txn.take() {
            env.commit(t).unwrap();
            for (k, v) in staged.drain(..) {
                match v {
                    Some(v) => { committed.insert(k, v); }
                    None => { committed.remove(&k); }
                }
            }
        }
        drop(env);
        let env = Env::open(Arc::new(mem), BaselineConfig::default()).unwrap();
        let db = env.db("d").unwrap();
        let mut count = 0;
        env.for_each(db, &mut |_, _| count += 1).unwrap();
        prop_assert_eq!(count, committed.len());
        for (k, v) in &committed {
            let got = env.get(db, &k.to_be_bytes()).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
}
