//! End-to-end tests of the Berkeley-DB-like environment: transactions,
//! recovery, abort, and the write-volume profile the paper measures.

use baseline::{BaselineConfig, BaselineError, Env};
use std::sync::Arc;
use tdb_platform::{FaultPlan, FaultStore, MemStore};

fn new_env(mem: &MemStore) -> Env {
    Env::create(Arc::new(mem.clone()), BaselineConfig::default()).unwrap()
}

fn reopen(mem: &MemStore) -> Env {
    Env::open(Arc::new(mem.clone()), BaselineConfig::default()).unwrap()
}

#[test]
fn put_get_del_commit_roundtrip() {
    let mem = MemStore::new();
    let env = new_env(&mem);
    let db = env.create_db("account").unwrap();

    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k1", b"v1").unwrap();
    env.put(&mut txn, db, b"k2", b"v2").unwrap();
    env.commit(txn).unwrap();

    assert_eq!(env.get(db, b"k1").unwrap(), Some(b"v1".to_vec()));
    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k1", b"v1b").unwrap();
    assert!(env.del(&mut txn, db, b"k2").unwrap());
    assert!(!env.del(&mut txn, db, b"missing").unwrap());
    env.commit(txn).unwrap();
    assert_eq!(env.get(db, b"k1").unwrap(), Some(b"v1b".to_vec()));
    assert_eq!(env.get(db, b"k2").unwrap(), None);
}

#[test]
fn multiple_databases_share_one_log() {
    let mem = MemStore::new();
    let env = new_env(&mem);
    let a = env.create_db("account").unwrap();
    let b = env.create_db("branch").unwrap();
    assert_ne!(a, b);
    assert!(matches!(
        env.create_db("account"),
        Err(BaselineError::DbExists(_))
    ));
    assert!(matches!(env.db("teller"), Err(BaselineError::NoSuchDb(_))));

    let mut txn = env.begin().unwrap();
    env.put(&mut txn, a, b"x", b"in-a").unwrap();
    env.put(&mut txn, b, b"x", b"in-b").unwrap();
    env.commit(txn).unwrap();
    assert_eq!(env.get(a, b"x").unwrap(), Some(b"in-a".to_vec()));
    assert_eq!(env.get(b, b"x").unwrap(), Some(b"in-b".to_vec()));
    let (_, syncs, _) = env.stats();
    // create_db ×2 + commit = 3 syncs; one shared log, not one per db.
    assert_eq!(syncs, 3);
}

#[test]
fn abort_reverts_in_memory() {
    let mem = MemStore::new();
    let env = new_env(&mem);
    let db = env.create_db("d").unwrap();
    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k", b"committed").unwrap();
    env.commit(txn).unwrap();

    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k", b"doomed").unwrap();
    env.put(&mut txn, db, b"fresh", b"also doomed").unwrap();
    env.del(&mut txn, db, b"k").unwrap();
    env.abort(txn).unwrap();

    assert_eq!(env.get(db, b"k").unwrap(), Some(b"committed".to_vec()));
    assert_eq!(env.get(db, b"fresh").unwrap(), None);
}

#[test]
fn committed_state_survives_crash_without_checkpoint() {
    let mem = MemStore::new();
    {
        let env = new_env(&mem);
        let db = env.create_db("d").unwrap();
        for i in 0..500u32 {
            let mut txn = env.begin().unwrap();
            env.put(
                &mut txn,
                db,
                &i.to_be_bytes(),
                format!("val-{i}").as_bytes(),
            )
            .unwrap();
            env.commit(txn).unwrap();
        }
        // No checkpoint, no clean shutdown: drop = crash.
    }
    let env = reopen(&mem);
    let db = env.db("d").unwrap();
    for i in 0..500u32 {
        assert_eq!(
            env.get(db, &i.to_be_bytes()).unwrap(),
            Some(format!("val-{i}").into_bytes()),
            "key {i}"
        );
    }
}

#[test]
fn uncommitted_work_dies_on_crash() {
    let mem = MemStore::new();
    {
        let env = new_env(&mem);
        let db = env.create_db("d").unwrap();
        let mut txn = env.begin().unwrap();
        env.put(&mut txn, db, b"durable", b"yes").unwrap();
        env.commit(txn).unwrap();
        let mut txn = env.begin().unwrap();
        env.put(&mut txn, db, b"durable", b"overwritten-but-uncommitted")
            .unwrap();
        env.put(&mut txn, db, b"phantom", b"x").unwrap();
        std::mem::forget(txn); // crash with the txn in flight
    }
    let env = reopen(&mem);
    let db = env.db("d").unwrap();
    assert_eq!(env.get(db, b"durable").unwrap(), Some(b"yes".to_vec()));
    assert_eq!(env.get(db, b"phantom").unwrap(), None);
}

#[test]
fn crash_mid_commit_is_atomic() {
    for budget in [0u64, 8, 33, 100, 300] {
        let mem = MemStore::new();
        let plan = FaultPlan::unlimited();
        let env = Env::create(
            Arc::new(FaultStore::new(mem.clone(), plan.clone())),
            BaselineConfig::default(),
        )
        .unwrap();
        let db = env.create_db("d").unwrap();
        let mut txn = env.begin().unwrap();
        env.put(&mut txn, db, b"a", b"v1").unwrap();
        env.commit(txn).unwrap();

        let mut txn = env.begin().unwrap();
        env.put(&mut txn, db, b"a", b"v2").unwrap();
        env.put(&mut txn, db, b"b", b"v2").unwrap();
        plan.rearm(budget);
        let _ = env.commit(txn);
        drop(env);

        let env = reopen(&mem);
        let db = env.db("d").unwrap();
        let a = env.get(db, b"a").unwrap().unwrap();
        let b = env.get(db, b"b").unwrap();
        if a == b"v2" {
            assert_eq!(b, Some(b"v2".to_vec()), "budget {budget}: partial commit");
        } else {
            assert_eq!(a, b"v1".to_vec(), "budget {budget}");
            assert_eq!(b, None, "budget {budget}: partial commit");
        }
    }
}

#[test]
fn checkpoint_truncates_log_and_persists() {
    let mem = MemStore::new();
    {
        let env = new_env(&mem);
        let db = env.create_db("d").unwrap();
        for i in 0..100u32 {
            let mut txn = env.begin().unwrap();
            env.put(&mut txn, db, &i.to_be_bytes(), &[7u8; 64]).unwrap();
            env.commit(txn).unwrap();
        }
        env.checkpoint().unwrap();
        // The log is truncated; all state now lives in the page file.
        assert_eq!(mem.raw("bdb.wal").unwrap().len(), 0);
    }
    let env = reopen(&mem);
    let db = env.db("d").unwrap();
    assert_eq!(
        env.get(db, &5u32.to_be_bytes()).unwrap(),
        Some(vec![7u8; 64])
    );
}

#[test]
fn log_grows_without_checkpoint_figure_11_effect() {
    let mem = MemStore::new();
    let env = new_env(&mem);
    let db = env.create_db("d").unwrap();
    let mut sizes = Vec::new();
    for round in 0..4 {
        for i in 0..200u32 {
            let mut txn = env.begin().unwrap();
            env.put(&mut txn, db, &i.to_be_bytes(), &[round as u8; 90])
                .unwrap();
            env.commit(txn).unwrap();
        }
        sizes.push(env.disk_size().unwrap());
    }
    assert!(
        sizes.windows(2).all(|w| w[0] < w[1]),
        "log must keep growing: {sizes:?}"
    );
}

#[test]
fn before_and_after_images_in_log() {
    // §7.4: updates log both images, so updating 100-byte values writes
    // >200 bytes per operation.
    let mem = MemStore::new();
    let env = new_env(&mem);
    let db = env.create_db("d").unwrap();
    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k", &[1u8; 100]).unwrap();
    env.commit(txn).unwrap();
    let (bytes_before, _, _) = env.stats();
    let mut txn = env.begin().unwrap();
    env.put(&mut txn, db, b"k", &[2u8; 100]).unwrap();
    env.commit(txn).unwrap();
    let (bytes_after, _, _) = env.stats();
    let update_bytes = bytes_after - bytes_before;
    assert!(
        update_bytes > 200,
        "update logged only {update_bytes} bytes"
    );
}

#[test]
fn single_writer_enforced() {
    let mem = MemStore::new();
    let env = new_env(&mem);
    let _t1 = env.begin().unwrap();
    assert!(env.begin().is_err());
}

#[test]
fn scan_is_ordered() {
    let mem = MemStore::new();
    let env = new_env(&mem);
    let db = env.create_db("d").unwrap();
    let mut txn = env.begin().unwrap();
    for i in [5u32, 1, 9, 3, 7] {
        env.put(&mut txn, db, &i.to_be_bytes(), b"x").unwrap();
    }
    env.commit(txn).unwrap();
    let mut keys = Vec::new();
    env.for_each(db, &mut |k, _| {
        keys.push(u32::from_be_bytes(k.try_into().unwrap()))
    })
    .unwrap();
    assert_eq!(keys, vec![1, 3, 5, 7, 9]);
}

#[test]
fn large_volume_with_cache_pressure() {
    let mem = MemStore::new();
    let env = Env::create(Arc::new(mem.clone()), BaselineConfig { cache_pages: 16 }).unwrap();
    let db = env.create_db("d").unwrap();
    for i in 0..3000u32 {
        let mut txn = env.begin().unwrap();
        env.put(&mut txn, db, &i.to_be_bytes(), &[i as u8; 100])
            .unwrap();
        env.commit(txn).unwrap();
    }
    for i in (0..3000u32).step_by(37) {
        assert_eq!(
            env.get(db, &i.to_be_bytes()).unwrap(),
            Some(vec![i as u8; 100])
        );
    }
    env.checkpoint().unwrap();
    drop(env);
    let env = reopen(&mem);
    let db = env.db("d").unwrap();
    assert_eq!(
        env.get(db, &2999u32.to_be_bytes()).unwrap(),
        Some(vec![2999u32 as u8; 100])
    );
}
