//! Shared vocabulary types of the TDB stack.
//!
//! Every store crate (`chunk-store`, `object-store`, `collection-store`,
//! `backup-store`, `tdb-platform`) keeps its own precise error enum, but
//! callers rarely want to match on crate-specific variants: a license
//! server cares whether a failure was *tamper*, *replay*, *out of space*,
//! or *contention*, not which layer noticed first. This leaf crate defines
//! the stable classification ([`ErrorKind`]) and a unified [`Error`] every
//! store error converts into, plus the [`Durability`] commit mode that
//! replaces the old `commit(durable: bool)` parameters.
//!
//! The crate sits *below* the stores (it depends on nothing), so each
//! store crate can implement `From<ItsError> for tdb_core::Error` locally
//! and accept [`Durability`] in its public API without dependency cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Commit durability mode (paper §3.1: durable vs. nondurable commits).
///
/// Replaces the historical `commit(durable: bool)` parameters — bools at
/// call sites were unreadable and were mis-ordered at least once in bench
/// code. `Durable` blocks until a group anchor (sync + MAC'd anchor +
/// one-way counter bump) covers the commit; `Lazy` returns once the commit
/// record is in the log buffer, durable no later than the next durable
/// commit, checkpoint, or clean shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Durability {
    /// Block until the commit is anchored (survives crash + replay check).
    #[default]
    Durable,
    /// Nondurable ("lazy") commit: atomic, but may be lost in a crash
    /// until a later anchor covers it. An order of magnitude cheaper.
    Lazy,
}

impl Durability {
    /// `true` for [`Durability::Durable`]. Bridge for internal code that
    /// still plumbs a boolean.
    pub fn is_durable(self) -> bool {
        matches!(self, Durability::Durable)
    }
}

impl From<bool> for Durability {
    /// `true` → `Durable`, `false` → `Lazy` (the historical encoding).
    fn from(durable: bool) -> Self {
        if durable {
            Durability::Durable
        } else {
            Durability::Lazy
        }
    }
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Durability::Durable => write!(f, "durable"),
            Durability::Lazy => write!(f, "lazy"),
        }
    }
}

/// Stable, layer-independent classification of a TDB failure.
///
/// The set is part of the public API contract: tests (including the crash
/// torture harness) and applications classify by kind instead of matching
/// crate-specific enum variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Stored state failed hash/MAC verification, or records are
    /// structurally impossible: the untrusted store was modified.
    Tamper,
    /// The database is internally consistent but *old*: its anchor counter
    /// is behind the hardware one-way counter (a replayed copy).
    Replay,
    /// The store cannot grow and no space could be reclaimed.
    OutOfSpace,
    /// A 2PL lock wait timed out due to plain contention.
    LockTimeout,
    /// A 2PL lock wait was part of a wait-for cycle; the timeout broke a
    /// genuine deadlock. Retrying the whole transaction is appropriate.
    Deadlock,
    /// The underlying platform store failed (I/O, missing file, short
    /// read/write).
    Io,
    /// Pickling/unpickling failed: unknown class id, malformed bytes, or a
    /// type mismatch on open.
    Codec,
    /// A referenced chunk, object, collection, index, root, or backup does
    /// not exist.
    NotFound,
    /// A uniqueness or schema constraint was violated.
    Constraint,
    /// The API was misused (inactive transaction, read-only handle,
    /// iterator conflict, invalid configuration, ...).
    Usage,
    /// Anything not covered above.
    Other,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Tamper => "tamper",
            ErrorKind::Replay => "replay",
            ErrorKind::OutOfSpace => "out-of-space",
            ErrorKind::LockTimeout => "lock-timeout",
            ErrorKind::Deadlock => "deadlock",
            ErrorKind::Io => "io",
            ErrorKind::Codec => "codec",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Constraint => "constraint",
            ErrorKind::Usage => "usage",
            ErrorKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// The unified TDB error: a stable [`ErrorKind`] plus the precise message
/// (and source error, when one exists) from the layer that failed.
#[derive(Debug)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    source: Option<Box<dyn std::error::Error + Send + Sync + 'static>>,
}

impl Error {
    /// Build an error from a kind and message.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Error {
            kind,
            message: message.into(),
            source: None,
        }
    }

    /// Build an error wrapping the precise lower-layer error as `source`.
    pub fn with_source(
        kind: ErrorKind,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        Error {
            kind,
            message: source.to_string(),
            source: Some(Box::new(source)),
        }
    }

    /// The stable classification.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The precise message from the failing layer.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether retrying the enclosing transaction is reasonable (lock
    /// timeouts and broken deadlocks).
    pub fn is_retryable(&self) -> bool {
        matches!(self.kind, ErrorKind::LockTimeout | ErrorKind::Deadlock)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// Result alias over the unified [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_round_trips_the_bool_encoding() {
        assert!(Durability::from(true).is_durable());
        assert!(!Durability::from(false).is_durable());
        assert_eq!(Durability::default(), Durability::Durable);
    }

    #[test]
    fn error_kind_and_display() {
        let e = Error::new(ErrorKind::Tamper, "hash mismatch at seg 3");
        assert_eq!(e.kind(), ErrorKind::Tamper);
        assert_eq!(e.to_string(), "tamper: hash mismatch at seg 3");
        assert!(!e.is_retryable());
        assert!(Error::new(ErrorKind::Deadlock, "cycle").is_retryable());
    }

    #[test]
    fn error_preserves_source() {
        let io = std::io::Error::other("disk gone");
        let e = Error::with_source(ErrorKind::Io, io);
        assert!(std::error::Error::source(&e).is_some());
        assert_eq!(e.message(), "disk gone");
    }
}
