//! End-to-end chunk store tests: the trusted-storage guarantees of paper §3.

use chunk_store::Durability;
use chunk_store::{ChunkStore, ChunkStoreConfig, ChunkStoreError, SecurityMode};
use std::sync::Arc;
use tdb_platform::{
    FaultPlan, FaultStore, MemSecretStore, MemStore, OneWayCounter, TamperableCounter,
    UntrustedStore, VolatileCounter,
};

fn cfg() -> ChunkStoreConfig {
    ChunkStoreConfig::small_for_tests()
}

fn secret() -> MemSecretStore {
    MemSecretStore::from_label("store-tests")
}

struct Fixture {
    mem: MemStore,
    counter: VolatileCounter,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            mem: MemStore::new(),
            counter: VolatileCounter::new(),
        }
    }

    fn create(&self) -> ChunkStore {
        ChunkStore::create(
            Arc::new(self.mem.clone()),
            &secret(),
            Arc::new(self.counter.clone()),
            cfg(),
        )
        .unwrap()
    }

    fn create_with(&self, cfg: ChunkStoreConfig) -> ChunkStore {
        ChunkStore::create(
            Arc::new(self.mem.clone()),
            &secret(),
            Arc::new(self.counter.clone()),
            cfg,
        )
        .unwrap()
    }

    fn open(&self) -> chunk_store::Result<ChunkStore> {
        ChunkStore::open(
            Arc::new(self.mem.clone()),
            &secret(),
            Arc::new(self.counter.clone()),
            cfg(),
        )
    }
}

#[test]
fn write_read_roundtrip_within_session() {
    let fx = Fixture::new();
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"meter: 1").unwrap();
    // Read-your-writes before commit.
    assert_eq!(store.read(id).unwrap(), b"meter: 1");
    store.commit(Durability::Durable).unwrap();
    assert_eq!(store.read(id).unwrap(), b"meter: 1");
    // Overwrite with different size.
    store
        .write(id, b"a much longer meter state than before")
        .unwrap();
    store.commit(Durability::Durable).unwrap();
    assert_eq!(
        store.read(id).unwrap(),
        b"a much longer meter state than before"
    );
}

#[test]
fn state_survives_reopen() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        for i in 0..50u8 {
            let id = store.allocate_chunk_id().unwrap();
            store.write(id, &[i; 33]).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
    }
    let store = fx.open().unwrap();
    for i in 0..50u64 {
        assert_eq!(
            store.read(chunk_store::ChunkId(i)).unwrap(),
            vec![i as u8; 33]
        );
    }
    assert_eq!(store.live_chunks(), 50);
}

#[test]
fn reopen_after_checkpoint_and_more_commits() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let ids: Vec<_> = (0..20)
            .map(|_| store.allocate_chunk_id().unwrap())
            .collect();
        for (i, id) in ids.iter().enumerate() {
            store.write(*id, format!("v1-{i}").as_bytes()).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
        store.checkpoint().unwrap();
        // Post-checkpoint updates live only in the residual log.
        for (i, id) in ids.iter().enumerate().take(10) {
            store.write(*id, format!("v2-{i}").as_bytes()).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
    }
    let store = fx.open().unwrap();
    for i in 0..10u64 {
        assert_eq!(
            store.read(chunk_store::ChunkId(i)).unwrap(),
            format!("v2-{i}").as_bytes()
        );
    }
    for i in 10..20u64 {
        assert_eq!(
            store.read(chunk_store::ChunkId(i)).unwrap(),
            format!("v1-{i}").as_bytes()
        );
    }
}

#[test]
fn unallocated_and_unwritten_errors() {
    let fx = Fixture::new();
    let store = fx.create();
    let bogus = chunk_store::ChunkId(999);
    assert!(matches!(
        store.read(bogus),
        Err(ChunkStoreError::NotAllocated(_))
    ));
    assert!(matches!(
        store.write(bogus, b"x"),
        Err(ChunkStoreError::NotAllocated(_))
    ));
    assert!(matches!(
        store.deallocate(bogus),
        Err(ChunkStoreError::NotAllocated(_))
    ));

    let id = store.allocate_chunk_id().unwrap();
    store.commit(Durability::Durable).unwrap();
    assert!(matches!(
        store.read(id),
        Err(ChunkStoreError::NotWritten(_))
    ));
}

#[test]
fn deallocate_frees_and_reuses_ids() {
    let fx = Fixture::new();
    let store = fx.create();
    let a = store.allocate_chunk_id().unwrap();
    store.write(a, b"gone soon").unwrap();
    store.commit(Durability::Durable).unwrap();
    store.deallocate(a).unwrap();
    store.commit(Durability::Durable).unwrap();
    assert!(matches!(
        store.read(a),
        Err(ChunkStoreError::NotAllocated(_))
    ));
    // The freed id is reused.
    let b = store.allocate_chunk_id().unwrap();
    assert_eq!(a, b);
}

#[test]
fn free_ids_survive_reopen() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let a = store.allocate_chunk_id().unwrap();
        let b = store.allocate_chunk_id().unwrap();
        store.write(a, b"a").unwrap();
        store.write(b, b"b").unwrap();
        store.commit(Durability::Durable).unwrap();
        store.deallocate(a).unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    let store = fx.open().unwrap();
    let c = store.allocate_chunk_id().unwrap();
    assert_eq!(c.as_u64(), 0, "freed id 0 should be reused after reopen");
}

#[test]
fn discard_rolls_back_batch() {
    let fx = Fixture::new();
    let store = fx.create();
    let a = store.allocate_chunk_id().unwrap();
    store.write(a, b"committed").unwrap();
    store.commit(Durability::Durable).unwrap();

    store.write(a, b"staged").unwrap();
    let b = store.allocate_chunk_id().unwrap();
    store.write(b, b"staged-new").unwrap();
    store.discard();
    assert_eq!(store.read(a).unwrap(), b"committed");
    assert!(matches!(
        store.read(b),
        Err(ChunkStoreError::NotAllocated(_))
    ));
    // b's id returned to the free pool.
    assert_eq!(store.allocate_chunk_id().unwrap(), b);
}

#[test]
fn atomic_batch_commit() {
    let fx = Fixture::new();
    let store = fx.create();
    let ids: Vec<_> = (0..10)
        .map(|_| store.allocate_chunk_id().unwrap())
        .collect();
    for id in &ids {
        store.write(*id, b"batch").unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    // Batch larger than max-ops-per-commit still commits atomically.
    let many: Vec<_> = (0..500)
        .map(|_| store.allocate_chunk_id().unwrap())
        .collect();
    for id in &many {
        store.write(*id, &[1u8; 40]).unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    for id in many {
        assert_eq!(store.read(id).unwrap(), vec![1u8; 40]);
    }
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

/// Run `work` against a store whose writes crash after `budget` bytes, then
/// reopen from the surviving bytes and return the recovered store.
fn crash_and_recover(
    budget: u64,
    setup: impl FnOnce(&ChunkStore),
    work: impl FnOnce(&ChunkStore),
) -> (ChunkStore, MemStore) {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let plan = FaultPlan::unlimited();
    let faulty = FaultStore::new(mem.clone(), plan.clone());
    let store = ChunkStore::create(
        Arc::new(faulty),
        &secret(),
        Arc::new(counter.clone()),
        cfg(),
    )
    .unwrap();
    setup(&store);
    plan.rearm(budget);
    work(&store);
    drop(store);
    let recovered =
        ChunkStore::open(Arc::new(mem.clone()), &secret(), Arc::new(counter), cfg()).unwrap();
    (recovered, mem)
}

#[test]
fn crash_mid_commit_loses_nothing_durable() {
    for budget in [0u64, 1, 7, 33, 64, 100, 200, 400, 1000] {
        let (recovered, _) = crash_and_recover(
            budget,
            |store| {
                for i in 0..10u8 {
                    let id = store.allocate_chunk_id().unwrap();
                    store.write(id, &[i; 20]).unwrap();
                }
                store.commit(Durability::Durable).unwrap();
            },
            |store| {
                // This durable commit crashes partway.
                for i in 0..10u64 {
                    store.write(chunk_store::ChunkId(i), &[0xEE; 20]).unwrap();
                }
                let _ = store.commit(Durability::Durable);
            },
        );
        // Either the whole update survived or none of it; the old state is
        // never corrupted.
        let first = recovered.read(chunk_store::ChunkId(0)).unwrap();
        assert!(
            first == vec![0u8; 20] || first == vec![0xEE; 20],
            "budget {budget}"
        );
        for i in 1..10u64 {
            let got = recovered.read(chunk_store::ChunkId(i)).unwrap();
            // Atomicity: all chunks agree on which version survived.
            if first == vec![0xEE; 20] {
                assert_eq!(got, vec![0xEE; 20], "budget {budget}, chunk {i}");
            } else {
                assert_eq!(got, vec![i as u8; 20], "budget {budget}, chunk {i}");
            }
        }
    }
}

#[test]
fn nondurable_commit_never_survives_crash() {
    let (recovered, _) = crash_and_recover(
        u64::MAX,
        |store| {
            let id = store.allocate_chunk_id().unwrap();
            store.write(id, b"durable state").unwrap();
            store.commit(Durability::Durable).unwrap();
        },
        |store| {
            store
                .write(chunk_store::ChunkId(0), b"nondurable update")
                .unwrap();
            store.commit(Durability::Lazy).unwrap();
            // Crash without a durable commit: the nondurable one must die,
            // even though its bytes were fully written.
        },
    );
    assert_eq!(
        recovered.read(chunk_store::ChunkId(0)).unwrap(),
        b"durable state"
    );
}

#[test]
fn durable_commit_persists_prior_nondurable_commits() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let a = store.allocate_chunk_id().unwrap();
        store.write(a, b"v1").unwrap();
        store.commit(Durability::Lazy).unwrap();
        store.write(a, b"v2").unwrap();
        store.commit(Durability::Lazy).unwrap();
        let b = store.allocate_chunk_id().unwrap();
        store.write(b, b"w").unwrap();
        store.commit(Durability::Durable).unwrap(); // makes v2 + w durable
    }
    let store = fx.open().unwrap();
    assert_eq!(store.read(chunk_store::ChunkId(0)).unwrap(), b"v2");
    assert_eq!(store.read(chunk_store::ChunkId(1)).unwrap(), b"w");
}

#[test]
fn crash_during_checkpoint_recovers() {
    for budget in [10u64, 50, 150, 300, 600, 1200, 2400] {
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let plan = FaultPlan::unlimited();
        let faulty = FaultStore::new(mem.clone(), plan.clone());
        let store = ChunkStore::create(
            Arc::new(faulty),
            &secret(),
            Arc::new(counter.clone()),
            cfg(),
        )
        .unwrap();
        for i in 0..30u8 {
            let id = store.allocate_chunk_id().unwrap();
            store.write(id, &[i; 25]).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
        plan.rearm(budget);
        let _ = store.checkpoint();
        drop(store);
        let recovered =
            ChunkStore::open(Arc::new(mem), &secret(), Arc::new(counter), cfg()).unwrap();
        for i in 0..30u64 {
            assert_eq!(
                recovered.read(chunk_store::ChunkId(i)).unwrap(),
                vec![i as u8; 25],
                "budget {budget}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tamper and replay detection
// ---------------------------------------------------------------------------

#[test]
fn bit_flip_in_chunk_data_is_detected_on_read() {
    let fx = Fixture::new();
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, &[0x55; 200]).unwrap();
    store.commit(Durability::Durable).unwrap();

    // Flip bits throughout segment 0; at least the chunk read must fail.
    let raw = fx.mem.raw("seg.000000").unwrap();
    let mut detected = false;
    for off in (20..raw.len() as u64).step_by(16) {
        fx.mem.corrupt("seg.000000", off, 1).unwrap();
        match store.read(id) {
            Err(ChunkStoreError::TamperDetected(_)) => detected = true,
            Ok(data) => assert_eq!(data, vec![0x55; 200], "silent corruption!"),
            Err(e) => panic!("unexpected error {e}"),
        }
        fx.mem.corrupt("seg.000000", off, 1).unwrap(); // restore
    }
    assert!(detected, "no flip was ever detected");
}

#[test]
fn tampered_residual_log_is_detected_at_open() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, b"pay-per-view count: 10").unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    // Corrupt the log tail (where the commit record lives).
    let raw = fx.mem.raw("seg.000000").unwrap();
    fx.mem
        .corrupt("seg.000000", raw.len() as u64 - 10, 4)
        .unwrap();
    match fx.open() {
        Err(ChunkStoreError::TamperDetected(_)) => {}
        Err(e) => panic!("expected tamper detection, got {e}"),
        Ok(_) => panic!("tampered database opened successfully"),
    }
}

#[test]
fn tampered_anchor_is_detected() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, b"x").unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    fx.mem.corrupt("anchor.a", 30, 2).unwrap();
    fx.mem.corrupt("anchor.b", 30, 2).unwrap();
    assert!(matches!(
        fx.open(),
        Err(ChunkStoreError::TamperDetected(_) | ChunkStoreError::ConfigMismatch(_))
    ));
}

#[test]
fn whole_database_replay_is_detected() {
    let fx = Fixture::new();
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"balance: $100").unwrap();
    store.commit(Durability::Durable).unwrap();

    // Consumer saves a copy of the database...
    let saved = fx.mem.deep_clone();

    // ...spends money...
    store.write(id, b"balance: $0").unwrap();
    store.commit(Durability::Durable).unwrap();
    drop(store);

    // ...and replays the saved copy to get the balance back.
    fx.mem.restore_from(&saved);
    match fx.open() {
        Err(ChunkStoreError::ReplayDetected {
            anchor_counter,
            hardware_counter,
        }) => {
            assert!(anchor_counter < hardware_counter);
        }
        Err(e) => panic!("expected replay detection, got {e}"),
        Ok(_) => panic!("replayed database opened successfully"),
    }
}

#[test]
fn replay_succeeds_if_counter_is_also_rolled_back() {
    // Sanity check that detection really rests on the one-way property:
    // with a (hypothetically) resettable counter the attack works.
    let mem = MemStore::new();
    let counter = TamperableCounter::new();
    let store = ChunkStore::create(
        Arc::new(mem.clone()),
        &secret(),
        Arc::new(counter.clone()),
        cfg(),
    )
    .unwrap();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"balance: $100").unwrap();
    store.commit(Durability::Durable).unwrap();
    let saved = mem.deep_clone();
    let counter_at_save = counter.read().unwrap();
    store.write(id, b"balance: $0").unwrap();
    store.commit(Durability::Durable).unwrap();
    drop(store);

    mem.restore_from(&saved);
    counter.set(counter_at_save); // the hardware violation
    let store = ChunkStore::open(Arc::new(mem), &secret(), Arc::new(counter), cfg()).unwrap();
    assert_eq!(store.read(id).unwrap(), b"balance: $100");
}

#[test]
fn wrong_secret_cannot_open() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, b"secret data").unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    let result = ChunkStore::open(
        Arc::new(fx.mem.clone()),
        &MemSecretStore::from_label("WRONG"),
        Arc::new(fx.counter.clone()),
        cfg(),
    );
    assert!(matches!(result, Err(ChunkStoreError::TamperDetected(_))));
}

#[test]
fn ciphertext_reveals_nothing() {
    let fx = Fixture::new();
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    let plaintext = b"TOP-SECRET-CONTENT-KEY-0123456789";
    store.write(id, plaintext).unwrap();
    store.commit(Durability::Durable).unwrap();
    store.checkpoint().unwrap();
    for name in fx.mem.list().unwrap() {
        let raw = fx.mem.raw(&name).unwrap();
        assert!(
            !raw.windows(plaintext.len()).any(|w| w == plaintext),
            "plaintext leaked into {name}"
        );
        // Even a fragment must not appear.
        assert!(
            !raw.windows(10).any(|w| w == &plaintext[..10]),
            "fragment leaked into {name}"
        );
    }
}

#[test]
fn security_off_stores_plaintext_and_skips_counter() {
    let fx = Fixture::new();
    let mut c = cfg();
    c.security = SecurityMode::Off;
    let store = fx.create_with(c);
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"VISIBLE-PLAINTEXT").unwrap();
    store.commit(Durability::Durable).unwrap();
    let raw = fx.mem.raw("seg.000000").unwrap();
    assert!(raw.windows(17).any(|w| w == b"VISIBLE-PLAINTEXT"));
    assert_eq!(
        fx.counter.read().unwrap(),
        0,
        "Off mode must not touch the counter"
    );
}

#[test]
fn mode_mismatch_is_rejected() {
    let fx = Fixture::new();
    {
        let _ = fx.create(); // Full mode
    }
    let mut off = cfg();
    off.security = SecurityMode::Off;
    let result = ChunkStore::open(
        Arc::new(fx.mem.clone()),
        &secret(),
        Arc::new(fx.counter.clone()),
        off,
    );
    assert!(matches!(
        result,
        Err(ChunkStoreError::ConfigMismatch(_) | ChunkStoreError::TamperDetected(_))
    ));
}

// ---------------------------------------------------------------------------
// Cleaning, utilization, growth
// ---------------------------------------------------------------------------

#[test]
fn heavy_overwrite_traffic_is_cleaned_and_bounded() {
    let fx = Fixture::new();
    let store = fx.create();
    let ids: Vec<_> = (0..16)
        .map(|_| store.allocate_chunk_id().unwrap())
        .collect();
    for id in &ids {
        store.write(*id, &[0u8; 100]).unwrap();
    }
    store.commit(Durability::Durable).unwrap();

    // 400 rounds of overwrites: ~6.4 MB of writes through 4 KiB segments.
    for round in 0..400u32 {
        for id in &ids {
            store.write(*id, &round.to_le_bytes().repeat(25)).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
    }
    let stats = store.stats();
    assert!(stats.cleaner_passes > 0, "cleaner never ran");
    assert!(
        stats.cleaner_segments_freed > 0,
        "cleaner never freed a segment"
    );

    // The database stays bounded: live data is ~16*~120B, so a handful of
    // segments suffices. Without cleaning we would have hundreds.
    let size = store.disk_size();
    assert!(size < 40 * 4096, "database grew unboundedly: {size} bytes");

    // And the data is still correct.
    for id in &ids {
        assert_eq!(store.read(*id).unwrap(), 399u32.to_le_bytes().repeat(25));
    }
}

#[test]
fn database_survives_reopen_after_heavy_cleaning() {
    let fx = Fixture::new();
    {
        let store = fx.create();
        let ids: Vec<_> = (0..16)
            .map(|_| store.allocate_chunk_id().unwrap())
            .collect();
        for round in 0..200u32 {
            for id in &ids {
                store.write(*id, &round.to_le_bytes().repeat(30)).unwrap();
            }
            store.commit(Durability::Durable).unwrap();
        }
    }
    let store = fx.open().unwrap();
    for i in 0..16u64 {
        assert_eq!(
            store.read(chunk_store::ChunkId(i)).unwrap(),
            199u32.to_le_bytes().repeat(30)
        );
    }
}

#[test]
fn higher_max_utilization_gives_smaller_database() {
    let mut sizes = Vec::new();
    for util in [0.3, 0.6, 0.9] {
        let fx = Fixture::new();
        let mut c = cfg();
        c.max_utilization = util;
        c.free_segment_reserve = 1;
        let store = fx.create_with(c);
        let ids: Vec<_> = (0..32)
            .map(|_| store.allocate_chunk_id().unwrap())
            .collect();
        for round in 0..150u32 {
            for id in &ids {
                store.write(*id, &round.to_le_bytes().repeat(25)).unwrap();
            }
            store.commit(Durability::Durable).unwrap();
        }
        store.checkpoint().unwrap();
        sizes.push(store.disk_size());
    }
    assert!(
        sizes[0] >= sizes[2],
        "size at util 0.3 ({}) should be >= size at util 0.9 ({})",
        sizes[0],
        sizes[2]
    );
}

#[test]
fn out_of_space_when_growth_disabled() {
    let fx = Fixture::new();
    let mut c = cfg();
    c.allow_growth = false;
    c.initial_segments = 3;
    let store = fx.create_with(c);
    let mut result = Ok(());
    for i in 0..2000u32 {
        let id = match store.allocate_chunk_id() {
            Ok(id) => id,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if let Err(e) = store
            .write(id, &[1u8; 64])
            .and_then(|_| store.commit(Durability::Durable))
        {
            result = Err(e);
            break;
        }
        let _ = i;
    }
    assert!(matches!(result, Err(ChunkStoreError::OutOfSpace { .. })));
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

#[test]
fn snapshot_isolation_and_reads() {
    let fx = Fixture::new();
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"version 1").unwrap();
    store.commit(Durability::Durable).unwrap();

    let snap = store.snapshot();
    store.write(id, b"version 2").unwrap();
    store.commit(Durability::Durable).unwrap();

    assert_eq!(store.read(id).unwrap(), b"version 2");
    assert_eq!(store.read_at_snapshot(&snap, id).unwrap(), b"version 1");
}

#[test]
fn snapshot_survives_cleaning() {
    let fx = Fixture::new();
    let store = fx.create();
    let ids: Vec<_> = (0..8).map(|_| store.allocate_chunk_id().unwrap()).collect();
    for id in &ids {
        store.write(*id, b"snapshotted-v0").unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    let snap = store.snapshot();

    // Churn enough to force cleaning.
    for round in 0..300u32 {
        for id in &ids {
            store.write(*id, &round.to_le_bytes().repeat(20)).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
    }
    assert!(store.stats().cleaner_passes > 0);
    for id in &ids {
        assert_eq!(
            store.read_at_snapshot(&snap, *id).unwrap(),
            b"snapshotted-v0"
        );
    }

    // Dropping the snapshot releases the pin; later cleaning reclaims.
    drop(snap);
    for round in 0..100u32 {
        for id in &ids {
            store.write(*id, &round.to_le_bytes().repeat(20)).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
    }
    assert!(store.disk_size() < 60 * 4096);
}

#[test]
fn snapshot_diff_lists_changes() {
    let fx = Fixture::new();
    let store = fx.create();
    let ids: Vec<_> = (0..6).map(|_| store.allocate_chunk_id().unwrap()).collect();
    for id in &ids {
        store.write(*id, b"base").unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    let before = store.snapshot();

    store.write(ids[1], b"changed").unwrap();
    store.deallocate(ids[4]).unwrap();
    store.commit(Durability::Durable).unwrap();
    // Deallocation takes effect at commit; the freed id is now reusable.
    let new_id = store.allocate_chunk_id().unwrap();
    assert_eq!(new_id, ids[4], "dealloc'd id reused after commit");
    store.write(new_id, b"recreated").unwrap();
    let fresh = store.allocate_chunk_id().unwrap();
    store.write(fresh, b"brand new").unwrap();
    store.commit(Durability::Durable).unwrap();
    let after = store.snapshot();

    let diff = store.diff_snapshots(&before, &after);
    let changed: Vec<u64> = diff.changed.iter().map(|(id, _)| id.as_u64()).collect();
    assert!(changed.contains(&ids[1].as_u64()));
    assert!(changed.contains(&fresh.as_u64()));
    assert!(changed.contains(&ids[4].as_u64())); // recreated counts as changed
    assert!(!changed.contains(&ids[0].as_u64()));
    assert!(diff.removed.is_empty());

    assert!(before.commit_seq() < after.commit_seq());
    assert_eq!(after.len(), 7);
}

#[test]
fn empty_snapshot_of_fresh_store() {
    let fx = Fixture::new();
    let store = fx.create();
    let snap = store.snapshot();
    assert!(snap.is_empty());
    assert_eq!(snap.chunk_ids(), vec![]);
}

// ---------------------------------------------------------------------------
// Accounting / stats
// ---------------------------------------------------------------------------

#[test]
fn stats_track_write_amplification_sources() {
    let fx = Fixture::new();
    let store = fx.create();
    let before = store.stats();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, &[7u8; 100]).unwrap();
    store.commit(Durability::Durable).unwrap();
    let after = store.stats();
    let delta = after.since(&before);
    assert_eq!(delta.commits, 1);
    assert_eq!(delta.durable_commits, 1);
    assert!(delta.chunk_bytes_appended >= 100);
    assert!(delta.commit_bytes_appended > 0);
    assert!(delta.syncs >= 1);
    assert_eq!(delta.counter_increments, 1);
    assert!(delta.bytes_appended >= delta.chunk_bytes_appended + delta.commit_bytes_appended);
}

#[test]
fn nondurable_commits_do_not_sync_or_touch_counter() {
    let fx = Fixture::new();
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"x").unwrap();
    let before = store.stats();
    let counter_before = fx.counter.read().unwrap();
    store.commit(Durability::Lazy).unwrap();
    let delta = store.stats().since(&before);
    assert_eq!(delta.syncs, 0, "nondurable commit must not sync");
    assert_eq!(delta.anchor_writes, 0);
    assert_eq!(fx.counter.read().unwrap(), counter_before);
}

#[test]
fn utilization_reported_in_unit_range() {
    let fx = Fixture::new();
    let store = fx.create();
    for _ in 0..50 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &[1u8; 80]).unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    let u = store.utilization();
    assert!(u > 0.0 && u <= 1.0, "utilization {u}");
}
