//! Property-based model checking of the chunk store.
//!
//! A random sequence of operations runs against both the real store and a
//! trivial in-memory model (`HashMap<u64, Vec<u8>>` + allocation set). After
//! every step the observable state must match; `Reopen` steps additionally
//! exercise recovery, and `CrashReopen` steps drop everything since the last
//! durable commit before checking the model agreement.

use chunk_store::Durability;
use chunk_store::{ChunkId, ChunkStore, ChunkStoreConfig, SecurityMode};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a chunk and write `len` bytes of deterministic content.
    Insert { len: usize },
    /// Overwrite the i-th live chunk (mod live count).
    Update { pick: usize, len: usize },
    /// Deallocate the i-th live chunk.
    Remove { pick: usize },
    /// Commit staged operations.
    Commit { durable: bool },
    /// Drop staged operations.
    Discard,
    /// Take a checkpoint.
    Checkpoint,
    /// Close and reopen the store (recovery of a cleanly committed state).
    Reopen,
    /// Simulate a crash: discard the batch, reopen — everything since the
    /// last durable commit must be gone.
    CrashReopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1usize..300).prop_map(|len| Op::Insert { len }),
        4 => (any::<usize>(), 1usize..300).prop_map(|(pick, len)| Op::Update { pick, len }),
        2 => any::<usize>().prop_map(|pick| Op::Remove { pick }),
        4 => any::<bool>().prop_map(|durable| Op::Commit { durable }),
        1 => Just(Op::Discard),
        1 => Just(Op::Checkpoint),
        1 => Just(Op::Reopen),
        1 => Just(Op::CrashReopen),
    ]
}

fn content(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

#[derive(Default, Clone)]
struct Model {
    /// Committed state.
    committed: HashMap<u64, Vec<u8>>,
    /// State as of the last *durable* commit.
    durable: HashMap<u64, Vec<u8>>,
    /// Staged batch (None = dealloc).
    staged: HashMap<u64, Option<Vec<u8>>>,
}

impl Model {
    fn visible(&self) -> HashMap<u64, Vec<u8>> {
        let mut v = self.committed.clone();
        for (id, op) in &self.staged {
            match op {
                Some(data) => {
                    v.insert(*id, data.clone());
                }
                None => {
                    v.remove(id);
                }
            }
        }
        v
    }
}

fn check_agreement(store: &ChunkStore, model: &Model, ctx: &str) {
    for (id, data) in model.visible() {
        let got = store
            .read(ChunkId(id))
            .unwrap_or_else(|e| panic!("{ctx}: chunk {id} unreadable: {e}"));
        assert_eq!(got, data, "{ctx}: chunk {id} content mismatch");
    }
    // `live_chunks` counts committed map entries, so only compare when no
    // operations are staged.
    if model.staged.is_empty() {
        assert_eq!(
            store.live_chunks() as usize,
            model.committed.len(),
            "{ctx}: live count"
        );
    }
}

fn run_scenario(ops: Vec<Op>, security: SecurityMode) {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let secret = MemSecretStore::from_label("prop-model");
    let mut cfg = ChunkStoreConfig::small_for_tests();
    cfg.security = security;

    let mut store = ChunkStore::create(
        Arc::new(mem.clone()),
        &secret,
        Arc::new(counter.clone()),
        cfg.clone(),
    )
    .unwrap();
    let mut model = Model::default();
    let mut seed = 0u64;

    for (step, op) in ops.into_iter().enumerate() {
        seed += 1;
        let ctx = format!("step {step} ({op:?})");
        match op {
            Op::Insert { len } => {
                let id = store.allocate_chunk_id().unwrap();
                let data = content(seed, len);
                store.write(id, &data).unwrap();
                model.staged.insert(id.as_u64(), Some(data));
            }
            Op::Update { pick, len } => {
                let visible = model.visible();
                if visible.is_empty() {
                    continue;
                }
                let mut keys: Vec<u64> = visible.keys().copied().collect();
                keys.sort_unstable();
                let id = keys[pick % keys.len()];
                let data = content(seed, len);
                store.write(ChunkId(id), &data).unwrap();
                model.staged.insert(id, Some(data));
            }
            Op::Remove { pick } => {
                let visible = model.visible();
                if visible.is_empty() {
                    continue;
                }
                let mut keys: Vec<u64> = visible.keys().copied().collect();
                keys.sort_unstable();
                let id = keys[pick % keys.len()];
                store.deallocate(ChunkId(id)).unwrap();
                model.staged.insert(id, None);
            }
            Op::Commit { durable } => {
                store.commit(Durability::from(durable)).unwrap();
                for (id, op) in model.staged.drain() {
                    match op {
                        Some(data) => {
                            model.committed.insert(id, data);
                        }
                        None => {
                            model.committed.remove(&id);
                        }
                    }
                }
                if durable {
                    model.durable = model.committed.clone();
                }
            }
            Op::Discard => {
                store.discard();
                model.staged.clear();
            }
            Op::Checkpoint => {
                // checkpoint() flushes the batch as a nondurable commit and
                // then anchors everything (making it durable).
                store.checkpoint().unwrap();
                for (id, op) in model.staged.drain() {
                    match op {
                        Some(data) => {
                            model.committed.insert(id, data);
                        }
                        None => {
                            model.committed.remove(&id);
                        }
                    }
                }
                model.durable = model.committed.clone();
            }
            Op::Reopen => {
                // Make the state durable first so reopen is lossless.
                store.commit(Durability::Durable).unwrap();
                for (id, op) in model.staged.drain() {
                    match op {
                        Some(data) => {
                            model.committed.insert(id, data);
                        }
                        None => {
                            model.committed.remove(&id);
                        }
                    }
                }
                model.durable = model.committed.clone();
                drop(store);
                store = ChunkStore::open(
                    Arc::new(mem.clone()),
                    &secret,
                    Arc::new(counter.clone()),
                    cfg.clone(),
                )
                .unwrap();
            }
            Op::CrashReopen => {
                // No graceful shutdown: staged batch and all commits since
                // the last durable one must vanish.
                drop(store);
                store = ChunkStore::open(
                    Arc::new(mem.clone()),
                    &secret,
                    Arc::new(counter.clone()),
                    cfg.clone(),
                )
                .unwrap();
                model.staged.clear();
                model.committed = model.durable.clone();
            }
        }
        check_agreement(&store, &model, &ctx);
    }

    // Final durable shutdown must round-trip everything.
    store.commit(Durability::Durable).unwrap();
    for (id, op) in model.staged.drain() {
        match op {
            Some(data) => {
                model.committed.insert(id, data);
            }
            None => {
                model.committed.remove(&id);
            }
        }
    }
    drop(store);
    let store = ChunkStore::open(Arc::new(mem), &secret, Arc::new(counter), cfg).unwrap();
    check_agreement(&store, &model, "final reopen");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_ops_match_model_full_security(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_scenario(ops, SecurityMode::Full);
    }

    #[test]
    fn random_ops_match_model_no_security(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        run_scenario(ops, SecurityMode::Off);
    }
}
