//! Proof-carrying reads at the chunk-store level: every committed read can
//! produce an inclusion proof, every miss a non-membership proof, and a
//! standalone [`tdb_proof::Verifier`] holding only the trust anchor accepts
//! exactly the honest ones — even when the cleaner has relocated the
//! records since the snapshot was pinned.

use chunk_store::{
    ChunkId, ChunkStore, ChunkStoreConfig, ChunkStoreError, Durability, SecurityMode,
    ShardedChunkStore,
};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};
use tdb_proof::{ProofError, Verifier};

fn cfg() -> ChunkStoreConfig {
    ChunkStoreConfig::small_for_tests()
}

fn create(mem: &MemStore, counter: &VolatileCounter) -> ChunkStore {
    ChunkStore::create(
        Arc::new(mem.clone()),
        &MemSecretStore::from_label("proof-tests"),
        Arc::new(counter.clone()),
        cfg(),
    )
    .unwrap()
}

#[test]
fn proven_reads_verify_inclusion_and_absence() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create(&mem, &counter);
    let verifier = Verifier::new(store.trust_anchor().unwrap());

    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"license: 3 plays left").unwrap();
    store.commit(Durability::Durable).unwrap();

    // Inclusion: value comes back with a proof the verifier accepts.
    let proven = store.read_proven(id).unwrap();
    assert_eq!(
        proven.value.as_deref(),
        Some(b"license: 3 plays left".as_slice())
    );
    let proof = proven.prove().unwrap();
    verifier
        .verify_chunk(&proof, proven.value.as_deref())
        .unwrap();

    // The wire form round-trips and still verifies.
    let wire = tdb_proof::wire::encode_chunk_proof(&proof);
    let decoded = tdb_proof::wire::decode_chunk_proof(&wire).unwrap();
    verifier
        .verify_chunk(&decoded, proven.value.as_deref())
        .unwrap();

    // Non-membership: an unallocated id in range, and one beyond any
    // plausible capacity, both prove absence.
    for miss in [ChunkId(57), ChunkId(u64::MAX / 2)] {
        let proven = store.read_proven(miss).unwrap();
        assert!(proven.value.is_none());
        let proof = proven.prove().unwrap();
        verifier.verify_chunk(&proof, None).unwrap();
    }

    // Counters moved.
    let obs = store.obs().snapshot();
    assert!(obs.counters["proof.proven_reads"] >= 3);
    assert!(obs.counters["proof.minted"] >= 3);
}

#[test]
fn proofs_stay_valid_under_overwrites_and_cleaning() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create(&mem, &counter);
    let verifier = Verifier::new(store.trust_anchor().unwrap());

    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"pinned value").unwrap();
    store.commit(Durability::Durable).unwrap();

    // Pin the read, then churn the store hard enough to force cleaning
    // passes that relocate live records (and the map pages above them).
    let proven = store.read_proven(id).unwrap();
    let churn = store.allocate_chunk_id().unwrap();
    for round in 0..40 {
        store.write(churn, &vec![round as u8; 900]).unwrap();
        store.commit(Durability::Lazy).unwrap();
    }
    store.checkpoint().unwrap();
    store.clean().unwrap();
    store.write(id, b"a newer value").unwrap();
    store.commit(Durability::Durable).unwrap();

    // The deferred proof still speaks about the pinned snapshot.
    let proof = proven.prove().unwrap();
    assert_eq!(proven.value.as_deref(), Some(b"pinned value".as_slice()));
    verifier
        .verify_chunk(&proof, proven.value.as_deref())
        .unwrap();

    // A fresh proven read sees (and proves) the new value.
    let now = store.read_proven(id).unwrap();
    assert_eq!(now.value.as_deref(), Some(b"a newer value".as_slice()));
    verifier
        .verify_chunk(&now.prove().unwrap(), now.value.as_deref())
        .unwrap();
    assert!(now.commit_seq() > proven.commit_seq());
}

#[test]
fn tampered_and_replayed_proofs_are_rejected() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create(&mem, &counter);
    let anchor = store.trust_anchor().unwrap();

    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"tamper target").unwrap();
    store.commit(Durability::Durable).unwrap();

    let proven = store.read_proven(id).unwrap();
    let proof = proven.prove().unwrap();
    let value = proven.value.as_deref();
    let verifier = Verifier::new(anchor.clone());
    verifier.verify_chunk(&proof, value).unwrap();

    // A forged value is rejected.
    assert!(matches!(
        verifier.verify_chunk(&proof, Some(b"forged")),
        Err(ProofError::Tamper(_))
    ));

    // Any flipped bit anywhere in the encoded proof is rejected.
    let wire = tdb_proof::wire::encode_chunk_proof(&proof);
    let mut accepted = 0;
    for i in 0..wire.len() {
        let mut bad = wire.clone();
        bad[i] ^= 0x01;
        if let Ok(p) = tdb_proof::wire::decode_chunk_proof(&bad) {
            if verifier.verify_chunk(&p, value).is_ok() {
                accepted += 1;
            }
        }
    }
    assert_eq!(accepted, 0, "a mutated proof byte was accepted");

    // A client that has already seen a fresher counter value treats this
    // proof as a replay.
    let mut future = anchor;
    future.counter_value = proof.attestation.counter_value + 1;
    assert!(matches!(
        Verifier::new(future).verify_chunk(&proof, value),
        Err(ProofError::Replay { .. })
    ));
}

#[test]
fn security_off_refuses_proofs_with_a_usage_error() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let mut c = cfg();
    c.security = SecurityMode::Off;
    let store = ChunkStore::create(
        Arc::new(mem.clone()),
        &MemSecretStore::from_label("proof-tests"),
        Arc::new(counter.clone()),
        c,
    )
    .unwrap();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"plain").unwrap();
    store.commit(Durability::Durable).unwrap();

    assert!(matches!(
        store.read_proven(id),
        Err(ChunkStoreError::ConfigMismatch(_))
    ));
    assert!(matches!(
        store.trust_anchor(),
        Err(ChunkStoreError::ConfigMismatch(_))
    ));
}

fn create_sharded(mem: &MemStore, counter: &VolatileCounter, shards: usize) -> ShardedChunkStore {
    let mut c = cfg();
    c.shards = shards;
    ShardedChunkStore::create(
        Arc::new(mem.clone()),
        &MemSecretStore::from_label("proof-tests"),
        Arc::new(counter.clone()),
        c,
    )
    .unwrap()
}

#[test]
fn sharded_proofs_splice_into_the_epoch_record() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create_sharded(&mem, &counter, 3);
    let verifier = Verifier::new(store.trust_anchor().unwrap());

    // Write chunks landing on all three shards.
    let mut b = store.begin_batch();
    let mut ids = Vec::new();
    for i in 0..6u8 {
        let id = b.allocate_chunk_id().unwrap();
        b.write(id, &[b'v', i]).unwrap();
        ids.push(id);
    }
    store.commit_batch(b, Durability::Durable).unwrap();

    // Every chunk proves inclusion through its shard's root and the
    // root-of-roots epoch record; a miss proves absence the same way.
    for (i, id) in ids.iter().enumerate() {
        let proven = store.read_proven(*id).unwrap();
        assert_eq!(proven.value.as_deref(), Some([b'v', i as u8].as_slice()));
        let proof = proven.prove().unwrap();
        assert!(proof.shard.is_some(), "sharded proof must carry a binding");
        verifier
            .verify_chunk(&proof, proven.value.as_deref())
            .unwrap();
    }
    let miss = store.read_proven(ChunkId(500)).unwrap();
    assert!(miss.value.is_none());
    verifier.verify_chunk(&miss.prove().unwrap(), None).unwrap();

    // A proof pinned before churn still verifies after later commits
    // advanced the shard's virtual counter (deferred prove, fresh epoch).
    let pinned = store.read_proven(ids[0]).unwrap();
    let mut b = store.begin_batch();
    b.write(ids[0], b"newer").unwrap();
    store.commit_batch(b, Durability::Durable).unwrap();
    verifier
        .verify_chunk(&pinned.prove().unwrap(), pinned.value.as_deref())
        .unwrap();
}

#[test]
fn sharded_tamper_variants_are_rejected() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create_sharded(&mem, &counter, 2);
    let anchor = store.trust_anchor().unwrap();
    let verifier = Verifier::new(anchor);

    let mut b = store.begin_batch();
    let a = b.allocate_chunk_id().unwrap(); // shard 0
    let c = b.allocate_chunk_id().unwrap(); // shard 1
    b.write(a, b"alpha").unwrap();
    b.write(c, b"charlie").unwrap();
    store.commit_batch(b, Durability::Durable).unwrap();

    let pa = store.read_proven(a).unwrap();
    let pc = store.read_proven(c).unwrap();
    let proof_a = pa.prove().unwrap();
    let proof_c = pc.prove().unwrap();
    verifier
        .verify_chunk(&proof_a, pa.value.as_deref())
        .unwrap();
    verifier
        .verify_chunk(&proof_c, pc.value.as_deref())
        .unwrap();

    // Swapped shard root: splice shard 1's path (and root) under shard
    // 0's chunk id. The attestation key and root no longer match.
    let mut swapped = proof_a.clone();
    swapped.path = proof_c.path.clone();
    assert!(matches!(
        verifier.verify_chunk(&swapped, pa.value.as_deref()),
        Err(ProofError::Tamper(_))
    ));

    // A binding claiming the wrong shard contradicts the routing function.
    let mut misrouted = proof_a.clone();
    misrouted.shard.as_mut().unwrap().shard = 1;
    assert!(matches!(
        verifier.verify_chunk(&misrouted, pa.value.as_deref()),
        Err(ProofError::Tamper(_))
    ));

    // A forged epoch counter vector fails the root-of-roots MAC.
    let mut inflated = proof_a.clone();
    inflated.shard.as_mut().unwrap().epoch.counters[0] += 1;
    assert!(matches!(
        verifier.verify_chunk(&inflated, pa.value.as_deref()),
        Err(ProofError::Tamper(_))
    ));

    // Stale epoch: after more durable commits advance the hardware
    // counter, a *fresh* trust anchor rejects the old epoch record.
    for _ in 0..3 {
        let mut b = store.begin_batch();
        b.write(a, b"bump").unwrap();
        store.commit_batch(b, Durability::Durable).unwrap();
    }
    let fresh = Verifier::new(store.trust_anchor().unwrap());
    assert!(matches!(
        fresh.verify_chunk(&proof_a, pa.value.as_deref()),
        Err(ProofError::Replay { .. })
    ));
    // Re-proving from the same pinned read mints a fresh epoch record,
    // which the fresh anchor accepts.
    fresh
        .verify_chunk(&pa.prove().unwrap(), pa.value.as_deref())
        .unwrap();
}

#[test]
fn unsharded_gate_errors_name_operation_shards_and_docs() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create_sharded(&mem, &counter, 2);

    let msg = match store.unsharded("backup_full") {
        Err(e) => e.to_string(),
        Ok(_) => panic!("unsharded() must fail at 2 shards"),
    };
    assert!(msg.contains("backup_full"), "names the operation: {msg}");
    assert!(msg.contains("2 shards"), "names the shard count: {msg}");
    assert!(msg.contains("DESIGN.md"), "points at the docs: {msg}");

    let msg = store.restore_image(Vec::new()).unwrap_err().to_string();
    assert!(msg.contains("restore_image") && msg.contains("2") && msg.contains("DESIGN.md"));
    let msg = store
        .apply_restore_delta(Vec::new(), Vec::new())
        .unwrap_err()
        .to_string();
    assert!(msg.contains("apply_restore_delta") && msg.contains("DESIGN.md"));
}

#[test]
fn keyed_attestations_bind_snapshot_counter_and_scope() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let store = create(&mem, &counter);
    let verifier = Verifier::new(store.trust_anchor().unwrap());

    let tree = tdb_proof::KeyedTree::build(
        ["alpha", "beta", "gamma"]
            .iter()
            .enumerate()
            .map(|(i, k)| tdb_proof::KeyedEntry {
                key: k.as_bytes().to_vec(),
                id: i as u64,
            })
            .collect(),
    );
    let snap = store.snapshot();
    let mut proof = tree.prove_range("col/ix", b"beta", Some(&tdb_proof::key_successor(b"beta")));
    proof.attestation = store
        .keyed_attest_at(&snap, &proof.scope, proof.total, &proof.root)
        .unwrap();
    assert_eq!(verifier.verify_keyed(&proof).unwrap(), vec![1]);

    // An attestation for one scope cannot be replayed onto another.
    let mut other = tree.prove_range(
        "col/other",
        b"beta",
        Some(&tdb_proof::key_successor(b"beta")),
    );
    other.attestation = proof.attestation.clone();
    assert!(matches!(
        verifier.verify_keyed(&other),
        Err(ProofError::Tamper(_))
    ));
}
