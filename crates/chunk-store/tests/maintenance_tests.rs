//! Background maintenance and incremental-cleaner tests: watermark-driven
//! checkpointing off the commit path, mid-pass snapshot pinning (TOCTOU),
//! error-path accounting of a failed closing checkpoint, and the
//! commit-latency bugfixes (phase-lap pollution, anchor/counter rollback,
//! gave-up-vs-clean maintenance outcomes).

use chunk_store::Durability;
use chunk_store::{ChunkId, ChunkStore, ChunkStoreConfig, SecurityMode};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdb_platform::{
    CrashSchedule, FaultPlan, FaultStore, MemSecretStore, MemStore, UntrustedStore, VolatileCounter,
};

fn secret() -> MemSecretStore {
    MemSecretStore::from_label("maintenance")
}

fn create_on(
    untrusted: Arc<dyn UntrustedStore>,
    c: &VolatileCounter,
    cfg: &ChunkStoreConfig,
) -> ChunkStore {
    ChunkStore::create(untrusted, &secret(), Arc::new(c.clone()), cfg.clone()).unwrap()
}

fn open_on(
    untrusted: Arc<dyn UntrustedStore>,
    c: &VolatileCounter,
    cfg: &ChunkStoreConfig,
) -> ChunkStore {
    ChunkStore::open(untrusted, &secret(), Arc::new(c.clone()), cfg.clone()).unwrap()
}

fn hist_count(snap: &tdb_obs::RegistrySnapshot, name: &str) -> u64 {
    snap.histograms.get(name).map(|h| h.count()).unwrap_or(0)
}

/// In `Off` security the anchor round never touches the one-way counter,
/// so the counter histograms must record nothing — a lap of ~0ns per
/// anchor would drag the percentiles toward zero and misattribute anchor
/// time. In `Full` mode every successful round records exactly one
/// counter lap alongside its anchor lap. A checkpoint's round lands in
/// the `maint.*` lanes and must leave the `commit.*` rows untouched.
#[test]
fn counter_laps_follow_real_counter_work_only() {
    tdb_obs::set_enabled(true);

    for (security, expect_counter) in [(SecurityMode::Off, false), (SecurityMode::Full, true)] {
        let cfg = ChunkStoreConfig {
            security,
            ..ChunkStoreConfig::small_for_tests()
        };
        let counter = VolatileCounter::new();
        let store = create_on(Arc::new(MemStore::new()), &counter, &cfg);
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, b"anchor fodder").unwrap();
        store.commit(Durability::Durable).unwrap();

        let base = store.obs().snapshot();
        store.checkpoint().unwrap();
        let delta = store.obs().snapshot().since(&base);

        let anchors = hist_count(&delta, "maint.anchor");
        let counters = hist_count(&delta, "maint.counter");
        assert!(anchors >= 1, "checkpoint must record a maint anchor lap");
        assert_eq!(
            hist_count(&delta, "commit.anchor"),
            0,
            "checkpoint rounds must not leak into commit.anchor"
        );
        assert_eq!(hist_count(&delta, "commit.sync"), 0);
        if expect_counter {
            assert_eq!(
                counters, anchors,
                "Full mode: one counter lap per successful anchor round"
            );
        } else {
            assert_eq!(
                counters, 0,
                "Off mode: no counter work, so no counter laps (got {counters})"
            );
        }
    }
}

/// An anchor round that dies before its I/O completes must record neither
/// an anchor nor a counter lap — error samples would pollute the phase
/// histograms with near-zero laps for work that never happened.
#[test]
fn failed_anchor_rounds_record_no_phase_laps() {
    tdb_obs::set_enabled(true);
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Full,
        ..ChunkStoreConfig::small_for_tests()
    };
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let plan = FaultPlan::unlimited();
    let store = create_on(
        Arc::new(FaultStore::new(mem.clone(), plan.clone())),
        &counter,
        &cfg,
    );
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"soon to fail").unwrap();
    store.commit(Durability::Durable).unwrap();

    // Kill the next sync: the round dies in `sync_touched`, before the
    // anchor write or counter increment.
    store.write(id, b"fresh garbage to flush").unwrap();
    store.commit(Durability::Lazy).unwrap();
    let base = store.obs().snapshot();
    plan.rearm_with(CrashSchedule::OnSync { index: 0 });
    store.checkpoint().unwrap_err();
    let delta = store.obs().snapshot().since(&base);
    assert_eq!(hist_count(&delta, "commit.anchor"), 0);
    assert_eq!(hist_count(&delta, "commit.counter"), 0);

    // The store stays usable once the device recovers.
    plan.rearm_with(CrashSchedule::Never);
    store.checkpoint().unwrap();
    assert_eq!(store.read(id).unwrap(), b"fresh garbage to flush");
}

/// Repeated anchor-round failures must not let the in-memory counter
/// expectation drift past the hardware counter. Recovery only repairs a
/// `+1` gap (the benign crash window); without rollback, three failed
/// rounds would open a `+3` gap and the reopen would report a replay
/// attack against our own database.
#[test]
fn failed_anchor_rounds_do_not_drift_replay_detection() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Full,
        ..ChunkStoreConfig::small_for_tests()
    };
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let plan = FaultPlan::unlimited();
    let store = create_on(
        Arc::new(FaultStore::new(mem.clone(), plan.clone())),
        &counter,
        &cfg,
    );
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"v0").unwrap();
    store.commit(Durability::Durable).unwrap();

    for round in 0..3u32 {
        store
            .write(id, format!("doomed {round}").as_bytes())
            .unwrap();
        plan.rearm_with(CrashSchedule::OnSync { index: 0 });
        store.commit(Durability::Durable).unwrap_err();
        plan.rearm_with(CrashSchedule::Never);
        // The device is healthy again; the retried round must succeed and
        // land exactly one counter increment.
        store
            .write(id, format!("landed {round}").as_bytes())
            .unwrap();
        store.commit(Durability::Durable).unwrap();
    }

    drop(store);
    // A drifted counter surfaces here as ReplayDetected.
    let store = open_on(Arc::new(mem), &counter, &cfg);
    assert_eq!(store.read(id).unwrap(), b"landed 2");
}

/// Fill the store, free almost everything, then hammer overwrites with
/// growth disabled: every commit must succeed because maintenance can
/// always reclaim the freed space. The old `maintain()` could report
/// success with zero free segments (its own checkpoint traffic consumed
/// what a pass freed), surfacing later as a spurious out-of-space error.
#[test]
fn mass_free_then_overwrites_never_spuriously_out_of_space() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Off,
        allow_growth: false,
        initial_segments: 6,
        ..ChunkStoreConfig::small_for_tests()
    };
    let counter = VolatileCounter::new();
    let store = create_on(Arc::new(MemStore::new()), &counter, &cfg);

    // Map-heavy fill: many small chunks spread across leaf pages.
    let mut ids = Vec::new();
    for i in 0..30u32 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &i.to_le_bytes().repeat(64)).unwrap();
        ids.push(id);
        if i % 5 == 4 {
            store.commit(Durability::Durable).unwrap();
        }
    }
    store.commit(Durability::Durable).unwrap();

    // Free all but two chunks.
    let survivors = [ids[0], ids[1]];
    for id in &ids[2..] {
        store.deallocate(*id).unwrap();
    }
    store.commit(Durability::Durable).unwrap();

    // Overwrite the survivors repeatedly: continuous garbage generation
    // that is only sustainable if reclamation actually frees segments.
    for round in 0..200u32 {
        for (k, id) in survivors.iter().enumerate() {
            let payload = (round * 2 + k as u32).to_le_bytes().repeat(64);
            store.write(*id, &payload).unwrap();
        }
        store
            .commit(Durability::from(round % 4 == 0))
            .unwrap_or_else(|e| panic!("commit {round} failed: {e}"));
    }
    assert!(store.stats().cleaner_passes > 0, "cleaning must have run");
    assert_eq!(
        store.read(survivors[0]).unwrap(),
        398u32.to_le_bytes().repeat(64)
    );
    assert_eq!(
        store.read(survivors[1]).unwrap(),
        399u32.to_le_bytes().repeat(64)
    );
}

/// Sweep a torn write across an entire cleaning pass — victim selection's
/// settling anchor, every relocation slice, the closing checkpoint, and
/// the frees. After each failure the *same* store handle must recover by
/// an ordinary checkpoint + clean (accounting settles exactly), and a
/// crash-style reopen from the underlying bytes must also see every chunk.
#[test]
fn failed_cleaning_pass_is_retryable_at_every_write() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Off,
        maintenance_slice_chunks: 2,
        ..ChunkStoreConfig::small_for_tests()
    };

    let mut k = 0u64;
    loop {
        assert!(k < 300, "sweep never reached the end of the pass");
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let plan = FaultPlan::unlimited();
        let store = create_on(
            Arc::new(FaultStore::new(mem.clone(), plan.clone())),
            &counter,
            &cfg,
        );

        // Deterministic garbage-heavy workload: two segments' worth of
        // chunks, half overwritten, a few deallocated.
        let mut expected: BTreeMap<ChunkId, Vec<u8>> = BTreeMap::new();
        let mut ids = Vec::new();
        for i in 0..24u32 {
            let id = store.allocate_chunk_id().unwrap();
            let v = i.to_le_bytes().repeat(75);
            store.write(id, &v).unwrap();
            expected.insert(id, v);
            ids.push(id);
        }
        store.commit(Durability::Durable).unwrap();
        store.checkpoint().unwrap();
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                let v = (i as u32 + 1000).to_le_bytes().repeat(60);
                store.write(*id, &v).unwrap();
                expected.insert(*id, v);
            }
        }
        for id in &ids[20..] {
            store.deallocate(*id).unwrap();
            expected.remove(id);
        }
        store.commit(Durability::Durable).unwrap();

        plan.rearm_with(CrashSchedule::OnWrite {
            index: k,
            cut_num: 1,
            cut_den: 2,
        });
        let res = store.clean();
        if !plan.has_crashed() {
            // The pass finished before write k: the whole pass has been
            // swept. Sanity-check the clean result and stop.
            res.unwrap();
            break;
        }
        assert!(
            res.is_err(),
            "a torn write mid-pass must surface as an error"
        );

        // In-process retry on the same handle: checkpoint settles the
        // accounting the failed pass left behind, then a clean completes.
        plan.rearm_with(CrashSchedule::Never);
        store.checkpoint().unwrap();
        store.clean().unwrap();
        for (id, v) in &expected {
            assert_eq!(&store.read(*id).unwrap(), v, "write-crash at {k}");
        }
        let (accounted, walked, _, _, pending) = store.debug_accounting();
        assert_eq!(accounted, walked, "live accounting drifted (crash at {k})");
        assert_eq!(pending, 0, "pending decrements not settled (crash at {k})");

        // Crash-style reopen from the raw bytes must agree.
        drop(store);
        let store = open_on(Arc::new(mem), &counter, &cfg);
        for (id, v) in &expected {
            assert_eq!(&store.read(*id).unwrap(), v, "reopen after crash at {k}");
        }
        k += 1;
    }
}

/// TOCTOU: a snapshot opened *between* relocation slices pins the
/// remaining victims. Every chunk the snapshot covers must stay readable
/// after the pass — a freed victim segment would surface as a read error
/// or tamper report.
#[test]
fn snapshot_between_slices_pins_remaining_victims() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Off,
        maintenance_slice_chunks: 1,
        ..ChunkStoreConfig::small_for_tests()
    };
    let counter = VolatileCounter::new();
    let store = create_on(Arc::new(MemStore::new()), &counter, &cfg);

    let mut ids = Vec::new();
    for i in 0..30u32 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &i.to_le_bytes().repeat(75)).unwrap();
        ids.push(id);
    }
    store.commit(Durability::Durable).unwrap();
    store.checkpoint().unwrap();
    // Overwrite half: the old versions become garbage spread across the
    // early segments, leaving live chunks in partial victims to relocate.
    for (i, id) in ids.iter().enumerate() {
        if i % 2 == 0 {
            store
                .write(*id, &(i as u32 + 500).to_le_bytes().repeat(60))
                .unwrap();
        }
    }
    store.commit(Durability::Durable).unwrap();

    let mut snap = None;
    let store_ref = &store;
    store_ref
        .clean_incremental_with(&mut |_slice| {
            if snap.is_none() {
                snap = Some(store_ref.snapshot());
            }
        })
        .unwrap();
    let snap = snap.expect("pass must take more than one slice");

    for (i, id) in ids.iter().enumerate() {
        let want = if i % 2 == 0 {
            (i as u32 + 500).to_le_bytes().repeat(60)
        } else {
            (i as u32).to_le_bytes().repeat(75)
        };
        assert_eq!(
            store.read_at_snapshot(&snap, *id).unwrap(),
            want,
            "snapshot read of chunk {i} after mid-pass cleaning"
        );
        assert_eq!(store.read(*id).unwrap(), want);
    }

    // With the snapshot dropped the pinned garbage becomes reclaimable.
    drop(snap);
    store.clean().unwrap();
    for (i, id) in ids.iter().enumerate() {
        let want = if i % 2 == 0 {
            (i as u32 + 500).to_le_bytes().repeat(60)
        } else {
            (i as u32).to_le_bytes().repeat(75)
        };
        assert_eq!(store.read(*id).unwrap(), want);
    }
}

/// Commits landing between relocation slices must never be clobbered by
/// the pass: each slice re-fetches chunk locations, so a chunk rewritten
/// mid-pass keeps its new version.
#[test]
fn commits_between_slices_survive_the_pass() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Off,
        maintenance_slice_chunks: 1,
        ..ChunkStoreConfig::small_for_tests()
    };
    let counter = VolatileCounter::new();
    let mem = MemStore::new();
    let store = create_on(Arc::new(mem.clone()), &counter, &cfg);

    let mut ids = Vec::new();
    for i in 0..24u32 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &i.to_le_bytes().repeat(75)).unwrap();
        ids.push(id);
    }
    store.commit(Durability::Durable).unwrap();
    store.checkpoint().unwrap();
    for (i, id) in ids.iter().enumerate() {
        if i % 2 == 0 {
            store
                .write(*id, &(i as u32).to_le_bytes().repeat(50))
                .unwrap();
        }
    }
    store.commit(Durability::Durable).unwrap();

    // Every slice boundary overwrites one chunk the pass may be about to
    // relocate.
    let store_ref = &store;
    let ids_ref = &ids;
    let mut turn = 0usize;
    store_ref
        .clean_incremental_with(&mut |_slice| {
            let id = ids_ref[turn % ids_ref.len()];
            store_ref
                .write(id, format!("mid-pass {turn}").as_bytes())
                .unwrap();
            store_ref.commit(Durability::Lazy).unwrap();
            turn += 1;
        })
        .unwrap();
    assert!(turn > 0, "pass must have had slice boundaries");
    store.commit(Durability::Durable).unwrap();

    let mut expected: BTreeMap<ChunkId, Vec<u8>> = BTreeMap::new();
    for (i, id) in ids.iter().enumerate() {
        expected.insert(
            *id,
            if i % 2 == 0 {
                (i as u32).to_le_bytes().repeat(50)
            } else {
                (i as u32).to_le_bytes().repeat(75)
            },
        );
    }
    for t in 0..turn {
        expected.insert(ids[t % ids.len()], format!("mid-pass {t}").into_bytes());
    }
    for (id, v) in &expected {
        assert_eq!(&store.read(*id).unwrap(), v);
    }
    drop(store);
    let store = open_on(Arc::new(mem), &counter, &cfg);
    for (id, v) in &expected {
        assert_eq!(&store.read(*id).unwrap(), v);
    }
}

/// With `background_maintenance` on, the commit path only kicks the
/// thread; the thread takes the watermark checkpoint. `close()` quiesces
/// it, after which the store still works (maintenance falls back inline)
/// and closing again is a no-op.
#[test]
fn background_thread_checkpoints_by_watermark_and_close_quiesces() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Off,
        background_maintenance: true,
        checkpoint_threshold: 8 * 1024,
        ..ChunkStoreConfig::small_for_tests()
    };
    let counter = VolatileCounter::new();
    let store = create_on(Arc::new(MemStore::new()), &counter, &cfg);
    let base = store.stats();

    let id = store.allocate_chunk_id().unwrap();
    for i in 0..60u32 {
        store.write(id, &i.to_le_bytes().repeat(100)).unwrap();
        store.commit(Durability::Durable).unwrap();
    }

    // The checkpoint happens asynchronously; wait for it.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let now = store.stats().since(&base);
        if now.checkpoints > 0 {
            assert!(
                now.maintenance_wakeups > 0,
                "commit path must kick the thread"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "background thread never checkpointed: {now:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    store.close();
    // Still fully usable; maintenance is inline now.
    store.write(id, b"after close").unwrap();
    store.commit(Durability::Durable).unwrap();
    assert_eq!(store.read(id).unwrap(), b"after close");
    store.close();
}

/// Space pressure with the thread on: growth disabled, two hot chunks
/// overwritten far past the log's capacity. Committers stall on the
/// backpressure path instead of failing; everything lands, and a reopen
/// (after drop joins the thread) recovers the final state.
#[test]
fn backpressure_under_background_cleaning() {
    let cfg = ChunkStoreConfig {
        security: SecurityMode::Off,
        background_maintenance: true,
        allow_growth: false,
        initial_segments: 6,
        ..ChunkStoreConfig::small_for_tests()
    };
    let counter = VolatileCounter::new();
    let mem = MemStore::new();
    let store = create_on(Arc::new(mem.clone()), &counter, &cfg);

    let a = store.allocate_chunk_id().unwrap();
    let b = store.allocate_chunk_id().unwrap();
    for round in 0..300u32 {
        store
            .write(a, &(round * 2).to_le_bytes().repeat(64))
            .unwrap();
        store
            .write(b, &(round * 2 + 1).to_le_bytes().repeat(64))
            .unwrap();
        store
            .commit(Durability::from(round % 8 == 0))
            .unwrap_or_else(|e| panic!("commit {round} failed under backpressure: {e}"));
    }
    store.commit(Durability::Durable).unwrap();
    assert!(store.stats().cleaner_passes > 0, "cleaning must have run");
    assert_eq!(store.read(a).unwrap(), 598u32.to_le_bytes().repeat(64));
    assert_eq!(store.read(b).unwrap(), 599u32.to_le_bytes().repeat(64));

    drop(store); // joins the maintenance thread
    let store = open_on(Arc::new(mem), &counter, &cfg);
    assert_eq!(store.read(a).unwrap(), 598u32.to_le_bytes().repeat(64));
    assert_eq!(store.read(b).unwrap(), 599u32.to_le_bytes().repeat(64));
}
