//! Property tests for the sharded chunk store's router: stable routing
//! across reopen, observable equivalence of `shards = 1` with the plain
//! store, and rejection of shard-count changes on an existing database.

use chunk_store::{
    ChunkId, ChunkStore, ChunkStoreConfig, ChunkStoreError, Durability, ShardedChunkStore,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use tdb_core::ErrorKind;
use tdb_platform::{MemSecretStore, MemStore, UntrustedStore, VolatileCounter};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate a chunk and commit `len` bytes of deterministic content.
    Insert { len: usize },
    /// Overwrite the i-th live chunk (mod live count).
    Update { pick: usize, len: usize },
    /// Deallocate the i-th live chunk.
    Remove { pick: usize },
    /// Close and reopen (recovery; durable state must round-trip).
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1usize..200).prop_map(|len| Op::Insert { len }),
        4 => (any::<usize>(), 1usize..200).prop_map(|(pick, len)| Op::Update { pick, len }),
        2 => any::<usize>().prop_map(|pick| Op::Remove { pick }),
        1 => Just(Op::Reopen),
    ]
}

fn content(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed as u8).wrapping_mul(31).wrapping_add(i as u8))
        .collect()
}

fn cfg(shards: usize) -> ChunkStoreConfig {
    let mut cfg = ChunkStoreConfig::small_for_tests();
    cfg.shards = shards;
    cfg
}

fn pick_id(model: &HashMap<u64, Vec<u8>>, pick: usize) -> Option<ChunkId> {
    if model.is_empty() {
        return None;
    }
    let mut ids: Vec<u64> = model.keys().copied().collect();
    ids.sort_unstable();
    Some(ChunkId(ids[pick % ids.len()]))
}

/// Apply one op as its own durable batch commit. Returns the commit
/// sequence, or `None` for ops that committed nothing.
fn apply(
    store: &ShardedChunkStore,
    model: &mut HashMap<u64, Vec<u8>>,
    op: &Op,
    seed: u64,
) -> Option<u64> {
    let mut batch = store.begin_batch();
    match op {
        Op::Insert { len } => {
            let id = batch.allocate_chunk_id().unwrap();
            let data = content(seed, *len);
            batch.write(id, &data).unwrap();
            model.insert(id.0, data);
        }
        Op::Update { pick, len } => {
            let Some(id) = pick_id(model, *pick) else {
                batch.discard();
                return None;
            };
            let data = content(seed ^ 0xA5, *len);
            batch.write(id, &data).unwrap();
            model.insert(id.0, data);
        }
        Op::Remove { pick } => {
            let Some(id) = pick_id(model, *pick) else {
                batch.discard();
                return None;
            };
            batch.deallocate(id).unwrap();
            model.remove(&id.0);
        }
        Op::Reopen => unreachable!("handled by the caller"),
    }
    let ticket = store.append_batch(batch, Durability::Durable).unwrap();
    let seq = ticket.seq();
    store.wait_durable(ticket).unwrap();
    Some(seq)
}

fn check(store: &ShardedChunkStore, model: &HashMap<u64, Vec<u8>>, reserved: u64, ctx: &str) {
    for (id, data) in model {
        let got = store
            .read(ChunkId(*id))
            .unwrap_or_else(|e| panic!("{ctx}: chunk {id} unreadable: {e}"));
        assert_eq!(&got, data, "{ctx}: chunk {id} content mismatch");
    }
    assert_eq!(
        store.live_chunks(),
        model.len() as u64 + reserved,
        "{ctx}: live chunk count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random ops against a 3-shard store: every committed chunk must read
    /// back across arbitrarily many reopens, i.e. the global-id routing
    /// must be a pure function of id and shard count, never of history.
    #[test]
    fn routing_is_stable_under_reopen(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mem = MemStore::new();
        let counter = VolatileCounter::new();
        let secret = MemSecretStore::from_label("router-reopen");
        let mut store = ShardedChunkStore::create(
            Arc::new(mem.clone()),
            &secret,
            Arc::new(counter.clone()),
            cfg(3),
        )
        .unwrap();
        // 3 shards reserve one local chunk each (coordination directory +
        // witness rings).
        let reserved = 3;
        let mut model = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            let ctx = format!("step {step} ({op:?})");
            if matches!(op, Op::Reopen) {
                store.close();
                drop(store);
                store = ShardedChunkStore::open(
                    Arc::new(mem.clone()),
                    &secret,
                    Arc::new(counter.clone()),
                    cfg(3),
                )
                .unwrap();
            } else {
                apply(&store, &mut model, op, step as u64);
            }
            check(&store, &model, reserved, &ctx);
        }
        store.close();
        drop(store);
        let store = ShardedChunkStore::open(Arc::new(mem), &secret, Arc::new(counter), cfg(3))
            .unwrap();
        check(&store, &model, reserved, "final reopen");
    }

    /// A 1-shard `ShardedChunkStore` must be observably identical to the
    /// plain `ChunkStore` under the same op sequence: same contents, same
    /// commit sequences, same live counts, same file name set, and the
    /// same recovery report after reopen. (Byte-level equality is not
    /// expected — IVs are salted per process clock.)
    #[test]
    fn one_shard_store_matches_the_unsharded_store(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mem_s = MemStore::new();
        let mem_p = MemStore::new();
        let counter_s = VolatileCounter::new();
        let counter_p = VolatileCounter::new();
        let secret = MemSecretStore::from_label("router-equiv");
        let mut sharded = ShardedChunkStore::create(
            Arc::new(mem_s.clone()),
            &secret,
            Arc::new(counter_s.clone()),
            cfg(1),
        )
        .unwrap();
        let mut plain = ChunkStore::create(
            Arc::new(mem_p.clone()),
            &secret,
            Arc::new(counter_p.clone()),
            cfg(1),
        )
        .unwrap();

        let mut model = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            let ctx = format!("step {step} ({op:?})");
            if matches!(op, Op::Reopen) {
                sharded.close();
                plain.close();
                drop(sharded);
                drop(plain);
                sharded = ShardedChunkStore::open(
                    Arc::new(mem_s.clone()),
                    &secret,
                    Arc::new(counter_s.clone()),
                    cfg(1),
                )
                .unwrap();
                plain = ChunkStore::open(
                    Arc::new(mem_p.clone()),
                    &secret,
                    Arc::new(counter_p.clone()),
                    cfg(1),
                )
                .unwrap();
                let rs = sharded.recovery_report().unwrap();
                let rp = plain.recovery_report().unwrap();
                assert_eq!(
                    (rs.base_seq, rs.last_seq, rs.commits_replayed, rs.nondurable_discarded),
                    (rp.base_seq, rp.last_seq, rp.commits_replayed, rp.nondurable_discarded),
                    "{ctx}: recovery reports diverge"
                );
                continue;
            }
            let mut model_plain = model.clone();
            let seq_s = apply(&sharded, &mut model, op, step as u64);
            // Mirror the op against the plain store with the same picks.
            let seq_p = {
                let mut batch = plain.begin_batch();
                let committed = match op {
                    Op::Insert { len } => {
                        let id = batch.allocate_chunk_id().unwrap();
                        let data = content(step as u64, *len);
                        batch.write(id, &data).unwrap();
                        model_plain.insert(id.0, data);
                        true
                    }
                    Op::Update { pick, len } => match pick_id(&model_plain, *pick) {
                        Some(id) => {
                            let data = content(step as u64 ^ 0xA5, *len);
                            batch.write(id, &data).unwrap();
                            model_plain.insert(id.0, data);
                            true
                        }
                        None => false,
                    },
                    Op::Remove { pick } => match pick_id(&model_plain, *pick) {
                        Some(id) => {
                            batch.deallocate(id).unwrap();
                            model_plain.remove(&id.0);
                            true
                        }
                        None => false,
                    },
                    Op::Reopen => unreachable!(),
                };
                if committed {
                    let ticket = plain.append_batch(batch, Durability::Durable).unwrap();
                    let seq = ticket.seq();
                    plain.wait_durable(ticket).unwrap();
                    Some(seq)
                } else {
                    batch.discard();
                    None
                }
            };
            assert_eq!(model, model_plain, "{ctx}: models diverge (id allocation)");
            assert_eq!(seq_s, seq_p, "{ctx}: commit sequences diverge");
            assert_eq!(sharded.live_chunks(), plain.live_chunks(), "{ctx}: live counts");
            for (id, data) in &model {
                assert_eq!(&sharded.read(ChunkId(*id)).unwrap(), data, "{ctx}: sharded read");
                assert_eq!(&plain.read(ChunkId(*id)).unwrap(), data, "{ctx}: plain read");
            }
        }
        let mut names_s = mem_s.list().unwrap();
        let mut names_p = mem_p.list().unwrap();
        names_s.sort();
        names_p.sort();
        assert_eq!(names_s, names_p, "file name sets diverge");
        assert!(
            names_s.iter().all(|n| !n.contains("--") && !n.starts_with("rr.")),
            "1-shard store must not use shard prefixes or a root-of-roots: {names_s:?}"
        );
    }
}

/// Changing the shard count of an existing database must be rejected as a
/// usage error at open, for every direction of the change.
#[test]
fn shard_count_changes_are_rejected_at_open() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let secret = MemSecretStore::from_label("router-mismatch");
    let store = ShardedChunkStore::create(
        Arc::new(mem.clone()),
        &secret,
        Arc::new(counter.clone()),
        cfg(2),
    )
    .unwrap();
    store.close();
    drop(store);
    for wrong in [1usize, 3, 4] {
        let err = match ShardedChunkStore::open(
            Arc::new(mem.clone()),
            &secret,
            Arc::new(counter.clone()),
            cfg(wrong),
        ) {
            Ok(_) => panic!("open with a different shard count must fail"),
            Err(e) => e,
        };
        assert!(
            matches!(err, ChunkStoreError::ConfigMismatch(_)),
            "open with {wrong} shards surfaced {err:?}"
        );
        assert_eq!(err.kind(), ErrorKind::Usage);
    }
    // The right count still opens.
    ShardedChunkStore::open(Arc::new(mem), &secret, Arc::new(counter), cfg(2)).unwrap();
}

/// An unsharded database reopened with `shards > 1` (and vice versa) is a
/// configuration error, not data loss or a fresh create.
#[test]
fn sharding_an_existing_unsharded_database_is_rejected() {
    let mem = MemStore::new();
    let counter = VolatileCounter::new();
    let secret = MemSecretStore::from_label("router-upgrade");
    let store = ShardedChunkStore::create(
        Arc::new(mem.clone()),
        &secret,
        Arc::new(counter.clone()),
        cfg(1),
    )
    .unwrap();
    store.close();
    drop(store);
    let err = match ShardedChunkStore::open(
        Arc::new(mem.clone()),
        &secret,
        Arc::new(counter.clone()),
        cfg(2),
    ) {
        Ok(_) => panic!("sharding an unsharded database must fail"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), ErrorKind::Usage, "surfaced {err:?}");
    // And creating over it is equally rejected.
    let err = match ShardedChunkStore::create(Arc::new(mem), &secret, Arc::new(counter), cfg(2)) {
        Ok(_) => panic!("creating over an existing database must fail"),
        Err(e) => e,
    };
    assert!(!matches!(err.kind(), ErrorKind::Tamper | ErrorKind::Replay));
}
