//! Tests for the subtler chunk-store semantics the paper calls out
//! explicitly: the §3.2.2 nondurable-commit/cleaner interaction, free-list
//! bounds, chunk size limits, and snapshot/checkpoint interplay.

use chunk_store::Durability;
use chunk_store::{ChunkId, ChunkStore, ChunkStoreConfig, ChunkStoreError};
use std::sync::Arc;
use tdb_platform::{MemSecretStore, MemStore, VolatileCounter};

fn secret() -> MemSecretStore {
    MemSecretStore::from_label("semantics")
}

struct Fx {
    mem: MemStore,
    counter: VolatileCounter,
    cfg: ChunkStoreConfig,
}

impl Fx {
    fn new(cfg: ChunkStoreConfig) -> Self {
        Fx {
            mem: MemStore::new(),
            counter: VolatileCounter::new(),
            cfg,
        }
    }

    fn create(&self) -> ChunkStore {
        ChunkStore::create(
            Arc::new(self.mem.clone()),
            &secret(),
            Arc::new(self.counter.clone()),
            self.cfg.clone(),
        )
        .unwrap()
    }

    fn open(&self) -> ChunkStore {
        ChunkStore::open(
            Arc::new(self.mem.clone()),
            &secret(),
            Arc::new(self.counter.clone()),
            self.cfg.clone(),
        )
        .unwrap()
    }
}

/// The paper's §3.2.2 scenario: "Assume an existing chunk version A was
/// modified and rewritten as A' during a nondurable commit … the cleaner
/// [must not] reclaim the space used by the now-obsolete chunk version A
/// … until a durable commit occurs." Our cleaner takes a durable
/// checkpoint before reclaiming, which *promotes* the nondurable commit;
/// either way a crash must recover a consistent version, never garbage.
#[test]
fn nondurable_versions_survive_cleaning_pressure() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    let store = fx.create();
    let a = store.allocate_chunk_id().unwrap();
    store.write(a, b"version A (durable)").unwrap();
    store.commit(Durability::Durable).unwrap();

    // Nondurable overwrite, then heavy traffic + explicit cleaning that
    // would love to reclaim A's extent.
    store.write(a, b"version A' (nondurable)").unwrap();
    store.commit(Durability::Lazy).unwrap();
    for i in 0..50u32 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &i.to_le_bytes().repeat(30)).unwrap();
        store.commit(Durability::Lazy).unwrap();
    }
    store.clean().unwrap();

    // Crash and recover: the cleaner checkpointed (a durable event), so A'
    // is the surviving version — and it must be exactly A', not torn.
    drop(store);
    let store = fx.open();
    assert_eq!(store.read(a).unwrap(), b"version A' (nondurable)");
}

/// Without any intervening durable event, a crash after a nondurable
/// overwrite recovers A — and A's bytes must still be intact even though
/// they were "obsolete" in memory.
#[test]
fn nondurable_overwrite_crash_recovers_old_version() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    let store = fx.create();
    let a = store.allocate_chunk_id().unwrap();
    store.write(a, b"version A (durable)").unwrap();
    store.commit(Durability::Durable).unwrap();
    store.write(a, b"version A' (nondurable)").unwrap();
    store.commit(Durability::Lazy).unwrap();
    drop(store);
    let store = fx.open();
    assert_eq!(store.read(a).unwrap(), b"version A (durable)");
}

#[test]
fn chunk_size_limit_enforced_and_boundary_works() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    let store = fx.create();
    let max = store.max_chunk_size();
    let id = store.allocate_chunk_id().unwrap();
    // Exactly max: fine.
    store.write(id, &vec![7u8; max]).unwrap();
    store.commit(Durability::Durable).unwrap();
    assert_eq!(store.read(id).unwrap().len(), max);
    // One over: clean error.
    assert!(matches!(
        store.write(id, &vec![7u8; max + 1]),
        Err(ChunkStoreError::ChunkTooLarge { .. })
    ));
    // Zero-length chunks are legal.
    let z = store.allocate_chunk_id().unwrap();
    store.write(z, b"").unwrap();
    store.commit(Durability::Durable).unwrap();
    assert_eq!(store.read(z).unwrap(), b"");
}

#[test]
fn free_list_cap_leaks_ids_but_stays_correct() {
    let mut cfg = ChunkStoreConfig::small_for_tests();
    cfg.free_list_cap = 4; // tiny cap: most freed ids leak across restart
    let fx = Fx::new(cfg);
    {
        let store = fx.create();
        let ids: Vec<ChunkId> = (0..20)
            .map(|_| store.allocate_chunk_id().unwrap())
            .collect();
        for id in &ids {
            store.write(*id, b"x").unwrap();
        }
        store.commit(Durability::Durable).unwrap();
        for id in &ids {
            store.deallocate(*id).unwrap();
        }
        store.commit(Durability::Durable).unwrap();
        // The cap applies to the *anchored* free list; without a
        // checkpoint the deallocations would simply be replayed from the
        // residual log and nothing would leak.
        store.checkpoint().unwrap();
    }
    let store = fx.open();
    // At most `cap` freed ids were remembered; the rest leak (documented).
    let mut reused = 0;
    for _ in 0..20 {
        let id = store.allocate_chunk_id().unwrap();
        if id.0 < 20 {
            reused += 1;
        }
        store.write(id, b"y").unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    assert!(reused <= 4, "cap violated: {reused}");
    assert!(store.live_chunks() == 20);
}

#[test]
fn empty_durable_commit_still_advances_anchor() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    let store = fx.create();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"v1").unwrap();
    store.commit(Durability::Lazy).unwrap(); // nondurable only
                                             // An empty durable commit must persist the earlier nondurable one.
    store.commit(Durability::Durable).unwrap();
    drop(store);
    let store = fx.open();
    assert_eq!(store.read(id).unwrap(), b"v1");
}

#[test]
fn snapshot_diff_across_checkpoint_and_cleaning() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    let store = fx.create();
    let ids: Vec<ChunkId> = (0..10)
        .map(|_| store.allocate_chunk_id().unwrap())
        .collect();
    for id in &ids {
        store.write(*id, b"base").unwrap();
    }
    store.commit(Durability::Durable).unwrap();
    let before = store.snapshot();

    store.write(ids[3], b"changed").unwrap();
    store.commit(Durability::Durable).unwrap();
    store.checkpoint().unwrap();
    // Churn + clean: relocations must not show up as spurious diffs.
    for round in 0..100u32 {
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, &round.to_le_bytes().repeat(20)).unwrap();
        store.commit(Durability::Durable).unwrap();
        store.deallocate(id).unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    store.clean().unwrap();
    let after = store.snapshot();

    let diff = store.diff_snapshots(&before, &after);
    let changed_ids: Vec<u64> = diff.changed.iter().map(|(id, _)| id.0).collect();
    assert!(changed_ids.contains(&ids[3].0));
    assert!(diff.removed.is_empty());
    // Relocation-only churn of the *unchanged* chunks may surface as
    // location changes, but their content must be identical.
    for (id, _) in &diff.changed {
        if *id != ids[3] {
            assert_eq!(store.read_at_snapshot(&after, *id).unwrap(), b"base");
        }
    }
}

#[test]
fn reopen_in_wrong_mode_rejected_without_damage() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    {
        let store = fx.create();
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, b"precious").unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    let mut off = ChunkStoreConfig::small_for_tests();
    off.security = chunk_store::SecurityMode::Off;
    assert!(ChunkStore::open(
        Arc::new(fx.mem.clone()),
        &secret(),
        Arc::new(fx.counter.clone()),
        off
    )
    .is_err());
    // The failed open must not have harmed anything.
    let store = fx.open();
    assert_eq!(store.read(ChunkId(0)).unwrap(), b"precious");
}

#[test]
fn reopen_with_wrong_geometry_rejected() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    {
        let _ = fx.create();
    }
    let mut other = ChunkStoreConfig::small_for_tests();
    other.segment_size *= 2;
    assert!(matches!(
        ChunkStore::open(
            Arc::new(fx.mem.clone()),
            &secret(),
            Arc::new(fx.counter.clone()),
            other
        ),
        Err(ChunkStoreError::ConfigMismatch(_))
    ));
    let mut other = ChunkStoreConfig::small_for_tests();
    other.map_fanout *= 2;
    assert!(matches!(
        ChunkStore::open(
            Arc::new(fx.mem.clone()),
            &secret(),
            Arc::new(fx.counter.clone()),
            other
        ),
        Err(ChunkStoreError::ConfigMismatch(_))
    ));
}

#[test]
fn many_reopen_cycles_accumulate_no_damage() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    {
        let store = fx.create();
        let id = store.allocate_chunk_id().unwrap();
        store.write(id, 0u64.to_le_bytes().as_slice()).unwrap();
        store.commit(Durability::Durable).unwrap();
    }
    for cycle in 1..=30u64 {
        let store = fx.open();
        let prev = u64::from_le_bytes(store.read(ChunkId(0)).unwrap().try_into().unwrap());
        assert_eq!(prev, cycle - 1, "cycle {cycle}");
        store
            .write(ChunkId(0), cycle.to_le_bytes().as_slice())
            .unwrap();
        // Alternate durability modes and maintenance across cycles.
        store.commit(Durability::from(cycle % 2 == 0)).unwrap();
        if cycle % 2 == 1 {
            // Nondurable would be lost on crash; make it durable via an
            // explicit checkpoint half the time to exercise both paths.
            store.checkpoint().unwrap();
        }
        if cycle % 5 == 0 {
            store.clean().unwrap();
        }
    }
    let store = fx.open();
    assert_eq!(
        u64::from_le_bytes(store.read(ChunkId(0)).unwrap().try_into().unwrap()),
        30
    );
}

/// The §3.2.2 durability contract, checked at the device level: a
/// *nondurable* commit must never reach for the disk's sync primitive
/// (that is the whole point of offering it), while a *durable* commit
/// must sync before acknowledging.
#[test]
fn nondurable_commit_never_syncs_durable_commit_does() {
    use tdb_platform::{FaultPlan, FaultStore};
    let plan = FaultPlan::unlimited();
    let store = ChunkStore::create(
        Arc::new(FaultStore::new(MemStore::new(), plan.clone())),
        &secret(),
        Arc::new(VolatileCounter::new()),
        ChunkStoreConfig::small_for_tests(),
    )
    .unwrap();

    let baseline = plan.sync_count();
    let id = store.allocate_chunk_id().unwrap();
    store.write(id, b"not worth a platter rotation").unwrap();
    store.commit(Durability::Lazy).unwrap();
    assert_eq!(
        plan.sync_count(),
        baseline,
        "nondurable commit must not sync"
    );

    store.write(id, b"worth acknowledging durably").unwrap();
    store.commit(Durability::Durable).unwrap();
    assert!(
        plan.sync_count() > baseline,
        "durable commit must sync before acking"
    );
}

/// Recovery reports what it found: how many durable commits it replayed
/// and how many chain-valid nondurable leftovers it discarded.
#[test]
fn recovery_report_counts_replayed_and_discarded_commits() {
    let fx = Fx::new(ChunkStoreConfig::small_for_tests());
    let id = {
        let store = fx.create();
        assert!(
            store.recovery_report().is_none(),
            "fresh store ran no recovery"
        );
        let id = store.allocate_chunk_id().unwrap();
        for v in 0..3u32 {
            store.write(id, &v.to_le_bytes()).unwrap();
            store.commit(Durability::Durable).unwrap();
        }
        for v in 3..7u32 {
            store.write(id, &v.to_le_bytes()).unwrap();
            store.commit(Durability::Lazy).unwrap();
        }
        id
    };
    let store = fx.open();
    let report = store
        .recovery_report()
        .expect("opened store carries a report");
    assert_eq!(report.last_seq - report.base_seq, report.commits_replayed);
    assert_eq!(
        report.nondurable_discarded, 4,
        "the four nondurable leftovers are discarded, and counted: {report:?}"
    );
    assert!(
        !report.counter_repaired,
        "clean shutdown needs no counter repair"
    );
    // And the discard is real: the durable version survives.
    assert_eq!(store.read(id).unwrap(), 2u32.to_le_bytes());
}
