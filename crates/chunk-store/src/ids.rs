//! Identifier newtypes for the chunk store.

use std::fmt;

/// The persistent name of a chunk (paper Fig. 2: `ChunkId`).
///
/// Ids are allocated by
/// [`ChunkStore::allocate_chunk_id`](crate::ChunkStore::allocate_chunk_id)
/// and reused after deallocation. The object store exposes the same value as
/// `ObjectId` — TDB stores one object per chunk (§4.2.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkId(pub u64);

impl ChunkId {
    /// Raw numeric value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkId({})", self.0)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Index of a log segment file in the untrusted store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// File name of this segment in the untrusted store.
    pub fn file_name(self) -> String {
        format!("seg.{:06}", self.0)
    }
}

impl fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SegmentId({})", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_id_formatting_and_order() {
        let a = ChunkId(1);
        let b = ChunkId(2);
        assert!(a < b);
        assert_eq!(format!("{a}"), "ChunkId(1)");
        assert_eq!(a.as_u64(), 1);
    }

    #[test]
    fn segment_file_names_sort_lexicographically() {
        let names: Vec<String> = (0..1500u32).map(|i| SegmentId(i).file_name()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(SegmentId(7).file_name(), "seg.000007");
    }
}
