//! The hierarchical location map with the embedded Merkle hash tree.
//!
//! The map takes a [`ChunkId`] to the [`Location`] of the chunk's current
//! version in the log. It is a radix tree of fanout `F`: a leaf page holds
//! `F` consecutive ids' locations, an inner page holds the locations of `F`
//! child pages. Because a [`Location`] *contains the SHA-256 digest* of the
//! bytes it points at, parent pages authenticate child pages and leaf
//! entries authenticate chunk data — the hash tree "embedded in the location
//! map" of paper §3.2.1, with no separate Merkle structure to maintain.
//!
//! The tree lives fully in memory (DRM databases are small and cacheable,
//! §1); dirty pages are written out only at checkpoints. Nodes are shared
//! via `Arc`, so a copy-on-write snapshot of the whole database is one
//! `Arc::clone` of the root (§3.2.1: "the location map can be inexpensively
//! snapshot using copy-on-write"), and two snapshots are compared in time
//! proportional to their difference by pruning identical subtrees
//! (`diff_roots`).

use crate::error::{ChunkStoreError, Result};
use crate::ids::{ChunkId, SegmentId};
use crate::layout::{get_location, location_len, put_location, Cursor, Malformed};
use std::sync::{Arc, OnceLock};
use tdb_crypto::Digest;
use tdb_proof::PathNode;

/// Where (and what) a chunk version or map page is in the log.
///
/// `len` is the full on-disk record length including the record header;
/// `hash` is the digest of the record's stored payload bytes (zeros when
/// security is off).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Location {
    /// Segment holding the record.
    pub seg: SegmentId,
    /// Byte offset of the record header within the segment.
    pub off: u32,
    /// Total record length (header + payload).
    pub len: u32,
    /// Digest of the stored payload.
    pub hash: Digest,
}

const LEAF_TAG: u8 = 1;
const INNER_TAG: u8 = 2;

/// A map tree node. `disk` is `Some` iff the node is *clean*: its serialized
/// page is on disk at that location. Any mutation clears `disk` along the
/// whole root-to-leaf path, so a clean node implies a clean subtree.
///
/// `proof` memoizes the node's **canonical proof-tree hash** (the
/// store-independent hashing defined by [`tdb_proof::tree`]). It derives
/// from the leaf chunk digests only — never from page locations — so it is
/// invariant under checkpoints and cleaner relocation, and is invalidated
/// exactly where logical content changes: [`LocationMap::dirty`], through
/// which every `set`/`remove` path node passes.
#[derive(Clone)]
pub(crate) struct Node {
    pub(crate) disk: Option<Location>,
    pub(crate) kind: NodeKind,
    proof: OnceLock<Digest>,
}

#[derive(Clone)]
pub(crate) enum NodeKind {
    Inner(Vec<Option<Arc<Node>>>),
    Leaf(Vec<Option<Location>>),
}

impl Node {
    fn new_leaf(fanout: usize) -> Node {
        Node {
            disk: None,
            kind: NodeKind::Leaf(vec![None; fanout]),
            proof: OnceLock::new(),
        }
    }

    fn new_inner(fanout: usize) -> Node {
        Node {
            disk: None,
            kind: NodeKind::Inner(vec![None; fanout]),
            proof: OnceLock::new(),
        }
    }

    /// Entries of this node as the verifier sees them: `(slot, digest)`
    /// with leaf digests = chunk sealed-record hashes and inner digests =
    /// child proof hashes.
    fn proof_entries(&self) -> Vec<(u32, Digest)> {
        match &self.kind {
            NodeKind::Leaf(slots) => slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|l| (i as u32, l.hash)))
                .collect(),
            NodeKind::Inner(children) => children
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.as_ref().map(|c| (i as u32, c.proof_hash())))
                .collect(),
        }
    }

    /// Canonical proof-tree hash of this subtree (memoized; O(changed)
    /// across commits thanks to structural sharing).
    pub(crate) fn proof_hash(&self) -> Digest {
        *self.proof.get_or_init(|| {
            let entries = self.proof_entries();
            tdb_proof::tree::hash_node(
                matches!(self.kind, NodeKind::Leaf(_)),
                entries.iter().map(|(s, d)| (*s, d)),
            )
        })
    }

    fn as_path_node(&self) -> PathNode {
        PathNode {
            is_leaf: matches!(self.kind, NodeKind::Leaf(_)),
            entries: self.proof_entries(),
        }
    }
}

/// The in-memory location map.
pub struct LocationMap {
    root: Arc<Node>,
    /// Number of levels; 1 means the root is a leaf covering ids `0..F`.
    depth: u32,
    fanout: usize,
    /// Whether serialized pages carry per-entry hashes (security on).
    hashed: bool,
    /// On-disk extents of pages superseded since the last drain (they
    /// become dead space once the next checkpoint lands).
    superseded: Vec<Location>,
}

impl LocationMap {
    /// Fresh empty map. `hashed` selects whether serialized pages carry
    /// the Merkle digests (security on) or bare positions (security off).
    pub fn new(fanout: usize, hashed: bool) -> Self {
        LocationMap {
            root: Arc::new(Node::new_leaf(fanout)),
            depth: 1,
            fanout,
            hashed,
            superseded: Vec::new(),
        }
    }

    /// Map fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree depth (levels).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Ids representable without growing: `fanout^depth`.
    fn capacity(&self) -> u128 {
        (self.fanout as u128).pow(self.depth)
    }

    /// Location of the current version of `id`, if any.
    pub fn get(&self, id: ChunkId) -> Option<Location> {
        if id.0 as u128 >= self.capacity() {
            return None;
        }
        let mut node = &self.root;
        let mut level = self.depth;
        loop {
            let slot = self.slot_at(id.0, level);
            match &node.kind {
                NodeKind::Inner(children) => {
                    node = children[slot].as_ref()?;
                    level -= 1;
                }
                NodeKind::Leaf(slots) => return slots[slot],
            }
        }
    }

    /// Digit of `id` selecting the child at `level` (levels count down from
    /// `depth` at the root to 1 at the leaves).
    fn slot_at(&self, id: u64, level: u32) -> usize {
        ((id as u128 / (self.fanout as u128).pow(level - 1)) % self.fanout as u128) as usize
    }

    fn dirty(superseded: &mut Vec<Location>, node: &mut Node) {
        if let Some(loc) = node.disk.take() {
            superseded.push(loc);
        }
        // The logical content of this subtree is about to change (every
        // set/remove dirties its whole path): drop the memoized proof hash
        // unconditionally, whether or not the page was clean.
        node.proof = OnceLock::new();
    }

    /// Grow the tree until `id` is representable.
    fn grow_for(&mut self, id: u64) {
        while (id as u128) >= self.capacity() {
            let mut new_root = Node::new_inner(self.fanout);
            if let NodeKind::Inner(children) = &mut new_root.kind {
                children[0] = Some(self.root.clone());
            }
            self.root = Arc::new(new_root);
            self.depth += 1;
        }
    }

    /// Install `loc` as the current version of `id`, returning the
    /// superseded data location if the id was already mapped.
    pub fn set(&mut self, id: ChunkId, loc: Location) -> Option<Location> {
        self.grow_for(id.0);
        let fanout = self.fanout;
        let depth = self.depth;
        let mut superseded = std::mem::take(&mut self.superseded);

        let mut node = Arc::make_mut(&mut self.root);
        Self::dirty(&mut superseded, node);
        let mut level = depth;
        let old = loop {
            let slot = slot_at(fanout, id.0, level);
            match &mut node.kind {
                NodeKind::Inner(children) => {
                    let child = children[slot].get_or_insert_with(|| {
                        Arc::new(if level - 1 == 1 {
                            Node::new_leaf(fanout)
                        } else {
                            Node::new_inner(fanout)
                        })
                    });
                    let child = Arc::make_mut(child);
                    Self::dirty(&mut superseded, child);
                    node = child;
                    level -= 1;
                }
                NodeKind::Leaf(slots) => {
                    break slots[slot].replace(loc);
                }
            }
        };
        self.superseded = superseded;
        old
    }

    /// Remove the mapping for `id`, returning the superseded data location.
    /// Removing an unmapped id is a no-op returning `None` (and does not
    /// dirty the tree).
    pub fn remove(&mut self, id: ChunkId) -> Option<Location> {
        self.get(id)?;
        let fanout = self.fanout;
        let depth = self.depth;
        let mut superseded = std::mem::take(&mut self.superseded);

        let mut node = Arc::make_mut(&mut self.root);
        Self::dirty(&mut superseded, node);
        let mut level = depth;
        let old = loop {
            let slot = slot_at(fanout, id.0, level);
            match &mut node.kind {
                NodeKind::Inner(children) => {
                    let child = children[slot].as_mut().expect("checked by get");
                    let child = Arc::make_mut(child);
                    Self::dirty(&mut superseded, child);
                    node = child;
                    level -= 1;
                }
                NodeKind::Leaf(slots) => break slots[slot].take(),
            }
        };
        self.superseded = superseded;
        old
    }

    /// Apply a whole commit's worth of updates in one descent: `Some(loc)`
    /// installs a mapping, `None` removes one. Returns the superseded data
    /// location per op, aligned with `ops`. Equivalent to calling
    /// [`set`](Self::set)/[`remove`](Self::remove) per op, but each node on
    /// the union of the root-to-leaf paths is cloned and dirtied **once**
    /// for the batch instead of once per op — upper nodes shared by the
    /// group's ids are deduped.
    ///
    /// Callers pass at most one op per id (the commit path's op map is
    /// keyed by id); a remove is resolved against the pre-batch state.
    pub fn apply_batch(&mut self, ops: &[(ChunkId, Option<Location>)]) -> Vec<Option<Location>> {
        let mut old: Vec<Option<Location>> = vec![None; ops.len()];
        // Resolve no-op removes up front so they don't dirty the tree.
        let mut live: Vec<(usize, ChunkId, Option<Location>)> = Vec::with_capacity(ops.len());
        for (i, (id, op)) in ops.iter().enumerate() {
            match op {
                Some(loc) => live.push((i, *id, Some(*loc))),
                None => {
                    if self.get(*id).is_some() {
                        live.push((i, *id, None));
                    }
                }
            }
        }
        if live.is_empty() {
            return old;
        }
        for (_, id, op) in &live {
            if op.is_some() {
                self.grow_for(id.0);
            }
        }
        // Sorted ids give non-decreasing slots at every level, so each
        // node's ops split into contiguous per-child runs.
        live.sort_by_key(|(_, id, _)| id.0);
        let fanout = self.fanout;
        let depth = self.depth;
        let mut superseded = std::mem::take(&mut self.superseded);
        let root = Arc::make_mut(&mut self.root);
        Self::dirty(&mut superseded, root);
        Self::apply_batch_rec(root, fanout, depth, &live, &mut superseded, &mut old);
        self.superseded = superseded;
        old
    }

    fn apply_batch_rec(
        node: &mut Node,
        fanout: usize,
        level: u32,
        ops: &[(usize, ChunkId, Option<Location>)],
        superseded: &mut Vec<Location>,
        old: &mut [Option<Location>],
    ) {
        match &mut node.kind {
            NodeKind::Leaf(slots) => {
                for (i, id, op) in ops {
                    let slot = slot_at(fanout, id.0, level);
                    old[*i] = match op {
                        Some(loc) => slots[slot].replace(*loc),
                        None => slots[slot].take(),
                    };
                }
            }
            NodeKind::Inner(children) => {
                let mut start = 0;
                while start < ops.len() {
                    let slot = slot_at(fanout, ops[start].1 .0, level);
                    let mut end = start + 1;
                    while end < ops.len() && slot_at(fanout, ops[end].1 .0, level) == slot {
                        end += 1;
                    }
                    let child = children[slot].get_or_insert_with(|| {
                        Arc::new(if level - 1 == 1 {
                            Node::new_leaf(fanout)
                        } else {
                            Node::new_inner(fanout)
                        })
                    });
                    let child = Arc::make_mut(child);
                    Self::dirty(superseded, child);
                    Self::apply_batch_rec(
                        child,
                        fanout,
                        level - 1,
                        &ops[start..end],
                        superseded,
                        old,
                    );
                    start = end;
                }
            }
        }
    }

    /// Take the accumulated superseded page extents.
    pub fn drain_superseded(&mut self) -> Vec<Location> {
        std::mem::take(&mut self.superseded)
    }

    /// Whether any page is dirty (an un-checkpointed change exists).
    pub fn is_dirty(&self) -> bool {
        self.root.disk.is_none()
    }

    /// Visit every live chunk entry.
    pub fn for_each_entry(&self, f: &mut impl FnMut(ChunkId, &Location)) {
        Self::walk_entries(&self.root, self.fanout, self.depth, 0, f);
    }

    fn walk_entries(
        node: &Node,
        fanout: usize,
        level: u32,
        base: u128,
        f: &mut impl FnMut(ChunkId, &Location),
    ) {
        let stride = (fanout as u128).pow(level - 1);
        match &node.kind {
            NodeKind::Inner(children) => {
                for (i, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        Self::walk_entries(child, fanout, level - 1, base + i as u128 * stride, f);
                    }
                }
            }
            NodeKind::Leaf(slots) => {
                for (i, slot) in slots.iter().enumerate() {
                    if let Some(loc) = slot {
                        f(ChunkId((base + i as u128) as u64), loc);
                    }
                }
            }
        }
    }

    /// Visit the on-disk location of every *clean* page (dirty pages have
    /// no live on-disk copy).
    pub fn for_each_page(&self, f: &mut impl FnMut(&Location)) {
        Self::walk_pages(&self.root, f);
    }

    fn walk_pages(node: &Node, f: &mut impl FnMut(&Location)) {
        if let Some(loc) = &node.disk {
            f(loc);
        }
        if let NodeKind::Inner(children) = &node.kind {
            for child in children.iter().flatten() {
                Self::walk_pages(child, f);
            }
        }
    }

    /// Number of live chunk entries (O(map)).
    pub fn live_count(&self) -> u64 {
        let mut n = 0;
        self.for_each_entry(&mut |_, _| n += 1);
        n
    }

    /// Dirty every clean page stored in one of `segs` (the cleaner calls
    /// this so the next checkpoint relocates those pages off the victim
    /// segments). Returns the number of pages dirtied.
    pub fn dirty_pages_in(&mut self, segs: &std::collections::HashSet<SegmentId>) -> usize {
        let mut superseded = std::mem::take(&mut self.superseded);
        let n = Self::dirty_pages_rec(&mut self.root, segs, &mut superseded);
        self.superseded = superseded;
        n
    }

    fn dirty_pages_rec(
        node: &mut Arc<Node>,
        segs: &std::collections::HashSet<SegmentId>,
        superseded: &mut Vec<Location>,
    ) -> usize {
        // Decide before cloning: does this subtree contain a page in segs?
        fn subtree_touches(node: &Node, segs: &std::collections::HashSet<SegmentId>) -> bool {
            if matches!(&node.disk, Some(loc) if segs.contains(&loc.seg)) {
                return true;
            }
            if let NodeKind::Inner(children) = &node.kind {
                children.iter().flatten().any(|c| subtree_touches(c, segs))
            } else {
                false
            }
        }
        if !subtree_touches(node, segs) {
            return 0;
        }
        let mut count = 0;
        let node = Arc::make_mut(node);
        if matches!(&node.disk, Some(loc) if segs.contains(&loc.seg)) {
            LocationMap::dirty(superseded, node);
            count += 1;
        } else if node.disk.is_some() {
            // An ancestor of a dirtied page must be rewritten too, but its
            // own old page stays live until the checkpoint... no: once any
            // descendant moves, this page's content changes, so it is
            // superseded as well.
            LocationMap::dirty(superseded, node);
        }
        if let NodeKind::Inner(children) = &mut node.kind {
            for child in children.iter_mut().flatten() {
                count += LocationMap::dirty_pages_rec(child, segs, superseded);
            }
        }
        count
    }

    // -- checkpoint ---------------------------------------------------------

    /// Write all dirty pages bottom-up through `writer` (which seals,
    /// appends, and returns the new [`Location`] of the page bytes it is
    /// given). Returns the root page location. After this the whole tree is
    /// clean.
    pub fn checkpoint(
        &mut self,
        writer: &mut dyn FnMut(&[u8]) -> Result<Location>,
    ) -> Result<Location> {
        let fanout = self.fanout;
        let hashed = self.hashed;
        Self::persist(&mut self.root, fanout, hashed, writer)
    }

    fn persist(
        node_arc: &mut Arc<Node>,
        fanout: usize,
        hashed: bool,
        writer: &mut dyn FnMut(&[u8]) -> Result<Location>,
    ) -> Result<Location> {
        if let Some(loc) = node_arc.disk {
            return Ok(loc);
        }
        let node = Arc::make_mut(node_arc);
        let bytes = match &mut node.kind {
            NodeKind::Inner(children) => {
                let mut locs: Vec<(usize, Location)> = Vec::new();
                for (i, child) in children.iter_mut().enumerate() {
                    if let Some(child) = child {
                        locs.push((i, Self::persist(child, fanout, hashed, writer)?));
                    }
                }
                serialize_inner(fanout, hashed, &locs)
            }
            NodeKind::Leaf(slots) => serialize_leaf(fanout, hashed, slots),
        };
        let loc = writer(&bytes)?;
        node.disk = Some(loc);
        Ok(loc)
    }

    // -- load ---------------------------------------------------------------

    /// Rebuild the map from its checkpointed pages. `reader` must fetch the
    /// record payload at a [`Location`], verify its hash, and decrypt it —
    /// so every page is validated against its parent on the way down, which
    /// is exactly the Merkle path check of §3.
    pub fn load(
        root_loc: Location,
        depth: u32,
        fanout: usize,
        hashed: bool,
        reader: &dyn Fn(&Location) -> Result<Vec<u8>>,
    ) -> Result<Self> {
        let root = Self::load_node(&root_loc, depth, fanout, hashed, reader)?;
        Ok(LocationMap {
            root: Arc::new(root),
            depth,
            fanout,
            hashed,
            superseded: Vec::new(),
        })
    }

    fn load_node(
        loc: &Location,
        level: u32,
        fanout: usize,
        hashed: bool,
        reader: &dyn Fn(&Location) -> Result<Vec<u8>>,
    ) -> Result<Node> {
        let bytes = reader(loc)?;
        let page = parse_page(fanout, hashed, &bytes)
            .map_err(|m| ChunkStoreError::TamperDetected(format!("bad map page: {}", m.0)))?;
        let kind = match page {
            ParsedPage::Leaf(slots) => {
                if level != 1 {
                    return Err(ChunkStoreError::TamperDetected(
                        "leaf page at inner level".into(),
                    ));
                }
                NodeKind::Leaf(slots)
            }
            ParsedPage::Inner(child_locs) => {
                if level <= 1 {
                    return Err(ChunkStoreError::TamperDetected(
                        "inner page at leaf level".into(),
                    ));
                }
                let mut children: Vec<Option<Arc<Node>>> = vec![None; fanout];
                for (i, cl) in child_locs {
                    children[i] = Some(Arc::new(Self::load_node(
                        &cl,
                        level - 1,
                        fanout,
                        hashed,
                        reader,
                    )?));
                }
                NodeKind::Inner(children)
            }
        };
        Ok(Node {
            disk: Some(*loc),
            kind,
            proof: OnceLock::new(),
        })
    }

    // -- snapshots ----------------------------------------------------------

    /// Shareable frozen view of the current tree.
    pub(crate) fn freeze(&self) -> (Arc<Node>, u32) {
        (self.root.clone(), self.depth)
    }
}

fn slot_at(fanout: usize, id: u64, level: u32) -> usize {
    ((id as u128 / (fanout as u128).pow(level - 1)) % fanout as u128) as usize
}

/// Recompute every missing proof-hash memo in a frozen subtree in one
/// bottom-up pass, then return the root's canonical hash. Nodes with a
/// memo are pruned (their whole subtree is already hashed — the memo is
/// only ever cleared along dirtied paths), so the pass visits exactly the
/// union of the group's dirty root-to-leaf paths, each shared upper node
/// once. Whole levels are hashed through [`tdb_crypto::sha256_batch`],
/// which keeps multiple SHA-256 message schedules in flight.
///
/// Bit-identical to the incremental per-path hashing ([`Node::proof_hash`]
/// computes the same [`tdb_proof::tree::hash_node`] preimages), and safe
/// on a shared frozen root: memos land via `OnceLock::set`, so a racing
/// lazy hasher just wins (or loses) the same value.
pub(crate) fn rehash_root_batched(root: &Node) -> Digest {
    fn collect<'a>(node: &'a Node, depth: usize, levels: &mut Vec<Vec<&'a Node>>) {
        if node.proof.get().is_some() {
            return;
        }
        if levels.len() <= depth {
            levels.resize_with(depth + 1, Vec::new);
        }
        levels[depth].push(node);
        if let NodeKind::Inner(children) = &node.kind {
            for child in children.iter().flatten() {
                collect(child, depth + 1, levels);
            }
        }
    }
    let mut levels: Vec<Vec<&Node>> = Vec::new();
    collect(root, 0, &mut levels);
    // Deepest level first: every child is memoized before its parent's
    // preimage (which embeds the child digests) is materialized.
    for level in levels.iter().rev() {
        let preimages: Vec<Vec<u8>> = level
            .iter()
            .map(|n| {
                let entries = n.proof_entries();
                tdb_proof::tree::node_preimage(
                    matches!(n.kind, NodeKind::Leaf(_)),
                    entries.iter().map(|(s, d)| (*s, d)),
                )
            })
            .collect();
        let refs: Vec<&[u8]> = preimages.iter().map(|p| p.as_slice()).collect();
        for (n, d) in level.iter().zip(tdb_crypto::sha256_batch(&refs)) {
            let _ = n.proof.set(d);
        }
    }
    root.proof_hash()
}

// ---------------------------------------------------------------------------
// Page (de)serialization
// ---------------------------------------------------------------------------

fn bitmap_len(fanout: usize) -> usize {
    fanout.div_ceil(8)
}

fn serialize_leaf(fanout: usize, hashed: bool, slots: &[Option<Location>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + bitmap_len(fanout) + slots.len() * location_len(hashed));
    out.push(LEAF_TAG);
    push_bitmap(&mut out, fanout, &mut slots.iter().map(|s| s.is_some()));
    for loc in slots.iter().flatten() {
        put_location(&mut out, loc, hashed);
    }
    out
}

fn serialize_inner(fanout: usize, hashed: bool, children: &[(usize, Location)]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(1 + bitmap_len(fanout) + children.len() * location_len(hashed));
    out.push(INNER_TAG);
    let mut present = vec![false; fanout];
    for (i, _) in children {
        present[*i] = true;
    }
    push_bitmap(&mut out, fanout, &mut present.iter().copied());
    for (_, loc) in children {
        put_location(&mut out, loc, hashed);
    }
    out
}

fn push_bitmap(out: &mut Vec<u8>, fanout: usize, bits: &mut dyn Iterator<Item = bool>) {
    let mut bytes = vec![0u8; bitmap_len(fanout)];
    for (i, bit) in bits.enumerate() {
        if bit {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bytes);
}

enum ParsedPage {
    Leaf(Vec<Option<Location>>),
    Inner(Vec<(usize, Location)>),
}

fn parse_page(
    fanout: usize,
    hashed: bool,
    bytes: &[u8],
) -> std::result::Result<ParsedPage, Malformed> {
    let mut c = Cursor::new(bytes);
    let tag = c.u8()?;
    let bitmap = c.bytes(bitmap_len(fanout))?.to_vec();
    let present: Vec<usize> = (0..fanout)
        .filter(|i| bitmap[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    match tag {
        LEAF_TAG => {
            let mut slots = vec![None; fanout];
            for i in &present {
                slots[*i] = Some(get_location(&mut c, hashed)?);
            }
            c.finish()?;
            Ok(ParsedPage::Leaf(slots))
        }
        INNER_TAG => {
            let mut children = Vec::with_capacity(present.len());
            for i in present {
                children.push((i, get_location(&mut c, hashed)?));
            }
            c.finish()?;
            Ok(ParsedPage::Inner(children))
        }
        other => Err(Malformed(format!("unknown page tag {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Snapshot diffing
// ---------------------------------------------------------------------------

/// Difference between two frozen map roots.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MapDiff {
    /// Ids present in `b` whose location differs from `a` (added or
    /// updated), with their location in `b`.
    pub changed: Vec<(ChunkId, Location)>,
    /// Ids present in `a` but absent from `b`.
    pub removed: Vec<ChunkId>,
}

/// Compare two frozen trees, pruning shared subtrees. Complexity is
/// proportional to the amount of change, which is what makes incremental
/// backups cheap (§3.2.1).
pub(crate) fn diff_roots(
    a: &Arc<Node>,
    depth_a: u32,
    b: &Arc<Node>,
    depth_b: u32,
    fanout: usize,
) -> MapDiff {
    let mut diff = MapDiff::default();
    let depth = depth_a.max(depth_b);
    diff_nodes(
        Some(&wrap_to_depth(a, depth_a, depth, fanout)),
        Some(&wrap_to_depth(b, depth_b, depth, fanout)),
        fanout,
        depth,
        0,
        &mut diff,
    );
    diff
}

/// Pad a shallower tree with single-child inner roots so both trees have
/// equal depth (a grown tree nests its old root at child 0).
fn wrap_to_depth(node: &Arc<Node>, depth: u32, target: u32, fanout: usize) -> Arc<Node> {
    let mut node = node.clone();
    for _ in depth..target {
        let mut wrapper = Node::new_inner(fanout);
        if let NodeKind::Inner(children) = &mut wrapper.kind {
            children[0] = Some(node);
        }
        node = Arc::new(wrapper);
    }
    node
}

fn same_page(a: &Node, b: &Node) -> bool {
    match (&a.disk, &b.disk) {
        (Some(la), Some(lb)) => la == lb,
        _ => false,
    }
}

fn diff_nodes(
    a: Option<&Arc<Node>>,
    b: Option<&Arc<Node>>,
    fanout: usize,
    level: u32,
    base: u128,
    out: &mut MapDiff,
) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            if Arc::ptr_eq(a, b) || same_page(a, b) {
                return;
            }
            match (&a.kind, &b.kind) {
                (NodeKind::Inner(ca), NodeKind::Inner(cb)) => {
                    let stride = (fanout as u128).pow(level - 1);
                    for i in 0..fanout {
                        diff_nodes(
                            ca[i].as_ref(),
                            cb[i].as_ref(),
                            fanout,
                            level - 1,
                            base + i as u128 * stride,
                            out,
                        );
                    }
                }
                (NodeKind::Leaf(sa), NodeKind::Leaf(sb)) => {
                    for i in 0..fanout {
                        let id = ChunkId((base + i as u128) as u64);
                        match (&sa[i], &sb[i]) {
                            (Some(la), Some(lb)) if la == lb => {}
                            (_, Some(lb)) => out.changed.push((id, *lb)),
                            (Some(_), None) => out.removed.push(id),
                            (None, None) => {}
                        }
                    }
                }
                // Structurally impossible for trees of equal depth; treat
                // as full difference of both sides.
                _ => {
                    collect_all(Some(a), fanout, level, base, &mut |id, _| {
                        out.removed.push(id)
                    });
                    collect_all(Some(b), fanout, level, base, &mut |id, loc| {
                        out.changed.push((id, *loc))
                    });
                }
            }
        }
        (Some(a), None) => {
            collect_all(Some(a), fanout, level, base, &mut |id, _| {
                out.removed.push(id)
            });
        }
        (None, Some(b)) => {
            collect_all(Some(b), fanout, level, base, &mut |id, loc| {
                out.changed.push((id, *loc))
            });
        }
    }
}

fn collect_all(
    node: Option<&Arc<Node>>,
    fanout: usize,
    level: u32,
    base: u128,
    f: &mut impl FnMut(ChunkId, &Location),
) {
    let Some(node) = node else { return };
    match &node.kind {
        NodeKind::Inner(children) => {
            let stride = (fanout as u128).pow(level - 1);
            for (i, child) in children.iter().enumerate() {
                collect_all(
                    child.as_ref(),
                    fanout,
                    level - 1,
                    base + i as u128 * stride,
                    f,
                );
            }
        }
        NodeKind::Leaf(slots) => {
            for (i, slot) in slots.iter().enumerate() {
                if let Some(loc) = slot {
                    f(ChunkId((base + i as u128) as u64), loc);
                }
            }
        }
    }
}

/// Extract the proof path for `id` from a frozen root: every node from the
/// root toward `id`'s leaf in root-first order, stopping at the node where
/// the id's slot is empty (non-membership) — or the bare root for an id
/// beyond the tree's capacity. Also returns the leaf [`Location`] when the
/// id is mapped (its `hash` is the sealed-record digest the proof
/// includes).
pub(crate) fn proof_path_in_root(
    root: &Arc<Node>,
    depth: u32,
    fanout: usize,
    id: ChunkId,
) -> (Vec<PathNode>, Option<Location>) {
    if id.0 as u128 >= (fanout as u128).pow(depth) {
        return (vec![root.as_path_node()], None);
    }
    let mut path = Vec::with_capacity(depth as usize);
    let mut node = root;
    let mut level = depth;
    loop {
        path.push(node.as_path_node());
        let slot = slot_at(fanout, id.0, level);
        match &node.kind {
            NodeKind::Inner(children) => match children[slot].as_ref() {
                Some(child) => {
                    node = child;
                    level -= 1;
                }
                None => return (path, None),
            },
            NodeKind::Leaf(slots) => return (path, slots[slot]),
        }
    }
}

/// Read a chunk location from a frozen root (used by snapshot reads).
pub(crate) fn get_in_root(
    root: &Arc<Node>,
    depth: u32,
    fanout: usize,
    id: ChunkId,
) -> Option<Location> {
    if id.0 as u128 >= (fanout as u128).pow(depth) {
        return None;
    }
    let mut node = root;
    let mut level = depth;
    loop {
        let slot = slot_at(fanout, id.0, level);
        match &node.kind {
            NodeKind::Inner(children) => {
                node = children[slot].as_ref()?;
                level -= 1;
            }
            NodeKind::Leaf(slots) => return slots[slot],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn loc(tag: u32) -> Location {
        Location {
            seg: SegmentId(tag),
            off: tag,
            len: 10,
            hash: [tag as u8; 32],
        }
    }

    #[test]
    fn set_get_remove_basic() {
        let mut m = LocationMap::new(4, true);
        assert_eq!(m.get(ChunkId(0)), None);
        assert_eq!(m.set(ChunkId(0), loc(1)), None);
        assert_eq!(m.get(ChunkId(0)), Some(loc(1)));
        assert_eq!(m.set(ChunkId(0), loc(2)), Some(loc(1)));
        assert_eq!(m.remove(ChunkId(0)), Some(loc(2)));
        assert_eq!(m.get(ChunkId(0)), None);
        assert_eq!(m.remove(ChunkId(0)), None);
    }

    #[test]
    fn grows_across_levels() {
        let mut m = LocationMap::new(4, true);
        // id 100 needs depth 4 with fanout 4 (capacity 256).
        m.set(ChunkId(100), loc(7));
        assert!(m.depth() >= 4);
        assert_eq!(m.get(ChunkId(100)), Some(loc(7)));
        // Earlier ids still reachable after growth.
        m.set(ChunkId(0), loc(1));
        m.set(ChunkId(3), loc(2));
        assert_eq!(m.get(ChunkId(0)), Some(loc(1)));
        assert_eq!(m.get(ChunkId(3)), Some(loc(2)));
        assert_eq!(m.get(ChunkId(101)), None);
        assert_eq!(m.live_count(), 3);
    }

    #[test]
    fn for_each_entry_visits_all_in_order() {
        let mut m = LocationMap::new(8, true);
        let ids = [0u64, 5, 7, 8, 63, 64, 100, 511];
        for (i, id) in ids.iter().enumerate() {
            m.set(ChunkId(*id), loc(i as u32));
        }
        let mut seen = Vec::new();
        m.for_each_entry(&mut |id, _| seen.push(id.0));
        assert_eq!(seen, ids.to_vec());
    }

    #[test]
    fn checkpoint_and_load_roundtrip() {
        let mut m = LocationMap::new(4, true);
        for id in [0u64, 1, 5, 17, 300] {
            m.set(ChunkId(id), loc(id as u32));
        }
        assert!(m.is_dirty());

        // Fake "log": pages stored by synthetic location.
        let mut pages: HashMap<u32, Vec<u8>> = HashMap::new();
        let mut next = 1000u32;
        let root_loc = m
            .checkpoint(&mut |bytes| {
                let l = Location {
                    seg: SegmentId(0),
                    off: next,
                    len: bytes.len() as u32,
                    hash: [0; 32],
                };
                pages.insert(next, bytes.to_vec());
                next += 1;
                Ok(l)
            })
            .unwrap();
        assert!(!m.is_dirty());
        let depth = m.depth();

        let pages2 = pages.clone();
        let loaded = LocationMap::load(root_loc, depth, 4, true, &move |l: &Location| {
            Ok(pages2.get(&l.off).unwrap().clone())
        })
        .unwrap();
        for id in [0u64, 1, 5, 17, 300] {
            assert_eq!(loaded.get(ChunkId(id)), Some(loc(id as u32)), "id {id}");
        }
        assert_eq!(loaded.get(ChunkId(2)), None);
        assert!(!loaded.is_dirty());

        // Every clean page is enumerated, including the root.
        let mut page_locs = Vec::new();
        loaded.for_each_page(&mut |l| page_locs.push(*l));
        assert!(page_locs.contains(&root_loc));
        assert_eq!(page_locs.len(), pages.len());
    }

    #[test]
    fn checkpoint_writes_only_dirty_pages() {
        let mut m = LocationMap::new(4, true);
        for id in 0..32u64 {
            m.set(ChunkId(id), loc(id as u32));
        }
        let mut writes = 0;
        m.checkpoint(&mut |bytes| {
            writes += 1;
            Ok(Location {
                seg: SegmentId(0),
                off: writes,
                len: bytes.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        let full_writes = writes;
        assert!(full_writes > 8); // all leaves + inners

        // One update dirties exactly one root-to-leaf path.
        m.set(ChunkId(0), loc(99));
        let before = m.drain_superseded().len() as u32;
        assert_eq!(before, m.depth()); // every node on the path superseded
        writes = 0;
        m.checkpoint(&mut |bytes| {
            writes += 1;
            Ok(Location {
                seg: SegmentId(1),
                off: writes,
                len: bytes.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        assert_eq!(writes, m.depth()); // path only
    }

    #[test]
    fn superseded_tracks_old_page_extents() {
        let mut m = LocationMap::new(4, true);
        m.set(ChunkId(0), loc(1));
        assert!(m.drain_superseded().is_empty()); // nothing was ever on disk
        let mut off = 0u32;
        m.checkpoint(&mut |b| {
            off += 1;
            Ok(Location {
                seg: SegmentId(0),
                off,
                len: b.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        m.set(ChunkId(1), loc(2));
        let superseded = m.drain_superseded();
        assert_eq!(superseded.len() as u32, m.depth());
    }

    #[test]
    fn dirty_pages_in_marks_victims_and_ancestors() {
        let mut m = LocationMap::new(4, true);
        for id in 0..32u64 {
            m.set(ChunkId(id), loc(id as u32));
        }
        let mut seg_alloc = 0u32;
        m.checkpoint(&mut |b| {
            seg_alloc += 1;
            // Spread pages across "segments" 0 and 1 alternately.
            Ok(Location {
                seg: SegmentId(seg_alloc % 2),
                off: seg_alloc,
                len: b.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        let mut victims = std::collections::HashSet::new();
        victims.insert(SegmentId(0));
        let dirtied = m.dirty_pages_in(&victims);
        assert!(dirtied > 0);
        // After the follow-up checkpoint no page lives in segment 0.
        let mut off = 100u32;
        m.checkpoint(&mut |b| {
            off += 1;
            Ok(Location {
                seg: SegmentId(2),
                off,
                len: b.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        m.for_each_page(&mut |l| assert_ne!(l.seg, SegmentId(0)));
        // Entries unchanged.
        assert_eq!(m.live_count(), 32);
    }

    #[test]
    fn load_rejects_structurally_bad_pages() {
        let err = LocationMap::load(loc(0), 1, 4, true, &|_l: &Location| Ok(vec![9, 9, 9]))
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ChunkStoreError::TamperDetected(_)));
        // Inner tag at leaf level.
        let inner_bytes = serialize_inner(4, true, &[]);
        let err = LocationMap::load(loc(0), 1, 4, true, &move |_l: &Location| {
            Ok(inner_bytes.clone())
        })
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, ChunkStoreError::TamperDetected(_)));
    }

    #[test]
    fn diff_detects_changed_added_removed() {
        let mut m = LocationMap::new(4, true);
        for id in 0..10u64 {
            m.set(ChunkId(id), loc(id as u32));
        }
        let (a_root, a_depth) = m.freeze();
        m.set(ChunkId(3), loc(77)); // change
        m.set(ChunkId(40), loc(78)); // add (grows tree)
        m.remove(ChunkId(7)); // remove
        let (b_root, b_depth) = m.freeze();

        let mut d = diff_roots(&a_root, a_depth, &b_root, b_depth, 4);
        d.changed.sort_by_key(|(id, _)| id.0);
        assert_eq!(
            d.changed,
            vec![(ChunkId(3), loc(77)), (ChunkId(40), loc(78))]
        );
        assert_eq!(d.removed, vec![ChunkId(7)]);
    }

    #[test]
    fn diff_of_identical_roots_is_empty() {
        let mut m = LocationMap::new(4, true);
        for id in 0..20u64 {
            m.set(ChunkId(id), loc(id as u32));
        }
        let (a, da) = m.freeze();
        let (b, db) = m.freeze();
        let d = diff_roots(&a, da, &b, db, 4);
        assert!(d.changed.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn diff_prunes_clean_shared_subtrees() {
        // After a checkpoint, unchanged subtrees have equal disk locations
        // even across deep copies; the diff must not descend into them.
        let mut m = LocationMap::new(4, true);
        for id in 0..64u64 {
            m.set(ChunkId(id), loc(id as u32));
        }
        let mut off = 0u32;
        m.checkpoint(&mut |b| {
            off += 1;
            Ok(Location {
                seg: SegmentId(0),
                off,
                len: b.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        let (a, da) = m.freeze();
        m.set(ChunkId(0), loc(200));
        let (b, db) = m.freeze();
        let d = diff_roots(&a, da, &b, db, 4);
        assert_eq!(d.changed, vec![(ChunkId(0), loc(200))]);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut m = LocationMap::new(4, true);
        m.set(ChunkId(1), loc(1));
        let (snap, depth) = m.freeze();
        m.set(ChunkId(1), loc(2));
        m.set(ChunkId(9), loc(3));
        assert_eq!(get_in_root(&snap, depth, 4, ChunkId(1)), Some(loc(1)));
        assert_eq!(get_in_root(&snap, depth, 4, ChunkId(9)), None);
        assert_eq!(m.get(ChunkId(1)), Some(loc(2)));
    }

    #[test]
    fn proof_hash_tracks_content_not_placement() {
        let mut m = LocationMap::new(4, true);
        for id in 0..20u64 {
            m.set(ChunkId(id), loc(id as u32));
        }
        let (root, depth) = m.freeze();
        let before = root.proof_hash();

        // Checkpointing (page placement) must not change the proof hash.
        let mut off = 0u32;
        m.checkpoint(&mut |b| {
            off += 1;
            Ok(Location {
                seg: SegmentId(0),
                off,
                len: b.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        assert_eq!(m.freeze().0.proof_hash(), before);

        // Relocating pages (what the cleaner does) must not either.
        let mut victims = std::collections::HashSet::new();
        victims.insert(SegmentId(0));
        m.dirty_pages_in(&victims);
        let mut off = 100u32;
        m.checkpoint(&mut |b| {
            off += 1;
            Ok(Location {
                seg: SegmentId(1),
                off,
                len: b.len() as u32,
                hash: [0; 32],
            })
        })
        .unwrap();
        assert_eq!(m.freeze().0.proof_hash(), before);

        // Changing an entry must.
        m.set(ChunkId(3), loc(99));
        let changed = m.freeze().0.proof_hash();
        assert_ne!(changed, before);
        m.remove(ChunkId(3));
        assert_ne!(m.freeze().0.proof_hash(), changed);
        // The frozen snapshot kept its own memo intact.
        assert_eq!(root.proof_hash(), before);
        let _ = depth;
    }

    #[test]
    fn apply_batch_matches_sequential_ops() {
        // Same ops through apply_batch and through per-op set/remove must
        // produce identical maps, identical returned old locations, and
        // identical superseded-extent multisets.
        let ops: Vec<(ChunkId, Option<Location>)> = vec![
            (ChunkId(0), Some(loc(10))),
            (ChunkId(3), None),          // no-op remove (never mapped)
            (ChunkId(5), Some(loc(11))), // overwrite below
            (ChunkId(17), Some(loc(12))),
            (ChunkId(64), Some(loc(13))), // forces growth
            (ChunkId(7), None),           // real remove
        ];
        let mut seq = LocationMap::new(4, true);
        let mut bat = LocationMap::new(4, true);
        for m in [&mut seq, &mut bat] {
            m.set(ChunkId(5), loc(1));
            m.set(ChunkId(7), loc(2));
            let mut off = 0u32;
            m.checkpoint(&mut |b| {
                off += 1;
                Ok(Location {
                    seg: SegmentId(9),
                    off,
                    len: b.len() as u32,
                    hash: [0; 32],
                })
            })
            .unwrap();
        }

        let mut seq_old = Vec::new();
        for (id, op) in &ops {
            seq_old.push(match op {
                Some(l) => seq.set(*id, *l),
                None => seq.remove(*id),
            });
        }
        let bat_old = bat.apply_batch(&ops);
        assert_eq!(bat_old, seq_old);

        for id in 0..70u64 {
            assert_eq!(bat.get(ChunkId(id)), seq.get(ChunkId(id)), "id {id}");
        }
        let key = |l: &Location| (l.seg, l.off, l.len);
        let mut s1: Vec<_> = seq.drain_superseded().iter().map(key).collect();
        let mut s2: Vec<_> = bat.drain_superseded().iter().map(key).collect();
        s1.sort();
        s1.dedup();
        s2.sort();
        s2.dedup();
        assert_eq!(s1, s2, "superseded extents (deduped) must agree");
        assert_eq!(
            bat.freeze().0.proof_hash(),
            seq.freeze().0.proof_hash(),
            "proof roots must agree"
        );
    }

    #[test]
    fn batched_rehash_matches_incremental() {
        let mut m = LocationMap::new(4, true);
        for id in [0u64, 1, 5, 17, 63, 64, 200] {
            m.set(ChunkId(id), loc(id as u32));
        }
        // Incremental reference on an identical twin.
        let mut twin = LocationMap::new(4, true);
        for id in [0u64, 1, 5, 17, 63, 64, 200] {
            twin.set(ChunkId(id), loc(id as u32));
        }
        let (root, depth) = m.freeze();
        assert_eq!(rehash_root_batched(&root), twin.freeze().0.proof_hash());
        // Paths minted off the batched-rehash root equal the lazy ones.
        for id in [0u64, 5, 6, 200, 1 << 30] {
            let (p1, l1) = proof_path_in_root(&root, depth, 4, ChunkId(id));
            let (p2, l2) = proof_path_in_root(&twin.freeze().0, depth, 4, ChunkId(id));
            assert_eq!(p1, p2, "id {id}");
            assert_eq!(l1, l2);
        }
        // A second pass is a no-op (everything memoized).
        assert_eq!(rehash_root_batched(&root), root.proof_hash());
    }

    #[test]
    fn proof_paths_link_and_cover_absence() {
        let mut m = LocationMap::new(4, true);
        for id in [0u64, 5, 17] {
            m.set(ChunkId(id), loc(id as u32));
        }
        let (root, depth) = m.freeze();
        let fanout = 4usize;

        // Present id: full-depth path, root-first, each node's digest at
        // the id's slot equals the next node's hash, leaf carries the
        // chunk's stored hash.
        let (path, found) = proof_path_in_root(&root, depth, fanout, ChunkId(5));
        assert_eq!(path.len(), depth as usize);
        assert_eq!(path[0].hash(), root.proof_hash());
        for i in 0..path.len() - 1 {
            let slot = tdb_proof::tree::slot_at(fanout as u32, 5, depth - 1 - i as u32);
            assert_eq!(path[i].digest_at(slot), Some(&path[i + 1].hash()));
        }
        assert_eq!(found.unwrap().hash, loc(5).hash);
        let leaf_slot = tdb_proof::tree::slot_at(fanout as u32, 5, 0);
        assert_eq!(
            path.last().unwrap().digest_at(leaf_slot),
            Some(&loc(5).hash)
        );

        // Absent id whose leaf exists: path reaches the leaf, slot empty.
        let (path, found) = proof_path_in_root(&root, depth, fanout, ChunkId(6));
        assert!(found.is_none());
        assert_eq!(path.len(), depth as usize);
        let leaf_slot = tdb_proof::tree::slot_at(fanout as u32, 6, 0);
        assert_eq!(path.last().unwrap().digest_at(leaf_slot), None);

        // Absent id in a missing subtree: truncated path.
        let (path, found) = proof_path_in_root(&root, depth, fanout, ChunkId(60));
        assert!(found.is_none());
        assert!(path.len() < depth as usize);

        // Beyond capacity: bare root.
        let (path, found) = proof_path_in_root(&root, depth, fanout, ChunkId(1 << 40));
        assert!(found.is_none());
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].hash(), root.proof_hash());
    }

    #[test]
    fn page_serialization_roundtrips() {
        for hashed in [true, false] {
            let slots = vec![Some(loc(1)), None, Some(loc(3)), None];
            let bytes = serialize_leaf(4, hashed, &slots);
            match parse_page(4, hashed, &bytes).unwrap() {
                ParsedPage::Leaf(parsed) => {
                    for (a, b) in parsed.iter().zip(&slots) {
                        match (a, b) {
                            (Some(a), Some(b)) => {
                                assert_eq!((a.seg, a.off, a.len), (b.seg, b.off, b.len));
                                if hashed {
                                    assert_eq!(a.hash, b.hash);
                                }
                            }
                            (None, None) => {}
                            _ => panic!("presence mismatch"),
                        }
                    }
                }
                _ => panic!("wrong kind"),
            }
            let children = vec![(1usize, loc(5)), (3usize, loc(6))];
            let bytes = serialize_inner(4, hashed, &children);
            match parse_page(4, hashed, &bytes).unwrap() {
                ParsedPage::Inner(parsed) => assert_eq!(parsed.len(), children.len()),
                _ => panic!("wrong kind"),
            }
            // Truncations never panic.
            for cut in 0..bytes.len() {
                assert!(parse_page(4, hashed, &bytes[..cut]).is_err());
            }
        }
    }

    /// Equivalence oracle for the commit path's batched tree maintenance:
    /// a map driven by [`LocationMap::apply_batch`] +
    /// [`rehash_root_batched`] must be bit-identical — root digest and
    /// every proof path — to one driven by per-op [`LocationMap::set`]/
    /// [`LocationMap::remove`] with the incremental (lazy, per-path)
    /// [`Node::proof_hash`] recursion, across random interleavings of
    /// inserts, updates, removes, and cleaner-style relocations.
    mod batched_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(proptest::test_runner::Config {
                cases: 32,
                ..Default::default()
            })]
            #[test]
            fn batched_rehash_matches_incremental_oracle(
                rounds in proptest::collection::vec(
                    proptest::collection::vec((0u64..600u64, 0u8..4u8), 1..24),
                    1..8,
                ),
            ) {
                let mut inc = LocationMap::new(4, true);
                let mut bat = LocationMap::new(4, true);
                // Current mapping (for relocations) and a fresh-tag counter.
                let mut live: HashMap<u64, Location> = HashMap::new();
                let mut tag = 0u32;
                let mut touched: Vec<u64> = Vec::new();
                for round in rounds {
                    // At most one op per id per round — the commit path's
                    // contract (its op map is keyed by id).
                    let mut seen = std::collections::HashSet::new();
                    let mut ops: Vec<(ChunkId, Option<Location>)> = Vec::new();
                    for (id, kind) in round {
                        if !seen.insert(id) {
                            continue;
                        }
                        let op = match (kind, live.get(&id)) {
                            (0, _) => None,
                            // Cleaner-style relocation: new position, same
                            // record hash — must leave the root unchanged.
                            (3, Some(l)) => {
                                tag += 1;
                                Some(Location {
                                    seg: SegmentId(tag),
                                    off: tag,
                                    ..*l
                                })
                            }
                            _ => {
                                tag += 1;
                                Some(loc(tag))
                            }
                        };
                        ops.push((ChunkId(id), op));
                    }
                    let inc_old: Vec<Option<Location>> = ops
                        .iter()
                        .map(|(id, op)| match op {
                            Some(l) => inc.set(*id, *l),
                            None => inc.remove(*id),
                        })
                        .collect();
                    let bat_old = bat.apply_batch(&ops);
                    prop_assert_eq!(&inc_old, &bat_old);
                    for (id, op) in &ops {
                        touched.push(id.0);
                        match op {
                            Some(l) => live.insert(id.0, *l),
                            None => live.remove(&id.0),
                        };
                    }

                    let (inc_root, inc_depth) = inc.freeze();
                    let (bat_root, bat_depth) = bat.freeze();
                    prop_assert_eq!(inc_depth, bat_depth);
                    // One bottom-up batched pass vs the lazy recursion.
                    let batched = rehash_root_batched(&bat_root);
                    prop_assert_eq!(inc_root.proof_hash(), batched);
                    // Proof paths bit-identical for every id ever touched,
                    // plus absent and beyond-capacity probes.
                    for id in touched.iter().copied().chain([599, 100_000]) {
                        prop_assert_eq!(
                            proof_path_in_root(&inc_root, inc_depth, 4, ChunkId(id)),
                            proof_path_in_root(&bat_root, bat_depth, 4, ChunkId(id)),
                            "proof path diverged for id {}",
                            id
                        );
                    }
                }
            }
        }
    }
}
