//! The public `ChunkStore`: per-batch staging, group commits, checkpoints,
//! snapshots.
//!
//! See the crate docs for the big picture. This module owns the write path:
//!
//! * operations (`write`, `deallocate`) stage into a [`WriteBatch`] — each
//!   transaction gets its own, so staging takes no shared lock (the legacy
//!   single-handle API stages into a store-owned default batch);
//! * `commit_batch` seals the batch's chunk records *outside* the store
//!   lock, then appends them plus a chain-authenticated commit record to the
//!   log under a short append lock (splitting very large batches into
//!   several chained commit records that still become durable atomically,
//!   because recovery only applies commits the anchor's `last_seq` covers);
//! * a *durable* commit then enters the group-commit coordinator: one
//!   leader syncs the log, advances the trusted anchor, and bumps the
//!   one-way counter for every commit record appended so far, waking the
//!   followers its anchor covered. Recovery is unchanged by grouping — a
//!   group is just consecutive chained commit records under one anchor;
//! * a *nondurable* commit only flushes and is discarded by recovery until
//!   a later durable commit covers it;
//! * the residual log is checkpointed when it exceeds the configured
//!   threshold, and the cleaner runs when free space runs out while
//!   utilization is below the configured maximum (§3.2.1).

use crate::anchor::{AnchorState, AnchorStore};
use crate::cleaner;
use crate::config::{ChunkStoreConfig, SecurityMode};
use crate::crypto_ctx::CryptoCtx;
use crate::error::{ChunkStoreError, Result};
use crate::ids::{ChunkId, SegmentId};
use crate::layout::{
    decode_chunk_payload, encode_chunk_payload, CommitPayload, RecordKind, LOCATION_LEN,
};
use crate::maintenance::{self, MaintShared, PassResult};
use crate::map::{diff_roots, Location, LocationMap};
use crate::proof::{self, BookmarkOutcome, ProofBookmark, Proven};
use crate::recovery;
use crate::segment::{self, SegmentManager};
use crate::snapshot::{SnapCore, Snapshot, SnapshotDiff};
use crate::stats::{add, SharedStats, Stats, StatsSnapshot};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use tdb_core::Durability;
use tdb_crypto::Digest;
use tdb_obs::{trace, watchdog, Stopwatch, TraceKind, TraceLayer};
use tdb_platform::{OneWayCounter, SecretStore, UntrustedStore};

/// Staged, uncommitted operations. `Some(bytes)` is a write, `None` a
/// deallocation; last operation per id wins.
#[derive(Default)]
pub(crate) struct Batch {
    pub(crate) ops: BTreeMap<u64, Option<Vec<u8>>>,
    pub(crate) allocated: Vec<u64>,
}

/// A chunk record sealed ahead of the log append — encoding, encryption,
/// and hashing all happen outside the store lock ([`CryptoCtx`] is
/// internally synchronized), so concurrent committers only serialize on
/// the short append itself. Writes reference ranges of the batch's seal
/// arena (one shared buffer per commit) instead of owning a vector each.
enum SealedOp {
    Write {
        id: ChunkId,
        range: std::ops::Range<usize>,
        hash: Digest,
    },
    Dealloc(ChunkId),
}

/// Accumulated phase laps for one (sampled) commit.
struct CommitLap {
    sw: Stopwatch,
    ser_ns: u64,
    seal_ns: u64,
    append_ns: u64,
    map_ns: u64,
}

impl CommitLap {
    fn new(sampled: bool) -> CommitLap {
        CommitLap {
            sw: if sampled {
                Stopwatch::start()
            } else {
                Stopwatch::inert()
            },
            ser_ns: 0,
            seal_ns: 0,
            append_ns: 0,
            map_ns: 0,
        }
    }
}

/// Which phase lane an anchor round's sync/anchor/counter laps land in.
/// Rounds that complete a user commit (group leaders, empty-durable
/// barriers) are commit phases; rounds run by checkpoints and cleaner
/// passes are maintenance work and must not pollute the commit
/// histograms (they used to — see `maint.*` in [`crate::stats::Phases`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum AnchorLane {
    Commit,
    Maintenance,
}

/// Everything behind the store's state mutex.
pub(crate) struct Inner {
    pub(crate) cfg: ChunkStoreConfig,
    pub(crate) ctx: Arc<CryptoCtx>,
    pub(crate) counter: Arc<dyn OneWayCounter>,
    pub(crate) untrusted: Arc<dyn UntrustedStore>,
    pub(crate) segs: SegmentManager,
    pub(crate) map: LocationMap,
    pub(crate) next_id: u64,
    pub(crate) free_ids: BTreeSet<u64>,
    /// Sequence of the last appended commit.
    pub(crate) commit_seq: u64,
    /// Chain value of the last appended commit.
    pub(crate) chain: Digest,
    /// Commit sequence at the residual-log start.
    pub(crate) base_seq: u64,
    /// Chain value at the residual-log start.
    pub(crate) chain_base: Digest,
    pub(crate) residual_start: (SegmentId, u32),
    pub(crate) residual_segments: HashSet<SegmentId>,
    pub(crate) residual_bytes: u64,
    pub(crate) anchor_seq: u64,
    pub(crate) counter_value: u64,
    /// Map root as of the last checkpoint — what anchors reference.
    pub(crate) checkpointed_root: (Location, u32),
    /// Data extents that become dead at the next anchor write (the §3.2.2
    /// deferred-reclamation rule for nondurable commits falls out of this:
    /// decrements wait for the anchor that makes their supersession
    /// recoverable).
    pub(crate) pending_dec: Vec<Location>,
    pub(crate) snapshots: Vec<Weak<SnapCore>>,
    pub(crate) stats: SharedStats,
    /// `Some` when this handle came from `open` (crash recovery ran).
    pub(crate) recovery: Option<recovery::RecoveryReport>,
    /// Segments handed to a group leader's out-of-lock sync that has not
    /// completed yet. An anchor round running under the store lock must
    /// sync these too — it cannot assume the in-flight sync finished.
    pub(crate) sync_inflight: BTreeSet<u32>,
    /// Serializes the anchor-write + counter-bump pair across the in-lock
    /// and out-of-lock anchor paths (leaf lock: taken with the store lock
    /// held, never the reverse).
    pub(crate) anchor_io: Arc<Mutex<()>>,
    /// An incremental cleaning pass is in flight (its driver holds a
    /// `CleanPlan` and will re-take this lock for the next slice).
    /// Serializes passes so two never free each other's victims.
    pub(crate) pass_active: bool,
}

impl Inner {
    pub(crate) fn max_chunk_size(&self) -> usize {
        (self.cfg.segment_size / 4) as usize
    }

    fn max_ops_per_commit(&self) -> usize {
        // A commit record must fit comfortably in one segment.
        let budget = (self.cfg.segment_size / 2) as usize;
        (budget / (8 + LOCATION_LEN)).max(8)
    }

    /// Allocation check against committed state overlaid with `staged`
    /// operations. Ids handed out by `allocate_into` are globally visible
    /// (they left the free pool), so every batch agrees on them.
    fn is_allocated_with(&self, staged: &Batch, id: ChunkId) -> bool {
        match staged.ops.get(&id.0) {
            Some(Some(_)) => return true,
            Some(None) => return false,
            None => {}
        }
        id.0 < self.next_id && !self.free_ids.contains(&id.0)
    }

    pub(crate) fn allocate_into(&mut self, staged: &mut Batch) -> ChunkId {
        let id = match self.free_ids.pop_first() {
            Some(id) => id,
            None => {
                let id = self.next_id;
                self.next_id += 1;
                id
            }
        };
        staged.allocated.push(id);
        ChunkId(id)
    }

    pub(crate) fn stage_write(
        &mut self,
        staged: &mut Batch,
        id: ChunkId,
        data: &[u8],
    ) -> Result<()> {
        if !self.is_allocated_with(staged, id) {
            return Err(ChunkStoreError::NotAllocated(id));
        }
        if data.len() > self.max_chunk_size() {
            return Err(ChunkStoreError::ChunkTooLarge {
                size: data.len(),
                max: self.max_chunk_size(),
            });
        }
        staged.ops.insert(id.0, Some(data.to_vec()));
        Ok(())
    }

    pub(crate) fn stage_dealloc(&mut self, staged: &mut Batch, id: ChunkId) -> Result<()> {
        if !self.is_allocated_with(staged, id) {
            return Err(ChunkStoreError::NotAllocated(id));
        }
        staged.ops.insert(id.0, None);
        Ok(())
    }

    pub(crate) fn read_with(&mut self, staged: &Batch, id: ChunkId) -> Result<Vec<u8>> {
        match staged.ops.get(&id.0) {
            Some(Some(data)) => return Ok(data.clone()),
            Some(None) => return Err(ChunkStoreError::NotAllocated(id)),
            None => {}
        }
        let Some(loc) = self.map.get(id) else {
            return if self.is_allocated_with(staged, id) {
                Err(ChunkStoreError::NotWritten(id))
            } else {
                Err(ChunkStoreError::NotAllocated(id))
            };
        };
        add(&self.stats.chunk_reads, 1);
        let plain = self.read_verified(&loc, RecordKind::ChunkData)?;
        let (stored_id, data) = decode_chunk_payload(&plain)
            .map_err(|m| ChunkStoreError::TamperDetected(format!("chunk {id:?}: {}", m.0)))?;
        if stored_id != id {
            return Err(ChunkStoreError::TamperDetected(format!(
                "chunk {id:?}: record claims to be {stored_id:?}"
            )));
        }
        Ok(data.to_vec())
    }

    /// Read a record's payload, verify its hash against `loc`, decrypt.
    pub(crate) fn read_verified(&self, loc: &Location, expect: RecordKind) -> Result<Vec<u8>> {
        let stored = self.segs.read_record(loc, expect)?;
        if self.ctx.verifies_hashes() && !CryptoCtx::tags_equal(&self.ctx.hash(&stored), &loc.hash)
        {
            return Err(ChunkStoreError::TamperDetected(format!(
                "hash mismatch for record at {loc:?}"
            )));
        }
        self.ctx.open(&stored)
    }

    /// Drop a batch's staged operations and return its allocated ids to
    /// the free pool (they were never committed, or `allocated` would have
    /// been cleared).
    fn free_batch(&mut self, staged: &mut Batch) {
        staged.ops.clear();
        for id in std::mem::take(&mut staged.allocated) {
            self.free_ids.insert(id);
        }
    }

    /// Append pre-sealed chunk records plus chained commit record(s) to the
    /// log tail. The in-memory map and free list are updated only *after*
    /// each group's commit record lands, so a failed append leaves the
    /// committed state untouched (the orphaned chunk records are dead bytes
    /// for the cleaner). `consumed` counts fully committed ops: on error
    /// the caller may retry with the same arguments (after freeing space)
    /// and the append resumes at the first uncommitted group. Returns the
    /// sequence of the last commit record — the caller's ticket into the
    /// group-commit coordinator.
    fn append_sealed(
        &mut self,
        sealed_ops: &[SealedOp],
        arena: &[u8],
        durable: bool,
        lap: &mut CommitLap,
        consumed: &mut usize,
    ) -> Result<u64> {
        // Rollback for a failed half-appended group: the appended chunk
        // records were counted live but no commit record covers them.
        fn unwind(inner: &mut Inner, appended: &[(ChunkId, Location)]) {
            for (_, loc) in appended {
                inner.segs.sub_live(loc.seg, loc.len as u64);
            }
            for s in inner.segs.drain_entered() {
                inner.residual_segments.insert(s);
            }
        }

        let max_ops = self.max_ops_per_commit();
        while *consumed < sealed_ops.len() {
            let group = &sealed_ops[*consumed..(*consumed + max_ops).min(sealed_ops.len())];
            let mut writes: Vec<(ChunkId, Location)> = Vec::new();
            let mut deallocs: Vec<ChunkId> = Vec::new();
            for op in group {
                match op {
                    SealedOp::Write { id, range, hash } => {
                        lap.sw.lap();
                        let res = self
                            .segs
                            .append_record(RecordKind::ChunkData, &arena[range.clone()]);
                        lap.append_ns += lap.sw.lap();
                        let (seg, off, len) = match res {
                            Ok(v) => v,
                            Err(e) => {
                                unwind(self, &writes);
                                return Err(e);
                            }
                        };
                        writes.push((
                            *id,
                            Location {
                                seg,
                                off,
                                len,
                                hash: *hash,
                            },
                        ));
                    }
                    SealedOp::Dealloc(id) => deallocs.push(*id),
                }
            }
            lap.sw.lap();
            let payload = CommitPayload {
                seq: self.commit_seq + 1,
                durable,
                next_id: self.next_id,
                writes: writes.clone(),
                deallocs: deallocs.clone(),
            }
            .encode(self.ctx.verifies_hashes());
            lap.ser_ns += lap.sw.lap();
            let sealed = self.ctx.seal(&payload);
            let chain = self.ctx.chain(&self.chain, &sealed);
            lap.seal_ns += lap.sw.lap();
            // `payload || chain` framed straight into the tail buffer — no
            // intermediate concatenation vector.
            let res = self
                .segs
                .append_record_parts(RecordKind::Commit, &[&sealed, &chain]);
            lap.append_ns += lap.sw.lap();
            let (_, _, commit_len) = match res {
                Ok(v) => v,
                Err(e) => {
                    unwind(self, &writes);
                    return Err(e);
                }
            };
            // The group's commit record is in the log: apply its effects.
            // One batched descent updates the map — nodes shared by the
            // group's root-to-leaf paths are cloned and dirtied once.
            self.commit_seq += 1;
            self.chain = chain;
            lap.sw.lap();
            let mut map_ops: Vec<(ChunkId, Option<Location>)> =
                Vec::with_capacity(writes.len() + deallocs.len());
            for (id, loc) in &writes {
                map_ops.push((*id, Some(*loc)));
            }
            for id in &deallocs {
                map_ops.push((*id, None));
            }
            for prev in self.map.apply_batch(&map_ops).into_iter().flatten() {
                self.pending_dec.push(prev);
            }
            lap.map_ns += lap.sw.lap();
            for (_, loc) in &writes {
                self.residual_bytes += loc.len as u64;
            }
            for id in deallocs {
                self.free_ids.insert(id.0);
            }
            self.residual_bytes += commit_len as u64;
            *consumed += group.len();
        }
        for s in self.segs.drain_entered() {
            self.residual_segments.insert(s);
        }
        Ok(self.commit_seq)
    }

    /// Sync the log and advance the trusted anchor (+ one-way counter).
    /// Everything appended so far becomes durable and recoverable.
    /// `sampled` controls phase timing (see [`StoreCore::sample_phases`]);
    /// `lane` picks the commit vs maintenance phase histograms, so
    /// checkpoint- and cleaner-driven rounds stop leaking into the
    /// `commit.*` rows.
    pub(crate) fn durable_anchor(&mut self, sampled: bool, lane: AnchorLane) -> Result<()> {
        let mut sw = if sampled {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        let stats = self.stats.clone();
        let (sync_h, anchor_h, counter_h) = match lane {
            AnchorLane::Commit => (
                &stats.phases.sync,
                &stats.phases.anchor,
                &stats.phases.counter,
            ),
            AnchorLane::Maintenance => (
                &stats.phases.maint_sync,
                &stats.phases.maint_anchor,
                &stats.phases.maint_counter,
            ),
        };
        self.segs.sync_touched()?;
        // Cover a group leader's in-flight out-of-lock sync: this anchor's
        // `last_seq` spans those records too, so their segments must be on
        // disk before it is written (double-syncing is harmless).
        self.segs.sync_ids(&self.sync_inflight)?;
        if sw.running() {
            sync_h.record(sw.lap());
        }
        let bump_counter = self.ctx.mode() == SecurityMode::Full;
        self.anchor_seq += 1;
        if bump_counter {
            self.counter_value += 1;
        }
        let free_ids: Vec<u64> = self
            .free_ids
            .iter()
            .take(self.cfg.free_list_cap)
            .copied()
            .collect();
        let state = AnchorState {
            anchor_seq: self.anchor_seq,
            segment_size: self.cfg.segment_size,
            map_fanout: self.cfg.map_fanout as u32,
            map_root: self.checkpointed_root.0,
            map_depth: self.checkpointed_root.1,
            next_id: self.next_id,
            free_ids,
            residual_seg: self.residual_start.0,
            residual_off: self.residual_start.1,
            base_seq: self.base_seq,
            chain_base: self.chain_base,
            last_seq: self.commit_seq,
            last_chain: self.chain,
            counter_value: self.counter_value,
        };
        let io_result: Result<()> = (|| {
            let io = self.anchor_io.clone();
            let _io = io.lock();
            AnchorStore::new(&*self.untrusted).write(&self.ctx, &state)?;
            add(&self.stats.anchor_writes, 1);
            if sw.running() {
                anchor_h.record(sw.lap());
            }
            if bump_counter {
                // Anchor first, then counter: a crash between the two leaves
                // `anchor == hw + 1`, which `open` repairs by bumping the
                // counter. The reverse order would make a crash window look
                // like a replay attack.
                self.counter.increment()?;
                add(&self.stats.counter_increments, 1);
                if sw.running() {
                    counter_h.record(sw.lap());
                }
            }
            Ok(())
        })();
        if let Err(e) = io_result {
            // Roll back the speculative advance: a retried anchor must not
            // drift past the hardware counter (recovery only repairs a
            // `+1` gap; repeated failed rounds would otherwise read as a
            // replay attack).
            self.anchor_seq -= 1;
            if bump_counter {
                self.counter_value -= 1;
            }
            return Err(e);
        }
        trace::emit(
            TraceLayer::Chunk,
            TraceKind::AnchorRound,
            0,
            self.anchor_seq,
            self.commit_seq,
        );
        if bump_counter {
            trace::emit(
                TraceLayer::Chunk,
                TraceKind::CounterInc,
                0,
                self.counter_value,
                0,
            );
        }
        // Everything superseded before this anchor is now truly dead.
        for loc in std::mem::take(&mut self.pending_dec) {
            self.segs.sub_live(loc.seg, loc.len as u64);
        }
        Ok(())
    }

    /// Snapshot everything an anchor round needs so the group-commit
    /// leader can run the round's slow half (data-segment sync, anchor
    /// write, counter bump) without holding the store lock. Appenders
    /// proceed concurrently; their records land after `covered` and are
    /// simply not covered by this anchor. Anchor-state fields are captured
    /// here, under the lock, so they are mutually consistent.
    fn prepare_anchor(&mut self) -> Result<PreparedAnchor> {
        // The tail buffer is handed over unwritten: the leader writes and
        // syncs it outside the lock while appenders fill a fresh buffer —
        // seal/append of commit n+1 overlaps the sync of commit n.
        let (files, tail) = self.segs.take_touched_deferred()?;
        self.sync_inflight.extend(files.iter().map(|(s, _)| *s));
        // Freeze the map root so the leader can rehash the dirty Merkle
        // paths in one batched bottom-up pass outside the lock. The memos
        // install into the shared nodes, so later proof minting (and the
        // next freeze) finds them ready-made.
        let frozen_root = if self.cfg.eager_proof_rehash && self.ctx.verifies_hashes() {
            Some(self.map.freeze().0)
        } else {
            None
        };
        self.anchor_seq += 1;
        if self.ctx.mode() == SecurityMode::Full {
            self.counter_value += 1;
        }
        let free_ids: Vec<u64> = self
            .free_ids
            .iter()
            .take(self.cfg.free_list_cap)
            .copied()
            .collect();
        let state = AnchorState {
            anchor_seq: self.anchor_seq,
            segment_size: self.cfg.segment_size,
            map_fanout: self.cfg.map_fanout as u32,
            map_root: self.checkpointed_root.0,
            map_depth: self.checkpointed_root.1,
            next_id: self.next_id,
            free_ids,
            residual_seg: self.residual_start.0,
            residual_off: self.residual_start.1,
            base_seq: self.base_seq,
            chain_base: self.chain_base,
            last_seq: self.commit_seq,
            last_chain: self.chain,
            counter_value: self.counter_value,
        };
        Ok(PreparedAnchor {
            state,
            files,
            tail,
            frozen_root,
            pending_dec: std::mem::take(&mut self.pending_dec),
            untrusted: self.untrusted.clone(),
            counter: self.counter.clone(),
            anchor_io: self.anchor_io.clone(),
            bump_counter: self.ctx.mode() == SecurityMode::Full,
            covered: self.commit_seq,
        })
    }

    /// Write the dirty location-map pages, advance the anchor to the new
    /// root, and reset the residual log.
    pub(crate) fn do_checkpoint(&mut self) -> Result<()> {
        let prev_mode = self.segs.set_maintenance(true);
        let r = self.do_checkpoint_inner();
        self.segs.set_maintenance(prev_mode);
        r
    }

    fn do_checkpoint_inner(&mut self) -> Result<()> {
        let mut sw = Stopwatch::start();
        trace::emit(
            TraceLayer::Maint,
            TraceKind::CheckpointBegin,
            0,
            self.residual_bytes,
            0,
        );
        let Inner {
            ref mut map,
            ref mut segs,
            ref ctx,
            ..
        } = *self;
        let root_loc = map.checkpoint(&mut |bytes| {
            let sealed = ctx.seal(bytes);
            let (seg, off, len) = segs.append_record(RecordKind::MapPage, &sealed)?;
            Ok(Location {
                seg,
                off,
                len,
                hash: ctx.hash(&sealed),
            })
        })?;
        self.checkpointed_root = (root_loc, self.map.depth());
        self.pending_dec.extend(self.map.drain_superseded());
        for s in self.segs.drain_entered() {
            self.residual_segments.insert(s);
        }
        self.segs.flush()?;
        self.residual_start = self.segs.tail_pos();
        self.chain_base = self.chain;
        self.base_seq = self.commit_seq;
        self.durable_anchor(true, AnchorLane::Maintenance)?;
        self.residual_segments.clear();
        self.residual_segments.insert(self.segs.tail_pos().0);
        self.residual_bytes = 0;
        add(&self.stats.checkpoints, 1);
        self.segs.drop_excess_free(self.cfg.free_segment_reserve)?;
        trace::emit(
            TraceLayer::Maint,
            TraceKind::CheckpointEnd,
            0,
            self.commit_seq,
            self.segs.free_count() as u64,
        );
        if sw.running() {
            self.stats.phases.checkpoint.record(sw.lap());
        }
        Ok(())
    }

    /// Post-durable-commit housekeeping: checkpoint when the residual log
    /// is long; clean when free space ran out but garbage exists. The
    /// outcome distinguishes "nothing left to reclaim" from "gave up with
    /// the store still out of free segments" — a caller on the
    /// out-of-space backpressure path must not read the latter as success.
    pub(crate) fn maintain(&mut self) -> Result<MaintainOutcome> {
        let mut out = MaintainOutcome {
            freed: 0,
            gave_up: false,
        };
        if self.residual_bytes >= self.cfg.checkpoint_threshold {
            self.do_checkpoint()?;
        }
        // Clean until a free segment exists (or there is provably nothing
        // to reclaim). A single bounded pass can free less than its own
        // checkpoint traffic consumed on map-heavy workloads, which would
        // grow the database without bound — so "a pass freed nothing" and
        // "no garbage" must part ways here: the former ends the round as
        // `gave_up`, not as success.
        let mut passes = 0;
        let mut forced_checkpoint = false;
        while self.segs.free_count() <= self.cfg.maintenance_reserve()
            && self.segs.utilization() <= self.cfg.max_utilization
        {
            if passes >= 16 {
                out.gave_up = true;
                add(&self.stats.maintenance_gave_up, 1);
                break;
            }
            passes += 1;
            match cleaner::clean_pass(self)? {
                cleaner::CleanOutcome::NoGarbage => {
                    // Every in-use segment may simply still be residual
                    // (no checkpoint since the garbage was made). Under
                    // genuine space pressure, shrink the residual set once
                    // and retry before concluding there is no garbage.
                    if !forced_checkpoint && self.residual_segments.len() > 1 {
                        forced_checkpoint = true;
                        self.do_checkpoint()?;
                        continue;
                    }
                    break;
                }
                cleaner::CleanOutcome::Freed(0) => {
                    // Victims existed but none could be freed (pinned by a
                    // snapshot, or re-used by the pass's own checkpoint);
                    // an immediate retry would pick the same victims.
                    out.gave_up = true;
                    add(&self.stats.maintenance_gave_up, 1);
                    break;
                }
                cleaner::CleanOutcome::Freed(n) => out.freed += n,
            }
        }
        Ok(out)
    }

    pub(crate) fn prune_snapshots(&mut self) {
        self.snapshots.retain(|w| w.strong_count() > 0);
    }

    fn take_snapshot(&mut self) -> Snapshot {
        self.prune_snapshots();
        let (root, depth) = self.map.freeze();
        let core = Arc::new(SnapCore {
            root,
            depth,
            fanout: self.cfg.map_fanout,
            seq: self.commit_seq,
            counter_value: self.counter_value,
        });
        self.snapshots.push(Arc::downgrade(&core));
        Snapshot { core }
    }
}

/// What [`Inner::maintain`] accomplished.
pub(crate) struct MaintainOutcome {
    /// Segments freed by cleaning passes this round.
    pub(crate) freed: usize,
    /// The round ended with `free_count() == 0` even though garbage
    /// existed (victims pinned, or the pass cap was hit).
    pub(crate) gave_up: bool,
}

/// Entropy for the IV stream: wall-clock nanoseconds. Combined with the
/// one-way counter so even clock rollback cannot reproduce an IV stream
/// that encrypts *different* data (the DRBG mixes the key as well).
pub(crate) fn iv_salt(counter: &dyn OneWayCounter) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ counter.read().unwrap_or(0).rotate_left(32)
}

/// An anchor round snapshotted under the store lock, to be completed by
/// the group-commit leader outside it (see [`Inner::prepare_anchor`]).
struct PreparedAnchor {
    state: AnchorState,
    files: Vec<(u32, Arc<dyn tdb_platform::RandomAccessFile>)>,
    /// Unwritten tail-buffer range for the leader's out-of-lock write
    /// (the manager keeps an in-flight copy until `finish_tail_flush`).
    tail: Option<segment::TailFlush>,
    /// Frozen map root for the out-of-lock batched Merkle rehash (`None`
    /// when hashing is off or `eager_proof_rehash` is disabled).
    frozen_root: Option<Arc<crate::map::Node>>,
    pending_dec: Vec<Location>,
    untrusted: Arc<dyn UntrustedStore>,
    counter: Arc<dyn OneWayCounter>,
    anchor_io: Arc<Mutex<()>>,
    bump_counter: bool,
    covered: u64,
}

/// Group-commit coordinator state (guarded by [`StoreCore::group`]).
///
/// Durable committers register their commit sequence and wait until
/// `durable_seq` covers it. Whoever finds no leader active becomes the
/// leader: it drops this lock, takes the store lock, and runs one
/// sync/anchor/counter round, which makes *every* commit record appended
/// so far durable (durability is by anchor coverage, `last_seq`). It then
/// publishes the covered sequence and wakes the followers. Lock ordering:
/// the group lock and the store lock are never held together.
#[derive(Default)]
struct GroupState {
    /// A leader is between "decided to anchor" and "published its result".
    leader_active: bool,
    /// Commit sequences of committers currently waiting for durability.
    waiters: Vec<u64>,
}

/// State shared by the store handle, every outstanding [`WriteBatch`],
/// and the background maintenance thread.
pub(crate) struct StoreCore {
    pub(crate) inner: Mutex<Inner>,
    ctx: Arc<CryptoCtx>,
    pub(crate) stats: SharedStats,
    /// Commits until the next phase-attributed (fully timed) commit; see
    /// [`tdb_obs::phase_sample_every`].
    phase_tick: AtomicU64,
    /// Highest commit sequence covered by a written anchor. Outside the
    /// group mutex so committers can check coverage (and spin briefly on
    /// an in-flight anchor round) without any lock traffic.
    durable_seq: AtomicU64,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    /// Handshake with the background maintenance thread (kick, stall,
    /// shutdown). Present even with `background_maintenance` off — the
    /// thread is simply never spawned and commits maintain inline.
    pub(crate) maint: MaintShared,
    /// Frozen map root awaiting a batched Merkle memo pass, handed to the
    /// maintenance thread by the group-commit leader. Only the latest
    /// root matters — its memo pass covers every earlier round's dirty
    /// paths too (shared nodes), so consecutive rounds coalesce and hot
    /// leaves are hashed once per batch instead of once per commit.
    pub(crate) rehash_pending: Mutex<Option<Arc<crate::map::Node>>>,
    /// Name under which this store reports in diagnostic dumps
    /// (`chunk{N}` by default; shards get `shard{k}` labels).
    diag_label: Mutex<String>,
    /// Strong reference keeping the dump provider registered for the
    /// store's lifetime; the diag registry only holds a `Weak`.
    diag_keeper: Mutex<Option<Arc<tdb_obs::diag::DiagFn>>>,
}

impl StoreCore {
    /// Whether this commit gets full phase attribution. The detailed laps
    /// cost several clock reads per record — too much for every commit — so
    /// only every [`tdb_obs::phase_sample_every`]-th commit is timed.
    /// Everything a sampled commit records (including `commit.total` and the
    /// `durable_anchor` phases when it leads its own group) comes from the
    /// same commit, so per-commit phase samples still sum to their
    /// `commit.total` sample in single-threaded runs.
    fn sample_phases(&self) -> bool {
        if !tdb_obs::enabled() {
            return false;
        }
        let tick = self.phase_tick.fetch_add(1, Ordering::Relaxed) + 1;
        tick.is_multiple_of(tdb_obs::phase_sample_every())
    }

    /// Seal a batch's staged operations outside any store lock. Every
    /// write seals straight into one shared arena (no per-chunk ciphertext
    /// vector), and the record hashes for the whole batch are computed in
    /// one multi-lane SHA-256 pass over the arena slices.
    fn seal_ops(
        &self,
        ops: BTreeMap<u64, Option<Vec<u8>>>,
        lap: &mut CommitLap,
    ) -> (Vec<SealedOp>, Vec<u8>) {
        let mut arena: Vec<u8> = Vec::new();
        let mut sealed_ops = Vec::with_capacity(ops.len());
        for (raw_id, op) in ops {
            let id = ChunkId(raw_id);
            match op {
                Some(data) => {
                    lap.sw.lap();
                    let payload = encode_chunk_payload(id, &data);
                    lap.ser_ns += lap.sw.lap();
                    let start = arena.len();
                    let n = self.ctx.seal_into(&payload, &mut arena);
                    lap.seal_ns += lap.sw.lap();
                    sealed_ops.push(SealedOp::Write {
                        id,
                        range: start..start + n,
                        hash: crate::crypto_ctx::ZERO_DIGEST,
                    });
                }
                None => sealed_ops.push(SealedOp::Dealloc(id)),
            }
        }
        if self.ctx.verifies_hashes() {
            lap.sw.lap();
            let slices: Vec<&[u8]> = sealed_ops
                .iter()
                .filter_map(|op| match op {
                    SealedOp::Write { range, .. } => Some(&arena[range.clone()]),
                    SealedOp::Dealloc(_) => None,
                })
                .collect();
            let mut digests = tdb_crypto::sha256_batch(&slices).into_iter();
            for op in &mut sealed_ops {
                if let SealedOp::Write { hash, .. } = op {
                    *hash = digests.next().expect("one digest per sealed write");
                }
            }
            lap.seal_ns += lap.sw.lap();
        }
        (sealed_ops, arena)
    }

    /// Seal and append `ops` as one atomic commit; returns the ticket for
    /// [`StoreCore::wait_ticket`]. For nondurable commits the log is
    /// flushed (not synced) before returning, matching §3.2.2.
    fn append_ops(
        &self,
        ops: BTreeMap<u64, Option<Vec<u8>>>,
        durable: bool,
    ) -> Result<CommitTicket> {
        let sampled = self.sample_phases();
        let total = if sampled {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        if ops.is_empty() {
            return Ok(CommitTicket {
                seq: 0,
                empty: true,
                durable,
                sampled,
                total,
            });
        }
        add(&self.stats.commits, 1);
        if durable {
            add(&self.stats.durable_commits, 1);
        }
        trace::emit(
            TraceLayer::Chunk,
            TraceKind::CommitBegin,
            0,
            ops.len() as u64,
            durable as u64,
        );
        let mut lap = CommitLap::new(sampled);
        let (sealed_ops, arena) = self.seal_ops(ops, &mut lap);
        let mut consumed = 0usize;
        let seq = loop {
            let res = {
                let mut inner = self.inner.lock();
                inner
                    .append_sealed(&sealed_ops, &arena, durable, &mut lap, &mut consumed)
                    .and_then(|seq| {
                        if !durable {
                            inner.segs.flush()?;
                        }
                        Ok(seq)
                    })
            };
            match res {
                Ok(seq) => break seq,
                // Out of segments: block until maintenance frees one, then
                // resume the append at the first uncommitted group. Only a
                // round that says "nothing reclaimable" lets the error out.
                Err(e @ ChunkStoreError::OutOfSpace { .. }) => {
                    if !self.stall_for_space()? {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        };
        trace::emit(
            TraceLayer::Chunk,
            TraceKind::CommitEnd,
            seq,
            seq,
            durable as u64,
        );
        if lap.sw.running() {
            self.stats.phases.serialize.record(lap.ser_ns);
            self.stats.phases.seal.record(lap.seal_ns);
            self.stats.phases.append.record(lap.append_ns);
            self.stats.phases.map.record(lap.map_ns);
        }
        Ok(CommitTicket {
            seq,
            empty: false,
            durable,
            sampled,
            total,
        })
    }

    /// Complete a commit: no-op for nondurable tickets; group-commit wait
    /// (leading an anchor round if nobody else is) for durable ones.
    fn wait_ticket(&self, ticket: CommitTicket) -> Result<()> {
        let CommitTicket {
            seq,
            empty,
            durable,
            sampled,
            mut total,
        } = ticket;
        if !durable {
            return Ok(());
        }
        if empty {
            // Legacy semantics: an empty durable commit still forces a
            // sync/anchor/counter round (callers use it as a barrier).
            let covered = {
                let mut inner = self.inner.lock();
                inner.durable_anchor(sampled, AnchorLane::Commit)?;
                inner.commit_seq
            };
            self.publish_durable(covered);
            self.after_commit_maintenance()?;
            if total.running() {
                self.stats.phases.commit_total.record(total.lap());
            }
            return Ok(());
        }
        self.wait_durable_seq(seq, sampled)?;
        if total.running() {
            self.stats.phases.commit_total.record(total.lap());
        }
        Ok(())
    }

    /// Block until an anchor covers `my_seq`, leading the anchor round if
    /// no leader is active. See [`GroupState`] for the protocol.
    fn wait_durable_seq(&self, my_seq: u64, sampled: bool) -> Result<()> {
        let obs_on = tdb_obs::enabled();
        let mut wait_sw = if obs_on {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        // Lock-free fast path: a concurrent leader that locked the store
        // after our append has already anchored past us.
        if self.durable_seq.load(Ordering::Acquire) >= my_seq {
            if wait_sw.running() {
                self.stats.phases.group_wait.record(wait_sw.lap());
            }
            return Ok(());
        }
        // Brief spin before any blocking: on a fast store (memory, warm
        // page cache) an in-flight anchor round completes in well under the
        // cost of a condvar sleep/wake, so parking immediately would turn
        // group commit into a context-switch tax. The budget is small
        // enough that a real disk sync falls through to the sleep path.
        for _ in 0..500 {
            std::hint::spin_loop();
            if self.durable_seq.load(Ordering::Acquire) >= my_seq {
                if wait_sw.running() {
                    self.stats.phases.group_wait.record(wait_sw.lap());
                }
                return Ok(());
            }
        }
        fn unregister(waiters: &mut Vec<u64>, seq: u64) {
            if let Some(at) = waiters.iter().position(|s| *s == seq) {
                waiters.swap_remove(at);
            }
        }
        // Slow path: this commit will park on the group condvar (or lead an
        // anchor round itself) — exactly the window where a lost wakeup or a
        // wedged sync manifests as a hang, so it is watchdog-registered.
        let _op = watchdog::op_begin(watchdog::OpKind::Commit, my_seq);
        let mut announced_follower = false;
        let mut g = self.group.lock();
        g.waiters.push(my_seq);
        loop {
            let durable = self.durable_seq.load(Ordering::Acquire);
            if durable >= my_seq {
                // A leader's anchor covered us (group follower).
                unregister(&mut g.waiters, my_seq);
                drop(g);
                trace::emit(TraceLayer::Chunk, TraceKind::GroupWake, my_seq, durable, 0);
                if wait_sw.running() {
                    self.stats.phases.group_wait.record(wait_sw.lap());
                }
                return Ok(());
            }
            if !g.leader_active {
                // Become the leader: anchor once for everyone appended so
                // far. The group lock is dropped across the anchor round so
                // new committers can append and enqueue meanwhile.
                g.leader_active = true;
                drop(g);
                trace::emit(TraceLayer::Chunk, TraceKind::GroupLeader, my_seq, my_seq, 0);
                let anchored: Result<u64> = self.leader_anchor_round(sampled);
                let mut g = self.group.lock();
                g.leader_active = false;
                let covered = match anchored {
                    Ok(covered) => covered,
                    Err(e) => {
                        // Our round failed; let a follower try to lead.
                        unregister(&mut g.waiters, my_seq);
                        self.group_cv.notify_all();
                        return Err(e);
                    }
                };
                // Group size = commit records this anchor newly covered
                // (commit_seq advances by one per commit), which counts
                // spin-path committers that never registered as waiters.
                let prev = self.durable_seq.fetch_max(covered, Ordering::AcqRel);
                let group_size = covered.saturating_sub(prev);
                unregister(&mut g.waiters, my_seq);
                self.group_cv.notify_all();
                drop(g);
                trace::emit(
                    TraceLayer::Chunk,
                    TraceKind::GroupPublish,
                    my_seq,
                    covered,
                    group_size,
                );
                if obs_on {
                    self.stats.phases.group_size.record(group_size.max(1));
                    if wait_sw.running() {
                        self.stats.phases.group_wait.record(wait_sw.lap());
                    }
                }
                // Housekeeping (checkpoint / cleaner) runs outside the
                // group window so followers wake at durability, not after
                // maintenance, and new appends overlap with it. With the
                // maintenance thread running this is only a watermark
                // check and a kick.
                return self.after_commit_maintenance();
            }
            // Only a commit that actually parks behind another leader is a
            // follower worth tracing — the common uncontended commit goes
            // straight to leading and stays two events (leader, publish).
            if !announced_follower {
                announced_follower = true;
                trace::emit(
                    TraceLayer::Chunk,
                    TraceKind::GroupFollower,
                    my_seq,
                    my_seq,
                    0,
                );
            }
            self.group_cv.wait(&mut g);
        }
    }

    /// One overlapped anchor round: snapshot under the store lock, then
    /// sync the data segments and write the anchor *outside* it, so
    /// concurrent committers keep appending — and pile into the next
    /// group — while this round's sync is in flight. Rounds are serialized
    /// by `leader_active`; the in-lock anchor paths coexist via
    /// `Inner::sync_inflight` and the `anchor_io` leaf lock.
    fn leader_anchor_round(&self, sampled: bool) -> Result<u64> {
        let mut sw = if sampled {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        let prep = {
            let mut inner = self.inner.lock();
            inner.prepare_anchor()
        }?;
        // Deferred tail write, then sync — both outside the store lock, so
        // concurrent committers seal and append into the fresh tail buffer
        // while this round's bytes travel to disk. If an in-lock flush got
        // there first it wrote the identical bytes at the same offset;
        // repeating the write is harmless.
        let synced: Result<()> = (|| {
            if let Some(tf) = &prep.tail {
                tf.file.write_at(tf.start as u64, &tf.bytes)?;
            }
            prep.files.iter().try_for_each(|(_, f)| {
                f.sync()?;
                add(&self.stats.syncs, 1);
                Ok(())
            })
        })();
        if sw.running() {
            self.stats.phases.sync.record(sw.lap());
        }
        if let Err(e) = synced {
            let mut inner = self.inner.lock();
            inner
                .segs
                .restore_touched(prep.files.iter().map(|(s, _)| *s));
            for (s, _) in &prep.files {
                inner.sync_inflight.remove(s);
            }
            // The manager still holds the in-flight tail copy; the next
            // in-lock flush rewrites it, so the bytes cannot be lost.
            inner.pending_dec.extend(prep.pending_dec);
            // Same speculative-advance rollback as the anchor-io failure
            // path below: the prepared anchor was never written.
            if inner.anchor_seq == prep.state.anchor_seq {
                inner.anchor_seq -= 1;
            }
            if prep.bump_counter {
                inner.counter_value -= 1;
            }
            return Err(e);
        }
        // Batched Merkle recomputation for the whole group: one bottom-up
        // pass over the dirty root-to-leaf paths (shared upper nodes are
        // hashed once), multi-lane SHA-256 within each level. With the
        // maintenance thread running, the pass is deferred there —
        // consecutive rounds coalesce onto the latest root, so hot leaves
        // are hashed once per batch and the leader publishes durability
        // without paying the hash pass. That only pays when another CPU
        // can actually run the pass concurrently; on a single-CPU host the
        // "background" pass can only preempt the commit path, so the
        // warm-up is skipped outright and proof minting hashes lazily
        // (the memo pass is cache-warming — correctness never depends on
        // it). Inline (against the frozen root, while followers keep
        // appending) only when there is no thread.
        if let Some(root) = &prep.frozen_root {
            if self.maint.thread_running() {
                if crate::maintenance::rehash_overlap_pays() {
                    let was_empty = self.rehash_pending.lock().replace(root.clone()).is_none();
                    if was_empty {
                        self.maint.kick_rehash();
                    }
                }
            } else {
                crate::map::rehash_root_batched(root);
                if sw.running() {
                    self.stats.phases.rehash.record(sw.lap());
                }
            }
        }
        let io_result: Result<()> = (|| {
            let _io = prep.anchor_io.lock();
            AnchorStore::new(&*prep.untrusted).write(&self.ctx, &prep.state)?;
            add(&self.stats.anchor_writes, 1);
            if sw.running() {
                self.stats.phases.anchor.record(sw.lap());
            }
            if prep.bump_counter {
                prep.counter.increment()?;
                add(&self.stats.counter_increments, 1);
                // Counter laps are recorded only here, on the success path
                // of an actual increment — an error (or a round that never
                // bumps) must not pollute the histogram with ~0 samples.
                if sw.running() {
                    self.stats.phases.counter.record(sw.lap());
                }
            }
            Ok(())
        })();
        let mut inner = self.inner.lock();
        // The tail bytes are written and synced regardless of how the
        // anchor io went: the manager's in-flight copy can be dropped.
        if let Some(tf) = &prep.tail {
            inner.segs.finish_tail_flush(tf);
        }
        for (s, _) in &prep.files {
            inner.sync_inflight.remove(s);
        }
        match io_result {
            Ok(()) => {
                trace::emit(
                    TraceLayer::Chunk,
                    TraceKind::AnchorRound,
                    0,
                    prep.state.anchor_seq,
                    prep.covered,
                );
                if prep.bump_counter {
                    trace::emit(
                        TraceLayer::Chunk,
                        TraceKind::CounterInc,
                        0,
                        prep.state.counter_value,
                        0,
                    );
                }
                // Everything superseded before this anchor is now truly
                // dead (mirrors the tail of `Inner::durable_anchor`).
                for loc in prep.pending_dec {
                    inner.segs.sub_live(loc.seg, loc.len as u64);
                }
                Ok(prep.covered)
            }
            Err(e) => {
                inner.pending_dec.extend(prep.pending_dec);
                // Undo the prepared round's speculative advance so retries
                // cannot drift past the hardware counter. `anchor_seq`
                // only rolls back if no in-lock anchor ran meanwhile —
                // a skipped sequence is harmless, a reused one is not.
                if inner.anchor_seq == prep.state.anchor_seq {
                    inner.anchor_seq -= 1;
                }
                if prep.bump_counter {
                    inner.counter_value -= 1;
                }
                Err(e)
            }
        }
    }

    /// Point-in-time health summary for diagnostic dumps. Never blocks:
    /// every lock is `try_lock`, and a held lock is reported as such —
    /// in a stall dump, *which* lock is held is itself the signal.
    pub(crate) fn diag_state(&self) -> tdb_obs::Json {
        use tdb_obs::Json;
        let mut out = Json::obj();
        out.push("label", self.diag_label.lock().clone());
        out.push("durable_seq", self.durable_seq.load(Ordering::Acquire));
        match self.inner.try_lock() {
            Some(inner) => {
                out.push("commit_seq", inner.commit_seq);
                out.push("anchor_seq", inner.anchor_seq);
                out.push("counter_value", inner.counter_value);
                out.push("free_segments", inner.segs.free_count());
                out.push("in_use_segments", inner.segs.in_use_segments().len());
                out.push("utilization", inner.segs.utilization());
                out.push("residual_bytes", inner.residual_bytes);
                out.push("residual_segments", inner.residual_segments.len());
                out.push("pending_dec", inner.pending_dec.len());
                out.push(
                    "live_snapshots",
                    inner
                        .snapshots
                        .iter()
                        .filter(|w| w.strong_count() > 0)
                        .count(),
                );
                out.push("cleaner_pass_active", inner.pass_active);
            }
            None => out.push("store_lock", "held"),
        }
        match self.group.try_lock() {
            Some(g) => {
                out.push("group_leader_active", g.leader_active);
                out.push("group_waiters", g.waiters.len());
            }
            None => out.push("group_lock", "held"),
        }
        out.push("maintenance", self.maint.diag_json());
        out
    }

    /// Post-commit housekeeping. With the maintenance thread running, the
    /// committer pays a watermark check and (at most) a kick — the
    /// checkpoint and cleaning happen off the commit path. Otherwise the
    /// legacy inline behavior: this committer maintains under the lock.
    fn after_commit_maintenance(&self) -> Result<()> {
        if self.maint.thread_running() {
            let need = {
                let inner = self.inner.lock();
                inner.residual_bytes >= inner.cfg.checkpoint_threshold
                    || (inner.segs.free_count() < inner.cfg.effective_low_free()
                        && inner.segs.utilization() <= inner.cfg.max_utilization)
            };
            if need {
                self.maint.kick();
            }
            return Ok(());
        }
        self.inner.lock().maintain().map(|_| ())
    }

    /// Commit-path backpressure: the append ran out of segments. Kick the
    /// maintenance thread and block for its progress — or, with no thread,
    /// maintain inline — and say whether the caller should retry. `false`
    /// means maintenance completed without yielding a free segment: a true
    /// out-of-space condition, not a pacing artifact.
    ///
    /// The wait is epoch-based to rule out lost wakeups (the ROADMAP's
    /// 1-CPU release hang): the progress epochs are snapshotted *before*
    /// the free-count check, and every notification advances an epoch
    /// under the same lock the snapshot and the sleep use
    /// ([`MaintShared::note_freed`] fires on every segment free, not just
    /// at round end). Progress landing between the check and the sleep
    /// therefore makes the wait return immediately. The give-up condition
    /// is structural rather than a timeout: two consecutive completed
    /// rounds that freed nothing while the store stayed out of segments.
    fn stall_for_space(&self) -> Result<bool> {
        add(&self.stats.maintenance_stalls, 1);
        let _op = tdb_obs::watchdog::op_begin(tdb_obs::watchdog::OpKind::Stall, 0);
        let mut sw = if tdb_obs::enabled() {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        trace::emit(
            TraceLayer::Chunk,
            TraceKind::StallEnter,
            0,
            self.inner.lock().segs.free_count() as u64,
            0,
        );
        trace::emit(TraceLayer::Maint, TraceKind::MaintKick, 0, 0, 0);
        let mut seen = self.maint.observe_and_kick();
        let mut waits = 0u64;
        let mut fruitless_rounds = 0u32;
        let mut idle_waits = 0u32;
        let retry = loop {
            if !seen.thread_running {
                // No thread: this committer maintains inline.
                let mut inner = self.inner.lock();
                let out = inner.maintain()?;
                break out.freed > 0 || inner.segs.free_count() > inner.cfg.maintenance_reserve();
            }
            // Check for space strictly *after* the epoch snapshot above:
            // any free or round completion since then advances an epoch,
            // so the wait below cannot sleep through it.
            // `free > reserve`: on a fixed-size log the last free segment
            // is the maintenance reserve and a retried append still could
            // not take it.
            let (free, reserve) = {
                let inner = self.inner.lock();
                (inner.segs.free_count(), inner.cfg.maintenance_reserve())
            };
            if free > reserve {
                trace::emit(
                    TraceLayer::Chunk,
                    TraceKind::StallWake,
                    0,
                    seen.free_epoch,
                    free as u64,
                );
                break true;
            }
            if fruitless_rounds >= 2 || waits >= 256 {
                // Two whole rounds reclaimed nothing and the store is
                // still out of segments (or we have waited absurdly long):
                // surface OutOfSpace instead of wedging the committer.
                trace::emit(TraceLayer::Chunk, TraceKind::StallGiveUp, 0, waits, 0);
                break false;
            }
            let next = self
                .maint
                .wait_progress(seen, std::time::Duration::from_millis(500));
            waits += 1;
            let advanced = next.rounds != seen.rounds || next.free_epoch != seen.free_epoch;
            if advanced {
                idle_waits = 0;
                if next.rounds != seen.rounds && next.free_epoch == seen.free_epoch {
                    // A round completed without freeing anything.
                    fruitless_rounds += 1;
                } else {
                    fruitless_rounds = 0;
                }
                trace::emit(
                    TraceLayer::Chunk,
                    TraceKind::StallRetry,
                    0,
                    waits,
                    next.rounds.wrapping_sub(seen.rounds),
                );
            } else {
                // Timed out with no progress at all. Tolerate a few (the
                // round may genuinely be slow), then treat it as wedged
                // maintenance and give up rather than block forever.
                idle_waits += 1;
                if idle_waits >= 8 {
                    trace::emit(TraceLayer::Chunk, TraceKind::StallGiveUp, 0, waits, 1);
                    break false;
                }
            }
            // Re-observe and re-kick: a completed round consumed the kick
            // flag, but our out-of-space condition persists.
            seen = self.maint.observe_and_kick();
        };
        if sw.running() {
            self.stats.phases.stall.record(sw.lap());
        }
        Ok(retry)
    }

    /// Record that an anchor has covered `covered` (used by paths that
    /// anchor outside the coordinator: checkpoints, empty durable commits).
    /// The notify is taken under the group lock so it cannot slip between a
    /// waiter's coverage check and its sleep.
    pub(crate) fn publish_durable(&self, covered: u64) {
        if self.durable_seq.fetch_max(covered, Ordering::AcqRel) < covered {
            let _g = self.group.lock();
            self.group_cv.notify_all();
        }
    }
}

/// A per-transaction staging area (paper Fig. 2's operations, scoped to
/// one committer). Writes and deallocations stage here without taking the
/// store-wide lock; [`ChunkStore::commit_batch`] applies them atomically.
/// Dropping an uncommitted batch discards its staged operations and
/// returns its allocated ids to the free pool.
pub struct WriteBatch {
    core: Arc<StoreCore>,
    staged: Batch,
}

impl WriteBatch {
    /// Allocate an unused chunk id (paper Fig. 2: `allocateChunkId`). The
    /// id is reserved store-wide immediately; it returns to the free pool
    /// if the batch is dropped without committing.
    pub fn allocate_chunk_id(&mut self) -> Result<ChunkId> {
        Ok(self.core.inner.lock().allocate_into(&mut self.staged))
    }

    /// Stage a write of `cid`'s state. Takes effect when the batch commits.
    /// Signals if `cid` is not allocated.
    pub fn write(&mut self, cid: ChunkId, bytes: &[u8]) -> Result<()> {
        self.core
            .inner
            .lock()
            .stage_write(&mut self.staged, cid, bytes)
    }

    /// Stage a deallocation of `cid`. Takes effect when the batch commits.
    pub fn deallocate(&mut self, cid: ChunkId) -> Result<()> {
        self.core.inner.lock().stage_dealloc(&mut self.staged, cid)
    }

    /// Read through this batch: staged writes win over committed state.
    pub fn read(&self, cid: ChunkId) -> Result<Vec<u8>> {
        self.core.inner.lock().read_with(&self.staged, cid)
    }

    /// Whether anything is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.ops.is_empty()
    }

    /// Staged operations (writes + deallocations).
    pub fn staged_ops(&self) -> usize {
        self.staged.ops.len()
    }

    /// Explicitly discard this batch (equivalent to dropping it): staged
    /// operations vanish, allocated ids return to the free pool. Only this
    /// batch is affected — other batches' staged writes are untouched.
    pub fn discard(self) {}
}

impl Drop for WriteBatch {
    fn drop(&mut self) {
        if !self.staged.ops.is_empty() || !self.staged.allocated.is_empty() {
            self.core.inner.lock().free_batch(&mut self.staged);
        }
    }
}

/// A claim ticket from [`ChunkStore::append_batch`]: the batch's commit
/// record(s) are in the log; redeem with [`ChunkStore::wait_durable`] to
/// block until a group anchor covers them.
#[must_use = "a durable commit is not durable until wait_durable returns"]
pub struct CommitTicket {
    seq: u64,
    empty: bool,
    durable: bool,
    sampled: bool,
    total: Stopwatch,
}

impl CommitTicket {
    /// Sequence of the batch's last commit record — the version stamp of
    /// every chunk the batch wrote (see [`ChunkStore::read_versioned`]).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// The trusted chunk store (paper §3). See the crate docs for an example.
///
/// Concurrency: any number of [`WriteBatch`] handles may stage
/// independently; commits serialize only on the short log-tail append,
/// and concurrent durable commits share sync/anchor/counter rounds via
/// the group-commit coordinator. The inherent `write`/`commit`/… methods
/// are the legacy single-handle API over a store-owned default batch.
pub struct ChunkStore {
    core: Arc<StoreCore>,
    /// Staging area for the legacy single-handle API.
    default_batch: Mutex<Batch>,
    /// The background maintenance thread, when `background_maintenance`
    /// is configured. Joined by [`ChunkStore::close`] (and drop).
    maint_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ChunkStore {
    fn from_inner(inner: Inner) -> ChunkStore {
        static DIAG_ID: AtomicU64 = AtomicU64::new(0);
        let background = inner.cfg.background_maintenance;
        let label = format!("chunk{}", DIAG_ID.fetch_add(1, Ordering::Relaxed));
        let core = Arc::new(StoreCore {
            ctx: inner.ctx.clone(),
            stats: inner.stats.clone(),
            phase_tick: AtomicU64::new(0),
            durable_seq: AtomicU64::new(inner.commit_seq),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
            maint: MaintShared::new(),
            rehash_pending: Mutex::new(None),
            diag_label: Mutex::new(label.clone()),
            diag_keeper: Mutex::new(None),
            inner: Mutex::new(inner),
        });
        // Register this store with the diagnostic registry. The registry
        // holds a `Weak`, so a dropped store silently disappears from
        // future dumps; the keeper Arc pins the provider to our lifetime.
        {
            let weak = Arc::downgrade(&core);
            let provider: Arc<tdb_obs::diag::DiagFn> = Arc::new(move || match weak.upgrade() {
                Some(core) => core.diag_state(),
                None => tdb_obs::Json::obj(),
            });
            tdb_obs::diag::register_provider(&label, &provider);
            *core.diag_keeper.lock() = Some(provider);
        }
        let maint_thread = if background {
            // Marked running before the spawn so a commit racing store
            // construction kicks the thread instead of maintaining inline.
            core.maint.set_thread_running();
            let thread_core = core.clone();
            Some(
                std::thread::Builder::new()
                    .name("tdb-maintenance".into())
                    .spawn(move || maintenance::run(thread_core))
                    .expect("spawn maintenance thread"),
            )
        } else {
            None
        };
        ChunkStore {
            core,
            default_batch: Mutex::new(Batch::default()),
            maint_thread: Mutex::new(maint_thread),
        }
    }

    /// Create a fresh database. Fails if one already exists in `untrusted`.
    pub fn create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<Self> {
        cfg.validate().map_err(ChunkStoreError::ConfigMismatch)?;
        if AnchorStore::new(&*untrusted).database_exists()? {
            return Err(ChunkStoreError::ConfigMismatch(
                "a database already exists in this untrusted store".into(),
            ));
        }
        let ctx = Arc::new(CryptoCtx::new(cfg.security, secret, iv_salt(&*counter))?);
        let stats: SharedStats = Arc::new(Stats::default());
        let segs = SegmentManager::create(
            untrusted.clone(),
            cfg.segment_size,
            cfg.initial_segments,
            cfg.allow_growth,
            stats.clone(),
        )?;
        let counter_value = match cfg.security {
            SecurityMode::Full => counter.read()?,
            SecurityMode::Off => 0,
        };
        let map = LocationMap::new(cfg.map_fanout, cfg.security == SecurityMode::Full);
        let mut inner = Inner {
            cfg,
            ctx,
            counter,
            untrusted,
            segs,
            map,
            next_id: 0,
            free_ids: BTreeSet::new(),
            commit_seq: 0,
            chain: [0u8; 32],
            base_seq: 0,
            chain_base: [0u8; 32],
            residual_start: (SegmentId(0), crate::layout::SEGMENT_HEADER_LEN),
            residual_segments: std::iter::once(SegmentId(0)).collect(),
            residual_bytes: 0,
            anchor_seq: 0,
            counter_value,
            // Placeholder; the initial checkpoint below sets the real root.
            checkpointed_root: (
                Location {
                    seg: SegmentId(0),
                    off: 0,
                    len: 0,
                    hash: [0; 32],
                },
                1,
            ),
            pending_dec: Vec::new(),
            snapshots: Vec::new(),
            sync_inflight: BTreeSet::new(),
            anchor_io: Arc::new(Mutex::new(())),
            pass_active: false,
            stats,
            recovery: None,
        };
        inner.do_checkpoint()?;
        Ok(ChunkStore::from_inner(inner))
    }

    /// Open an existing database, running crash recovery, tamper
    /// validation, and replay detection.
    pub fn open(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<Self> {
        let inner = recovery::open_impl(untrusted, secret, counter, cfg)?;
        Ok(ChunkStore::from_inner(inner))
    }

    /// Open if a database exists, otherwise create one.
    pub fn open_or_create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<Self> {
        if AnchorStore::new(&*untrusted).database_exists()? {
            Self::open(untrusted, secret, counter, cfg)
        } else {
            Self::create(untrusted, secret, counter, cfg)
        }
    }

    // ---- per-transaction batches ------------------------------------

    /// Start an independent staging area. Concurrent batches stage without
    /// contending; see [`WriteBatch`].
    pub fn begin_batch(&self) -> WriteBatch {
        WriteBatch {
            core: self.core.clone(),
            staged: Batch::default(),
        }
    }

    /// Atomically apply a batch's staged operations. [`Durability::Durable`]
    /// commits return once a group anchor covers them (one
    /// sync/anchor/counter round may cover many concurrent committers);
    /// [`Durability::Lazy`] commits return after the flush. A failed commit
    /// affects only this batch.
    pub fn commit_batch(&self, batch: WriteBatch, durability: Durability) -> Result<()> {
        let ticket = self.append_batch(batch, durability)?;
        self.wait_durable(ticket)
    }

    /// Deprecated boolean form of [`ChunkStore::commit_batch`].
    #[deprecated(note = "pass `Durability::{Durable, Lazy}` to `commit_batch` instead")]
    pub fn commit_batch_bool(&self, batch: WriteBatch, durable: bool) -> Result<()> {
        self.commit_batch(batch, Durability::from(durable))
    }

    /// First half of [`ChunkStore::commit_batch`]: seal and append the
    /// batch's commit record(s) to the log — the commit point — and
    /// return a ticket. Callers that must order other work (e.g. 2PL lock
    /// release) against the commit point but not against durability can
    /// do it between `append_batch` and [`ChunkStore::wait_durable`].
    pub fn append_batch(
        &self,
        mut batch: WriteBatch,
        durability: Durability,
    ) -> Result<CommitTicket> {
        let ops = std::mem::take(&mut batch.staged.ops);
        // Allocations become permanent at commit (even a failed append may
        // have committed earlier record groups, so ids never return to the
        // free pool here — exactly the legacy single-batch behavior).
        batch.staged.allocated.clear();
        self.core.append_ops(ops, durability.is_durable())
    }

    /// Second half of [`ChunkStore::commit_batch`]: block until the
    /// ticket's commit records are durable (joining or leading a group
    /// anchor round). No-op for nondurable tickets.
    pub fn wait_durable(&self, ticket: CommitTicket) -> Result<()> {
        self.core.wait_ticket(ticket)
    }

    // ---- legacy single-handle API (store-owned default batch) --------

    /// Allocate an unused chunk id (paper Fig. 2: `allocateChunkId`).
    pub fn allocate_chunk_id(&self) -> Result<ChunkId> {
        let mut staged = self.default_batch.lock();
        Ok(self.core.inner.lock().allocate_into(&mut staged))
    }

    /// Stage a write of `cid`'s state. Takes effect at the next commit.
    /// Signals if `cid` is not allocated.
    pub fn write(&self, cid: ChunkId, bytes: &[u8]) -> Result<()> {
        let mut staged = self.default_batch.lock();
        self.core.inner.lock().stage_write(&mut staged, cid, bytes)
    }

    /// Return the last written state of `cid` (staged writes included).
    /// Signals if the chunk is unallocated, unwritten, or tampered with.
    pub fn read(&self, cid: ChunkId) -> Result<Vec<u8>> {
        let staged = self.default_batch.lock();
        self.core.inner.lock().read_with(&staged, cid)
    }

    /// Stage a deallocation of `cid`. Takes effect at the next commit.
    pub fn deallocate(&self, cid: ChunkId) -> Result<()> {
        let mut staged = self.default_batch.lock();
        self.core.inner.lock().stage_dealloc(&mut staged, cid)
    }

    /// Atomically apply all operations staged through the single-handle
    /// API. See the module docs for the durable/nondurable distinction.
    pub fn commit(&self, durability: Durability) -> Result<()> {
        let ops = {
            let mut staged = self.default_batch.lock();
            staged.allocated.clear();
            std::mem::take(&mut staged.ops)
        };
        let ticket = self.core.append_ops(ops, durability.is_durable())?;
        self.core.wait_ticket(ticket)
    }

    /// Deprecated boolean form of [`ChunkStore::commit`].
    #[deprecated(note = "pass `Durability::{Durable, Lazy}` to `commit` instead")]
    pub fn commit_bool(&self, durable: bool) -> Result<()> {
        self.commit(Durability::from(durable))
    }

    /// Drop all staged single-handle operations and return batch-allocated
    /// ids to the free pool.
    pub fn discard(&self) {
        let mut staged = self.default_batch.lock();
        self.core.inner.lock().free_batch(&mut staged);
    }

    /// Force a checkpoint of the location map (normally automatic; exposed
    /// for idle-time maintenance as the paper suggests deferring
    /// reorganization to idle periods).
    pub fn checkpoint(&self) -> Result<()> {
        let ops = {
            let mut staged = self.default_batch.lock();
            if staged.ops.is_empty() {
                BTreeMap::new()
            } else {
                staged.allocated.clear();
                std::mem::take(&mut staged.ops)
            }
        };
        if !ops.is_empty() {
            let ticket = self.core.append_ops(ops, false)?;
            self.core.wait_ticket(ticket)?;
        }
        let covered = {
            let mut inner = self.core.inner.lock();
            inner.do_checkpoint()?;
            inner.commit_seq
        };
        self.core.publish_durable(covered);
        Ok(())
    }

    /// Run one cleaner pass (normally automatic). Returns segments freed.
    /// Runs the same incremental slice protocol as the maintenance
    /// thread; if a background pass is already in flight this returns 0
    /// rather than racing it for the victims.
    pub fn clean(&self) -> Result<usize> {
        match maintenance::incremental_pass(&self.core, &mut |_| true)? {
            PassResult::Freed(n) => Ok(n),
            PassResult::NoGarbage | PassResult::Abandoned => Ok(0),
        }
    }

    /// Drive one incremental cleaning pass, calling `between` with the
    /// store *unlocked* before every relocation slice after the first —
    /// a test hook for the mid-pass snapshot/commit interleavings the
    /// background thread produces nondeterministically.
    #[doc(hidden)]
    pub fn clean_incremental_with(&self, between: &mut dyn FnMut(usize)) -> Result<usize> {
        let mut hook = |slice: usize| {
            if slice > 0 {
                between(slice);
            }
            true
        };
        match maintenance::incremental_pass(&self.core, &mut hook)? {
            PassResult::Freed(n) => Ok(n),
            PassResult::NoGarbage | PassResult::Abandoned => Ok(0),
        }
    }

    /// Quiesce and join the background maintenance thread, if one is
    /// running: an in-flight cleaning pass is abandoned at the next slice
    /// boundary (safe — only the closing checkpoint anchors a pass, so an
    /// abandoned slice is dead log tail for recovery and for the next
    /// pass). The store remains usable; maintenance falls back inline.
    /// Called automatically when the store is dropped.
    pub fn close(&self) {
        self.core.maint.request_shutdown();
        if let Some(handle) = self.maint_thread.lock().take() {
            let _ = handle.join();
        }
    }

    /// Take a copy-on-write snapshot of the committed database state.
    /// Staged (uncommitted) operations are not included.
    pub fn snapshot(&self) -> Snapshot {
        self.core.inner.lock().take_snapshot()
    }

    /// Read a chunk's state as of `snap`.
    ///
    /// The read path is built for concurrent snapshot readers: the frozen
    /// snapshot resolves the location without any lock, the store lock is
    /// held only long enough to resolve the location to a file handle (or
    /// copy unflushed tail bytes), and the I/O, hash verification, and
    /// decryption all run outside it. The snapshot's segment pins keep the
    /// cleaner from freeing or truncating the segment meanwhile.
    pub fn read_at_snapshot(&self, snap: &Snapshot, cid: ChunkId) -> Result<Vec<u8>> {
        let loc = snap
            .location_of(cid)
            .ok_or(ChunkStoreError::NotAllocated(cid))?;
        let src = {
            let inner = self.core.inner.lock();
            add(&inner.stats.chunk_reads, 1);
            inner.segs.prepare_read(&loc)?
        };
        let stored = segment::complete_read(src, &loc, RecordKind::ChunkData)?;
        let ctx = &self.core.ctx;
        if ctx.verifies_hashes() && !CryptoCtx::tags_equal(&ctx.hash(&stored), &loc.hash) {
            return Err(ChunkStoreError::TamperDetected(format!(
                "hash mismatch for snapshot record at {loc:?}"
            )));
        }
        let plain = ctx.open(&stored)?;
        let (stored_id, data) =
            decode_chunk_payload(&plain).map_err(|m| ChunkStoreError::TamperDetected(m.0))?;
        if stored_id != cid {
            return Err(ChunkStoreError::TamperDetected(format!(
                "snapshot chunk {cid:?} record claims {stored_id:?}"
            )));
        }
        Ok(data.to_vec())
    }

    /// Read a chunk's last *committed* state plus the store's commit
    /// sequence at the time of the read (staged single-handle operations
    /// are ignored). The sequence is an upper bound on the commit that
    /// produced the returned bytes — the contract snapshot readers use to
    /// decide whether a cached object version is visible at their
    /// snapshot: a version stamped `v` is visible at any snapshot with
    /// `commit_seq() >= v`.
    pub fn read_versioned(&self, cid: ChunkId) -> Result<(Vec<u8>, u64)> {
        let mut inner = self.core.inner.lock();
        let seq = inner.commit_seq;
        let bytes = inner.read_with(&Batch::default(), cid)?;
        Ok((bytes, seq))
    }

    // ---- proof-carrying reads ----------------------------------------

    /// The MAC key this store's proofs attest under (a sharded store
    /// collects one per shard into its [`tdb_proof::TrustKeys::Sharded`]).
    pub(crate) fn proof_mac_key(&self) -> [u8; 32] {
        *self.core.ctx.proof_mac_key()
    }

    /// Read a chunk as of `snap`, returning a [`Proven`] value: the bytes
    /// (or `None` for provable absence) plus a bookmark from which
    /// [`Proven::prove`] can later build a [`tdb_proof::ChunkProof`]
    /// checkable by a standalone [`tdb_proof::Verifier`]. The read itself
    /// pays only the bookmark (an `Arc` clone plus one value hash); proof
    /// construction is deferred until `prove()` and runs lock-free against
    /// the frozen snapshot root, so it is stable under concurrent commits
    /// and cleaner relocation. Requires [`SecurityMode::Full`].
    pub fn proven_at_snapshot(
        &self,
        snap: &Snapshot,
        cid: ChunkId,
    ) -> Result<Proven<Option<Vec<u8>>>> {
        proof::require_full_security(&self.core.ctx)?;
        let (value, outcome) = match snap.location_of(cid) {
            Some(loc) => {
                let data = self.read_at_snapshot(snap, cid)?;
                let plain_hash = proof::plain_digest(&data);
                (
                    Some(data),
                    BookmarkOutcome::Included {
                        sealed_hash: loc.hash,
                        plain_hash,
                    },
                )
            }
            None => (None, BookmarkOutcome::Absent),
        };
        self.core.stats.proofs.proven_reads.add(1);
        Ok(Proven {
            value,
            bookmark: ProofBookmark {
                ctx: self.core.ctx.clone(),
                core: snap.core.clone(),
                cid,
                proof_id: cid.0,
                outcome,
                shard: None,
                stats: self.core.stats.clone(),
            },
        })
    }

    /// Proven read of the last *committed* state (staged operations are
    /// ignored — proofs speak about committed snapshots only). Takes a
    /// fresh snapshot internally; see [`ChunkStore::proven_at_snapshot`].
    pub fn read_proven(&self, cid: ChunkId) -> Result<Proven<Option<Vec<u8>>>> {
        let snap = self.snapshot();
        self.proven_at_snapshot(&snap, cid)
    }

    /// The trust anchor a client needs to verify this store's proofs: the
    /// current counter value plus the root MAC key. Ship it to the client
    /// over a trusted channel (provisioning); any proof attesting an older
    /// counter value is then rejected as a replay.
    pub fn trust_anchor(&self) -> Result<tdb_proof::TrustAnchor> {
        proof::require_full_security(&self.core.ctx)?;
        let counter_value = self.core.inner.lock().counter_value;
        Ok(tdb_proof::TrustAnchor {
            counter_value,
            keys: tdb_proof::TrustKeys::Single {
                root_mac_key: *self.core.ctx.proof_mac_key(),
            },
        })
    }

    /// Mint a keyed (index-level) attestation bound to `snap`'s pinned
    /// counter and commit sequence. The collection layer rebuilds the
    /// keyed tree over an index's sorted keys at the snapshot and calls
    /// this to bind its root; the verifier side is
    /// [`tdb_proof::Verifier::verify_keyed`].
    pub fn keyed_attest_at(
        &self,
        snap: &Snapshot,
        scope: &str,
        total: u64,
        root: &Digest,
    ) -> Result<tdb_proof::KeyedAttestation> {
        proof::require_full_security(&self.core.ctx)?;
        self.core.stats.proofs.keyed_minted.add(1);
        Ok(tdb_proof::KeyedAttestation {
            counter_value: snap.core.counter_value,
            commit_seq: snap.core.seq,
            tag: tdb_proof::keyed::keyed_tag(
                self.core.ctx.proof_mac_key(),
                snap.core.counter_value,
                snap.core.seq,
                scope,
                total,
                root,
            ),
        })
    }

    /// Compare two snapshots (the engine of incremental backups).
    pub fn diff_snapshots(&self, old: &Snapshot, new: &Snapshot) -> SnapshotDiff {
        diff_roots(
            &old.core.root,
            old.core.depth,
            &new.core.root,
            new.core.depth,
            old.core.fanout,
        )
    }

    /// What crash recovery found and did, if this handle was produced by
    /// [`ChunkStore::open`] (a freshly created store has no report).
    pub fn recovery_report(&self) -> Option<recovery::RecoveryReport> {
        self.core.inner.lock().recovery.clone()
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.core.stats.snapshot()
    }

    /// The store's observability registry: the `chunk.*` counters behind
    /// [`ChunkStore::stats`] plus commit/checkpoint/cleaner/recovery phase
    /// histograms. Higher layers (object/collection/backup stores) register
    /// their instruments here too, so one registry describes a whole stack.
    pub fn obs(&self) -> Arc<tdb_obs::Registry> {
        self.core.stats.registry().clone()
    }

    /// Non-blocking health summary of this store (the same object this
    /// store contributes to watchdog diagnostic dumps).
    pub fn diag_state(&self) -> tdb_obs::Json {
        self.core.diag_state()
    }

    /// Rename this store in diagnostic dumps (e.g. `shard3` instead of
    /// the default `chunk{N}`).
    pub fn set_diag_label(&self, label: impl Into<String>) {
        *self.core.diag_label.lock() = label.into();
    }

    /// Current database utilization (live bytes / in-use capacity).
    pub fn utilization(&self) -> f64 {
        self.core.inner.lock().segs.utilization()
    }

    /// On-disk footprint of the log in bytes.
    pub fn disk_size(&self) -> u64 {
        self.core.inner.lock().segs.disk_size()
    }

    /// Number of live chunks.
    pub fn live_chunks(&self) -> u64 {
        self.core.inner.lock().map.live_count()
    }

    /// The security mode the store runs in.
    pub fn security(&self) -> SecurityMode {
        self.core.inner.lock().cfg.security
    }

    /// Whether `cid` is currently allocated (committed or staged through
    /// the single-handle API).
    pub fn is_allocated(&self, cid: ChunkId) -> bool {
        let staged = self.default_batch.lock();
        self.core.inner.lock().is_allocated_with(&staged, cid)
    }

    /// Largest chunk this configuration accepts.
    pub fn max_chunk_size(&self) -> usize {
        self.core.inner.lock().max_chunk_size()
    }

    /// Accounting audit (diagnostics): `(accounted_live, walked_live,
    /// in_use_segments, free_segments, pending_decrements)`.
    /// `accounted_live` is the segment manager's running per-segment sum;
    /// `walked_live` recomputes it from the in-memory map (entries plus
    /// clean pages). At a quiescent point (right after a checkpoint, no
    /// batch staged) the two must agree exactly.
    #[doc(hidden)]
    pub fn debug_accounting(&self) -> (u64, u64, usize, usize, usize) {
        let inner = self.core.inner.lock();
        let mut walked = 0u64;
        inner
            .map
            .for_each_entry(&mut |_, loc| walked += loc.len as u64);
        inner.map.for_each_page(&mut |loc| walked += loc.len as u64);
        (
            inner.segs.total_live(),
            walked,
            inner.segs.in_use_segments().len(),
            inner.segs.free_count(),
            inner.pending_dec.len(),
        )
    }

    /// Return ids that were allocated but never written back to the free
    /// pool (used by the object store when a transaction that inserted
    /// objects aborts). Ids with committed or staged state are ignored.
    pub fn release_unwritten_ids(&self, ids: &[ChunkId]) {
        let staged = self.default_batch.lock();
        let mut inner = self.core.inner.lock();
        for id in ids {
            if id.0 < inner.next_id
                && inner.map.get(*id).is_none()
                && !staged.ops.contains_key(&id.0)
            {
                inner.free_ids.insert(id.0);
            }
        }
    }

    /// Install a full database image at exact chunk ids — the backup
    /// store's validated-restore primitive. The store must be empty (fresh
    /// `create`). Ids below the restored high-water mark that are absent
    /// from the image become free.
    pub fn restore_image(&self, chunks: Vec<(ChunkId, Vec<u8>)>) -> Result<()> {
        let staged = self.default_batch.lock();
        let mut ops: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        {
            let mut inner = self.core.inner.lock();
            if inner.map.live_count() != 0 || !staged.ops.is_empty() {
                return Err(ChunkStoreError::ConfigMismatch(
                    "restore_image requires an empty store".into(),
                ));
            }
            let max_id = chunks.iter().map(|(id, _)| id.0).max();
            if let Some(max_id) = max_id {
                let present: HashSet<u64> = chunks.iter().map(|(id, _)| id.0).collect();
                inner.next_id = max_id + 1;
                inner.free_ids = (0..=max_id).filter(|i| !present.contains(i)).collect();
            }
        }
        drop(staged);
        for (id, data) in chunks {
            ops.insert(id.0, Some(data));
        }
        let ticket = self.core.append_ops(ops, true)?;
        self.core.wait_ticket(ticket)
    }

    /// Whether commit records exist past the last written anchor. Cheap
    /// (one lock, one atomic load); the sharded store uses it to decide
    /// which sibling shards a durable commit must harden.
    pub(crate) fn needs_anchor(&self) -> bool {
        let commit_seq = self.core.inner.lock().commit_seq;
        commit_seq > self.core.durable_seq.load(Ordering::Acquire)
    }

    /// Force one sync/anchor/counter round covering everything appended so
    /// far — the empty-durable-commit barrier, callable without a batch.
    pub(crate) fn harden(&self) -> Result<()> {
        self.core.wait_ticket(CommitTicket {
            seq: 0,
            empty: true,
            durable: true,
            sampled: false,
            total: Stopwatch::inert(),
        })
    }

    /// Apply an incremental delta at exact chunk ids (backup restore). Ids
    /// newly above the high-water mark extend it; removed ids become free.
    pub fn apply_restore_delta(
        &self,
        writes: Vec<(ChunkId, Vec<u8>)>,
        removes: Vec<ChunkId>,
    ) -> Result<()> {
        let staged = self.default_batch.lock();
        let mut ops: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        {
            let mut inner = self.core.inner.lock();
            if !staged.ops.is_empty() {
                return Err(ChunkStoreError::ConfigMismatch(
                    "apply_restore_delta with operations staged".into(),
                ));
            }
            for (id, _) in &writes {
                if id.0 >= inner.next_id {
                    for gap in inner.next_id..id.0 {
                        inner.free_ids.insert(gap);
                    }
                    inner.next_id = id.0 + 1;
                }
                inner.free_ids.remove(&id.0);
            }
        }
        drop(staged);
        for (id, data) in writes {
            ops.insert(id.0, Some(data));
        }
        for id in removes {
            ops.insert(id.0, None);
        }
        let ticket = self.core.append_ops(ops, true)?;
        self.core.wait_ticket(ticket)
    }
}

impl Drop for ChunkStore {
    fn drop(&mut self) {
        self.close();
    }
}
