//! The public `ChunkStore`: batching, commits, checkpoints, snapshots.
//!
//! See the crate docs for the big picture. This module owns the write path:
//!
//! * operations (`write`, `deallocate`) stage into a batch;
//! * `commit` appends the batch's chunk versions plus a chain-authenticated
//!   commit record to the log (splitting very large batches into several
//!   chained commit records that still become durable atomically, because
//!   recovery only applies commits the anchor's `last_seq` covers);
//! * a *durable* commit syncs the log, advances the trusted anchor, and
//!   bumps the one-way counter; a *nondurable* commit does none of those and
//!   is discarded by recovery until a later durable commit covers it;
//! * the residual log is checkpointed when it exceeds the configured
//!   threshold, and the cleaner runs when free space runs out while
//!   utilization is below the configured maximum (§3.2.1).

use crate::anchor::{AnchorState, AnchorStore};
use crate::cleaner;
use crate::config::{ChunkStoreConfig, SecurityMode};
use crate::crypto_ctx::CryptoCtx;
use crate::error::{ChunkStoreError, Result};
use crate::ids::{ChunkId, SegmentId};
use crate::layout::{
    decode_chunk_payload, encode_chunk_payload, CommitPayload, RecordKind, LOCATION_LEN,
};
use crate::map::{diff_roots, Location, LocationMap};
use crate::recovery;
use crate::segment::SegmentManager;
use crate::snapshot::{SnapCore, Snapshot, SnapshotDiff};
use crate::stats::{add, SharedStats, Stats, StatsSnapshot};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::{Arc, Weak};
use tdb_crypto::Digest;
use tdb_obs::Stopwatch;
use tdb_platform::{OneWayCounter, SecretStore, UntrustedStore};

/// Staged, uncommitted operations. `Some(bytes)` is a write, `None` a
/// deallocation; last operation per id wins.
#[derive(Default)]
pub(crate) struct Batch {
    pub(crate) ops: BTreeMap<u64, Option<Vec<u8>>>,
    pub(crate) allocated: Vec<u64>,
}

/// Everything behind the store's state mutex.
pub(crate) struct Inner {
    pub(crate) cfg: ChunkStoreConfig,
    pub(crate) ctx: CryptoCtx,
    pub(crate) counter: Arc<dyn OneWayCounter>,
    pub(crate) untrusted: Arc<dyn UntrustedStore>,
    pub(crate) segs: SegmentManager,
    pub(crate) map: LocationMap,
    pub(crate) next_id: u64,
    pub(crate) free_ids: BTreeSet<u64>,
    pub(crate) batch: Batch,
    /// Sequence of the last appended commit.
    pub(crate) commit_seq: u64,
    /// Chain value of the last appended commit.
    pub(crate) chain: Digest,
    /// Commit sequence at the residual-log start.
    pub(crate) base_seq: u64,
    /// Chain value at the residual-log start.
    pub(crate) chain_base: Digest,
    pub(crate) residual_start: (SegmentId, u32),
    pub(crate) residual_segments: HashSet<SegmentId>,
    pub(crate) residual_bytes: u64,
    pub(crate) anchor_seq: u64,
    pub(crate) counter_value: u64,
    /// Map root as of the last checkpoint — what anchors reference.
    pub(crate) checkpointed_root: (Location, u32),
    /// Data extents that become dead at the next anchor write (the §3.2.2
    /// deferred-reclamation rule for nondurable commits falls out of this:
    /// decrements wait for the anchor that makes their supersession
    /// recoverable).
    pub(crate) pending_dec: Vec<Location>,
    pub(crate) snapshots: Vec<Weak<SnapCore>>,
    pub(crate) stats: SharedStats,
    /// Commits until the next phase-attributed (fully timed) commit; see
    /// [`tdb_obs::phase_sample_every`].
    pub(crate) phase_tick: u64,
    /// `Some` when this handle came from `open` (crash recovery ran).
    pub(crate) recovery: Option<recovery::RecoveryReport>,
}

impl Inner {
    pub(crate) fn max_chunk_size(&self) -> usize {
        (self.cfg.segment_size / 4) as usize
    }

    fn max_ops_per_commit(&self) -> usize {
        // A commit record must fit comfortably in one segment.
        let budget = (self.cfg.segment_size / 2) as usize;
        (budget / (8 + LOCATION_LEN)).max(8)
    }

    fn is_allocated(&self, id: ChunkId) -> bool {
        match self.batch.ops.get(&id.0) {
            Some(Some(_)) => return true,
            Some(None) => return false,
            None => {}
        }
        id.0 < self.next_id && !self.free_ids.contains(&id.0)
    }

    pub(crate) fn allocate_chunk_id(&mut self) -> ChunkId {
        let id = match self.free_ids.pop_first() {
            Some(id) => id,
            None => {
                let id = self.next_id;
                self.next_id += 1;
                id
            }
        };
        self.batch.allocated.push(id);
        ChunkId(id)
    }

    pub(crate) fn write(&mut self, id: ChunkId, data: &[u8]) -> Result<()> {
        if !self.is_allocated(id) {
            return Err(ChunkStoreError::NotAllocated(id));
        }
        if data.len() > self.max_chunk_size() {
            return Err(ChunkStoreError::ChunkTooLarge {
                size: data.len(),
                max: self.max_chunk_size(),
            });
        }
        self.batch.ops.insert(id.0, Some(data.to_vec()));
        Ok(())
    }

    pub(crate) fn deallocate(&mut self, id: ChunkId) -> Result<()> {
        if !self.is_allocated(id) {
            return Err(ChunkStoreError::NotAllocated(id));
        }
        self.batch.ops.insert(id.0, None);
        Ok(())
    }

    pub(crate) fn read(&mut self, id: ChunkId) -> Result<Vec<u8>> {
        match self.batch.ops.get(&id.0) {
            Some(Some(data)) => return Ok(data.clone()),
            Some(None) => return Err(ChunkStoreError::NotAllocated(id)),
            None => {}
        }
        let Some(loc) = self.map.get(id) else {
            return if self.is_allocated(id) {
                Err(ChunkStoreError::NotWritten(id))
            } else {
                Err(ChunkStoreError::NotAllocated(id))
            };
        };
        add(&self.stats.chunk_reads, 1);
        let plain = self.read_verified(&loc, RecordKind::ChunkData)?;
        let (stored_id, data) = decode_chunk_payload(&plain)
            .map_err(|m| ChunkStoreError::TamperDetected(format!("chunk {id:?}: {}", m.0)))?;
        if stored_id != id {
            return Err(ChunkStoreError::TamperDetected(format!(
                "chunk {id:?}: record claims to be {stored_id:?}"
            )));
        }
        Ok(data.to_vec())
    }

    /// Read a record's payload, verify its hash against `loc`, decrypt.
    pub(crate) fn read_verified(&self, loc: &Location, expect: RecordKind) -> Result<Vec<u8>> {
        let stored = self.segs.read_record(loc, expect)?;
        if self.ctx.verifies_hashes() && !CryptoCtx::tags_equal(&self.ctx.hash(&stored), &loc.hash)
        {
            return Err(ChunkStoreError::TamperDetected(format!(
                "hash mismatch for record at {loc:?}"
            )));
        }
        self.ctx.open(&stored)
    }

    pub(crate) fn discard(&mut self) {
        self.batch.ops.clear();
        for id in std::mem::take(&mut self.batch.allocated) {
            self.free_ids.insert(id);
        }
    }

    /// Whether this commit gets full phase attribution. The detailed laps
    /// cost several clock reads per record — too much for every commit — so
    /// only every [`tdb_obs::phase_sample_every`]-th commit is timed.
    /// Everything a sampled commit records (including `commit.total` and the
    /// `durable_anchor` phases) comes from the same commit, so per-commit
    /// phase samples still sum to their `commit.total` sample.
    fn sample_phases(&mut self) -> bool {
        if !tdb_obs::enabled() {
            return false;
        }
        self.phase_tick += 1;
        if self.phase_tick >= tdb_obs::phase_sample_every() {
            self.phase_tick = 0;
            true
        } else {
            false
        }
    }

    pub(crate) fn commit(&mut self, durable: bool) -> Result<()> {
        let ops = std::mem::take(&mut self.batch.ops);
        self.batch.allocated.clear();
        let sampled = self.sample_phases();
        if ops.is_empty() {
            if durable {
                let mut sw_total = if sampled {
                    Stopwatch::start()
                } else {
                    Stopwatch::inert()
                };
                self.durable_anchor(sampled)?;
                self.maintain()?;
                if sw_total.running() {
                    self.stats.phases.commit_total.record(sw_total.lap());
                }
            }
            return Ok(());
        }
        let mut sw_total = if sampled {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        add(&self.stats.commits, 1);
        if durable {
            add(&self.stats.durable_commits, 1);
        }

        // Phase attribution: nanoseconds are accumulated across the whole
        // group loop and recorded as one sample per phase per commit, so a
        // commit's phase samples sum to its `commit.total` sample.
        let (mut ser_ns, mut seal_ns, mut append_ns) = (0u64, 0u64, 0u64);
        let mut sw = if sampled {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        let max_ops = self.max_ops_per_commit();
        let ops: Vec<(u64, Option<Vec<u8>>)> = ops.into_iter().collect();
        for group in ops.chunks(max_ops) {
            let mut writes = Vec::new();
            let mut deallocs = Vec::new();
            for (raw_id, op) in group {
                let id = ChunkId(*raw_id);
                match op {
                    Some(data) => {
                        sw.lap();
                        let payload = encode_chunk_payload(id, data);
                        ser_ns += sw.lap();
                        let sealed = self.ctx.seal(&payload);
                        let hash = self.ctx.hash(&sealed);
                        seal_ns += sw.lap();
                        let (seg, off, len) =
                            self.segs.append_record(RecordKind::ChunkData, &sealed)?;
                        append_ns += sw.lap();
                        let loc = Location {
                            seg,
                            off,
                            len,
                            hash,
                        };
                        if let Some(old) = self.map.set(id, loc) {
                            self.pending_dec.push(old);
                        }
                        writes.push((id, loc));
                        self.residual_bytes += len as u64;
                    }
                    None => {
                        if let Some(old) = self.map.remove(id) {
                            self.pending_dec.push(old);
                        }
                        self.free_ids.insert(id.0);
                        deallocs.push(id);
                    }
                }
            }
            self.commit_seq += 1;
            sw.lap();
            let payload = CommitPayload {
                seq: self.commit_seq,
                durable,
                next_id: self.next_id,
                writes,
                deallocs,
            }
            .encode(self.ctx.verifies_hashes());
            ser_ns += sw.lap();
            let sealed = self.ctx.seal(&payload);
            let chain = self.ctx.chain(&self.chain, &sealed);
            seal_ns += sw.lap();
            let mut record = sealed;
            record.extend_from_slice(&chain);
            let (_, _, len) = self.segs.append_record(RecordKind::Commit, &record)?;
            append_ns += sw.lap();
            self.chain = chain;
            self.residual_bytes += len as u64;
        }
        if sw.running() {
            self.stats.phases.serialize.record(ser_ns);
            self.stats.phases.seal.record(seal_ns);
            self.stats.phases.append.record(append_ns);
        }
        for s in self.segs.drain_entered() {
            self.residual_segments.insert(s);
        }

        if durable {
            self.durable_anchor(sampled)?;
            self.maintain()?;
            if sw_total.running() {
                self.stats.phases.commit_total.record(sw_total.lap());
            }
        } else {
            self.segs.flush()?;
        }
        Ok(())
    }

    /// Sync the log and advance the trusted anchor (+ one-way counter).
    /// Everything appended so far becomes durable and recoverable.
    /// `sampled` controls phase timing (see [`Inner::sample_phases`]).
    pub(crate) fn durable_anchor(&mut self, sampled: bool) -> Result<()> {
        let mut sw = if sampled {
            Stopwatch::start()
        } else {
            Stopwatch::inert()
        };
        self.segs.sync_touched()?;
        if sw.running() {
            self.stats.phases.sync.record(sw.lap());
        }
        self.anchor_seq += 1;
        if self.ctx.mode() == SecurityMode::Full {
            self.counter_value += 1;
        }
        let free_ids: Vec<u64> = self
            .free_ids
            .iter()
            .take(self.cfg.free_list_cap)
            .copied()
            .collect();
        let state = AnchorState {
            anchor_seq: self.anchor_seq,
            segment_size: self.cfg.segment_size,
            map_fanout: self.cfg.map_fanout as u32,
            map_root: self.checkpointed_root.0,
            map_depth: self.checkpointed_root.1,
            next_id: self.next_id,
            free_ids,
            residual_seg: self.residual_start.0,
            residual_off: self.residual_start.1,
            base_seq: self.base_seq,
            chain_base: self.chain_base,
            last_seq: self.commit_seq,
            last_chain: self.chain,
            counter_value: self.counter_value,
        };
        AnchorStore::new(&*self.untrusted).write(&self.ctx, &state)?;
        add(&self.stats.anchor_writes, 1);
        if sw.running() {
            self.stats.phases.anchor.record(sw.lap());
        }
        if self.ctx.mode() == SecurityMode::Full {
            // Anchor first, then counter: a crash between the two leaves
            // `anchor == hw + 1`, which `open` repairs by bumping the
            // counter. The reverse order would make a crash window look
            // like a replay attack.
            self.counter.increment()?;
            add(&self.stats.counter_increments, 1);
        }
        if sw.running() {
            self.stats.phases.counter.record(sw.lap());
        }
        // Everything superseded before this anchor is now truly dead.
        for loc in std::mem::take(&mut self.pending_dec) {
            self.segs.sub_live(loc.seg, loc.len as u64);
        }
        Ok(())
    }

    /// Write the dirty location-map pages, advance the anchor to the new
    /// root, and reset the residual log.
    pub(crate) fn do_checkpoint(&mut self) -> Result<()> {
        let mut sw = Stopwatch::start();
        let Inner {
            ref mut map,
            ref mut segs,
            ref ctx,
            ..
        } = *self;
        let root_loc = map.checkpoint(&mut |bytes| {
            let sealed = ctx.seal(bytes);
            let (seg, off, len) = segs.append_record(RecordKind::MapPage, &sealed)?;
            Ok(Location {
                seg,
                off,
                len,
                hash: ctx.hash(&sealed),
            })
        })?;
        self.checkpointed_root = (root_loc, self.map.depth());
        self.pending_dec.extend(self.map.drain_superseded());
        for s in self.segs.drain_entered() {
            self.residual_segments.insert(s);
        }
        self.segs.flush()?;
        self.residual_start = self.segs.tail_pos();
        self.chain_base = self.chain;
        self.base_seq = self.commit_seq;
        self.durable_anchor(true)?;
        self.residual_segments.clear();
        self.residual_segments.insert(self.segs.tail_pos().0);
        self.residual_bytes = 0;
        add(&self.stats.checkpoints, 1);
        self.segs.drop_excess_free(self.cfg.free_segment_reserve)?;
        if sw.running() {
            self.stats.phases.checkpoint.record(sw.lap());
        }
        Ok(())
    }

    /// Post-durable-commit housekeeping: checkpoint when the residual log
    /// is long; clean when free space ran out but garbage exists.
    fn maintain(&mut self) -> Result<()> {
        if self.residual_bytes >= self.cfg.checkpoint_threshold {
            self.do_checkpoint()?;
        }
        // Clean until a free segment exists (or cleaning stops making
        // progress). A single bounded pass can free less than its own
        // checkpoint traffic consumed on map-heavy workloads, which would
        // grow the database without bound.
        let mut passes = 0;
        while self.segs.free_count() == 0
            && self.segs.utilization() <= self.cfg.max_utilization
            && passes < 4
        {
            let freed = cleaner::clean_pass(self)?;
            passes += 1;
            if freed == 0 {
                break;
            }
        }
        Ok(())
    }

    pub(crate) fn prune_snapshots(&mut self) {
        self.snapshots.retain(|w| w.strong_count() > 0);
    }

    fn take_snapshot(&mut self) -> Snapshot {
        self.prune_snapshots();
        let (root, depth) = self.map.freeze();
        let core = Arc::new(SnapCore {
            root,
            depth,
            fanout: self.cfg.map_fanout,
            seq: self.commit_seq,
        });
        self.snapshots.push(Arc::downgrade(&core));
        Snapshot { core }
    }
}

/// Entropy for the IV stream: wall-clock nanoseconds. Combined with the
/// one-way counter so even clock rollback cannot reproduce an IV stream
/// that encrypts *different* data (the DRBG mixes the key as well).
pub(crate) fn iv_salt(counter: &dyn OneWayCounter) -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ counter.read().unwrap_or(0).rotate_left(32)
}

/// The trusted chunk store (paper §3). See the crate docs for an example.
pub struct ChunkStore {
    inner: Mutex<Inner>,
}

impl ChunkStore {
    /// Create a fresh database. Fails if one already exists in `untrusted`.
    pub fn create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<Self> {
        cfg.validate().map_err(ChunkStoreError::ConfigMismatch)?;
        if AnchorStore::new(&*untrusted).database_exists()? {
            return Err(ChunkStoreError::ConfigMismatch(
                "a database already exists in this untrusted store".into(),
            ));
        }
        let ctx = CryptoCtx::new(cfg.security, secret, iv_salt(&*counter))?;
        let stats: SharedStats = Arc::new(Stats::default());
        let segs = SegmentManager::create(
            untrusted.clone(),
            cfg.segment_size,
            cfg.initial_segments,
            cfg.allow_growth,
            stats.clone(),
        )?;
        let counter_value = match cfg.security {
            SecurityMode::Full => counter.read()?,
            SecurityMode::Off => 0,
        };
        let map = LocationMap::new(cfg.map_fanout, cfg.security == SecurityMode::Full);
        let mut inner = Inner {
            cfg,
            ctx,
            counter,
            untrusted,
            segs,
            map,
            next_id: 0,
            free_ids: BTreeSet::new(),
            batch: Batch::default(),
            commit_seq: 0,
            chain: [0u8; 32],
            base_seq: 0,
            chain_base: [0u8; 32],
            residual_start: (SegmentId(0), crate::layout::SEGMENT_HEADER_LEN),
            residual_segments: std::iter::once(SegmentId(0)).collect(),
            residual_bytes: 0,
            anchor_seq: 0,
            counter_value,
            // Placeholder; the initial checkpoint below sets the real root.
            checkpointed_root: (
                Location {
                    seg: SegmentId(0),
                    off: 0,
                    len: 0,
                    hash: [0; 32],
                },
                1,
            ),
            pending_dec: Vec::new(),
            phase_tick: 0,
            snapshots: Vec::new(),
            stats,
            recovery: None,
        };
        inner.do_checkpoint()?;
        Ok(ChunkStore {
            inner: Mutex::new(inner),
        })
    }

    /// Open an existing database, running crash recovery, tamper
    /// validation, and replay detection.
    pub fn open(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<Self> {
        let inner = recovery::open_impl(untrusted, secret, counter, cfg)?;
        Ok(ChunkStore {
            inner: Mutex::new(inner),
        })
    }

    /// Open if a database exists, otherwise create one.
    pub fn open_or_create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<Self> {
        if AnchorStore::new(&*untrusted).database_exists()? {
            Self::open(untrusted, secret, counter, cfg)
        } else {
            Self::create(untrusted, secret, counter, cfg)
        }
    }

    /// Allocate an unused chunk id (paper Fig. 2: `allocateChunkId`).
    pub fn allocate_chunk_id(&self) -> Result<ChunkId> {
        Ok(self.inner.lock().allocate_chunk_id())
    }

    /// Stage a write of `cid`'s state. Takes effect at the next commit.
    /// Signals if `cid` is not allocated.
    pub fn write(&self, cid: ChunkId, bytes: &[u8]) -> Result<()> {
        self.inner.lock().write(cid, bytes)
    }

    /// Return the last written state of `cid` (staged writes included).
    /// Signals if the chunk is unallocated, unwritten, or tampered with.
    pub fn read(&self, cid: ChunkId) -> Result<Vec<u8>> {
        self.inner.lock().read(cid)
    }

    /// Stage a deallocation of `cid`. Takes effect at the next commit.
    pub fn deallocate(&self, cid: ChunkId) -> Result<()> {
        self.inner.lock().deallocate(cid)
    }

    /// Atomically apply all staged operations. See the module docs for the
    /// durable/nondurable distinction.
    pub fn commit(&self, durable: bool) -> Result<()> {
        self.inner.lock().commit(durable)
    }

    /// Drop all staged operations and return batch-allocated ids.
    pub fn discard(&self) {
        self.inner.lock().discard()
    }

    /// Force a checkpoint of the location map (normally automatic; exposed
    /// for idle-time maintenance as the paper suggests deferring
    /// reorganization to idle periods).
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.batch.ops.is_empty() {
            inner.commit(false)?;
        }
        inner.do_checkpoint()
    }

    /// Run one cleaner pass (normally automatic). Returns segments freed.
    pub fn clean(&self) -> Result<usize> {
        cleaner::clean_pass(&mut self.inner.lock())
    }

    /// Take a copy-on-write snapshot of the committed database state.
    /// Staged (uncommitted) operations are not included.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.lock().take_snapshot()
    }

    /// Read a chunk's state as of `snap`.
    pub fn read_at_snapshot(&self, snap: &Snapshot, cid: ChunkId) -> Result<Vec<u8>> {
        let inner = self.inner.lock();
        let loc = snap
            .location_of(cid)
            .ok_or(ChunkStoreError::NotAllocated(cid))?;
        let plain = inner.read_verified(&loc, RecordKind::ChunkData)?;
        let (stored_id, data) =
            decode_chunk_payload(&plain).map_err(|m| ChunkStoreError::TamperDetected(m.0))?;
        if stored_id != cid {
            return Err(ChunkStoreError::TamperDetected(format!(
                "snapshot chunk {cid:?} record claims {stored_id:?}"
            )));
        }
        Ok(data.to_vec())
    }

    /// Compare two snapshots (the engine of incremental backups).
    pub fn diff_snapshots(&self, old: &Snapshot, new: &Snapshot) -> SnapshotDiff {
        diff_roots(
            &old.core.root,
            old.core.depth,
            &new.core.root,
            new.core.depth,
            old.core.fanout,
        )
    }

    /// What crash recovery found and did, if this handle was produced by
    /// [`ChunkStore::open`] (a freshly created store has no report).
    pub fn recovery_report(&self) -> Option<recovery::RecoveryReport> {
        self.inner.lock().recovery.clone()
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.lock().stats.snapshot()
    }

    /// The store's observability registry: the `chunk.*` counters behind
    /// [`ChunkStore::stats`] plus commit/checkpoint/cleaner/recovery phase
    /// histograms. Higher layers (object/collection/backup stores) register
    /// their instruments here too, so one registry describes a whole stack.
    pub fn obs(&self) -> Arc<tdb_obs::Registry> {
        self.inner.lock().stats.registry().clone()
    }

    /// Current database utilization (live bytes / in-use capacity).
    pub fn utilization(&self) -> f64 {
        self.inner.lock().segs.utilization()
    }

    /// On-disk footprint of the log in bytes.
    pub fn disk_size(&self) -> u64 {
        self.inner.lock().segs.disk_size()
    }

    /// Number of live chunks.
    pub fn live_chunks(&self) -> u64 {
        self.inner.lock().map.live_count()
    }

    /// The security mode the store runs in.
    pub fn security(&self) -> SecurityMode {
        self.inner.lock().cfg.security
    }

    /// Whether `cid` is currently allocated (committed or staged).
    pub fn is_allocated(&self, cid: ChunkId) -> bool {
        self.inner.lock().is_allocated(cid)
    }

    /// Largest chunk this configuration accepts.
    pub fn max_chunk_size(&self) -> usize {
        self.inner.lock().max_chunk_size()
    }

    /// Accounting audit (diagnostics): `(accounted_live, walked_live,
    /// in_use_segments, free_segments, pending_decrements)`.
    /// `accounted_live` is the segment manager's running per-segment sum;
    /// `walked_live` recomputes it from the in-memory map (entries plus
    /// clean pages). At a quiescent point (right after a checkpoint, no
    /// batch staged) the two must agree exactly.
    #[doc(hidden)]
    pub fn debug_accounting(&self) -> (u64, u64, usize, usize, usize) {
        let inner = self.inner.lock();
        let mut walked = 0u64;
        inner
            .map
            .for_each_entry(&mut |_, loc| walked += loc.len as u64);
        inner.map.for_each_page(&mut |loc| walked += loc.len as u64);
        (
            inner.segs.total_live(),
            walked,
            inner.segs.in_use_segments().len(),
            inner.segs.free_count(),
            inner.pending_dec.len(),
        )
    }

    /// Return ids that were allocated but never written back to the free
    /// pool (used by the object store when a transaction that inserted
    /// objects aborts). Ids with committed or staged state are ignored.
    pub fn release_unwritten_ids(&self, ids: &[ChunkId]) {
        let mut inner = self.inner.lock();
        for id in ids {
            if id.0 < inner.next_id
                && inner.map.get(*id).is_none()
                && !inner.batch.ops.contains_key(&id.0)
            {
                inner.free_ids.insert(id.0);
            }
        }
    }

    /// Install a full database image at exact chunk ids — the backup
    /// store's validated-restore primitive. The store must be empty (fresh
    /// `create`). Ids below the restored high-water mark that are absent
    /// from the image become free.
    pub fn restore_image(&self, chunks: Vec<(ChunkId, Vec<u8>)>) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.map.live_count() != 0 || !inner.batch.ops.is_empty() {
            return Err(ChunkStoreError::ConfigMismatch(
                "restore_image requires an empty store".into(),
            ));
        }
        let max_id = chunks.iter().map(|(id, _)| id.0).max();
        if let Some(max_id) = max_id {
            let present: HashSet<u64> = chunks.iter().map(|(id, _)| id.0).collect();
            inner.next_id = max_id + 1;
            inner.free_ids = (0..=max_id).filter(|i| !present.contains(i)).collect();
        }
        for (id, data) in chunks {
            inner.batch.ops.insert(id.0, Some(data));
        }
        inner.commit(true)
    }

    /// Apply an incremental delta at exact chunk ids (backup restore). Ids
    /// newly above the high-water mark extend it; removed ids become free.
    pub fn apply_restore_delta(
        &self,
        writes: Vec<(ChunkId, Vec<u8>)>,
        removes: Vec<ChunkId>,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.batch.ops.is_empty() {
            return Err(ChunkStoreError::ConfigMismatch(
                "apply_restore_delta with operations staged".into(),
            ));
        }
        for (id, data) in writes {
            if id.0 >= inner.next_id {
                for gap in inner.next_id..id.0 {
                    inner.free_ids.insert(gap);
                }
                inner.next_id = id.0 + 1;
            }
            inner.free_ids.remove(&id.0);
            inner.batch.ops.insert(id.0, Some(data));
        }
        for id in removes {
            inner.batch.ops.insert(id.0, None);
        }
        inner.commit(true)
    }
}
