//! On-disk layout: segment headers and log record encoding.
//!
//! A log segment file starts with a segment header ([`encode_segment_header`]) and is followed by a
//! sequence of records, each `kind(1) || payload_len(4 LE) || payload`.
//! Records never span segments; when the tail segment cannot fit the next
//! record, a [`RecordKind::NextSegment`] record closes it and the log
//! continues in a fresh segment.
//!
//! Record payloads:
//!
//! * `ChunkData` — sealed `chunk_id(8) || chunk bytes`. The id lives inside
//!   the ciphertext so the untrusted store cannot link multiple versions of
//!   the same chunk (the paper's traffic-analysis point, §3.2.1).
//! * `MapPage` — a sealed serialized location-map page (see [`crate::map`]).
//! * `Commit` — sealed [`CommitPayload`] followed by the 32-byte commit
//!   chain value. The chain authenticates the whole residual log during
//!   recovery.
//! * `NextSegment` — plaintext successor segment id.
//!
//! All decoding is *defensive*: these bytes come from attacker-controlled
//! storage, so every read is bounds-checked and malformed input yields
//! [`Malformed`], never a panic.

use crate::ids::{ChunkId, SegmentId};
use crate::map::Location;
use tdb_crypto::{Digest, DIGEST_LEN};

/// Length of the per-record header: kind byte + payload length.
pub const RECORD_HEADER_LEN: u32 = 5;

/// Length of the segment header at offset 0 of every segment file.
pub const SEGMENT_HEADER_LEN: u32 = 16;

/// Magic prefix of segment files.
pub const SEGMENT_MAGIC: [u8; 8] = *b"TDBSEG01";

/// Payload size of a `NextSegment` record.
pub const NEXT_SEGMENT_PAYLOAD_LEN: u32 = 4;

/// Total on-disk size of a `NextSegment` record.
pub const NEXT_SEGMENT_RECORD_LEN: u32 = RECORD_HEADER_LEN + NEXT_SEGMENT_PAYLOAD_LEN;

/// Error for structurally invalid on-disk bytes. During recovery a
/// malformed record marks the end of the usable log (crash garbage); in any
/// other context it is escalated to tamper detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Malformed(pub String);

/// Kinds of log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A committed chunk version.
    ChunkData,
    /// A location-map page written at a checkpoint.
    MapPage,
    /// A commit record closing a batch of writes.
    Commit,
    /// Log continues in another segment.
    NextSegment,
}

impl RecordKind {
    /// Byte tag.
    pub fn tag(self) -> u8 {
        match self {
            RecordKind::ChunkData => 1,
            RecordKind::MapPage => 2,
            RecordKind::Commit => 3,
            RecordKind::NextSegment => 4,
        }
    }

    /// Parse a byte tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(RecordKind::ChunkData),
            2 => Some(RecordKind::MapPage),
            3 => Some(RecordKind::Commit),
            4 => Some(RecordKind::NextSegment),
            _ => None,
        }
    }
}

/// Encode a segment header.
pub fn encode_segment_header(seg: SegmentId) -> [u8; SEGMENT_HEADER_LEN as usize] {
    let mut out = [0u8; SEGMENT_HEADER_LEN as usize];
    out[..8].copy_from_slice(&SEGMENT_MAGIC);
    out[8..12].copy_from_slice(&seg.0.to_le_bytes());
    out
}

/// Validate a segment header, returning the stored segment id.
pub fn decode_segment_header(bytes: &[u8]) -> Result<SegmentId, Malformed> {
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Err(Malformed("segment header truncated".into()));
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(Malformed("bad segment magic".into()));
    }
    let id = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    Ok(SegmentId(id))
}

/// Encode a record header.
pub fn encode_record_header(
    kind: RecordKind,
    payload_len: u32,
) -> [u8; RECORD_HEADER_LEN as usize] {
    let mut out = [0u8; RECORD_HEADER_LEN as usize];
    out[0] = kind.tag();
    out[1..5].copy_from_slice(&payload_len.to_le_bytes());
    out
}

/// Decode a record header into (kind, payload length).
pub fn decode_record_header(bytes: &[u8]) -> Result<(RecordKind, u32), Malformed> {
    if bytes.len() < RECORD_HEADER_LEN as usize {
        return Err(Malformed("record header truncated".into()));
    }
    let kind = RecordKind::from_tag(bytes[0])
        .ok_or_else(|| Malformed(format!("unknown record kind {}", bytes[0])))?;
    let len = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
    Ok((kind, len))
}

// ---------------------------------------------------------------------------
// Byte cursor helpers
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over untrusted bytes.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a byte slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], Malformed> {
        if self.remaining() < n {
            return Err(Malformed(format!(
                "needed {n} bytes, only {} remain",
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, Malformed> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, Malformed> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, Malformed> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a 32-byte digest.
    pub fn digest(&mut self) -> Result<Digest, Malformed> {
        Ok(self.take(DIGEST_LEN)?.try_into().expect("32"))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], Malformed> {
        self.take(n)
    }

    /// Assert everything was consumed.
    pub fn finish(self) -> Result<(), Malformed> {
        if self.remaining() != 0 {
            return Err(Malformed(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

/// Append a [`Location`] to an output buffer. With `with_hash` the digest
/// is included (44 bytes); without, only the 12-byte position — the paper's
/// TDB-without-security configuration, which is why TDB-S pays extra
/// per-chunk map overhead "because it stores one-way hashes in the location
/// map" (§7.4).
pub fn put_location(out: &mut Vec<u8>, loc: &Location, with_hash: bool) {
    out.extend_from_slice(&loc.seg.0.to_le_bytes());
    out.extend_from_slice(&loc.off.to_le_bytes());
    out.extend_from_slice(&loc.len.to_le_bytes());
    if with_hash {
        out.extend_from_slice(&loc.hash);
    }
}

/// Read a [`Location`] (hash zeroed when `with_hash` is false).
pub fn get_location(c: &mut Cursor<'_>, with_hash: bool) -> Result<Location, Malformed> {
    Ok(Location {
        seg: SegmentId(c.u32()?),
        off: c.u32()?,
        len: c.u32()?,
        hash: if with_hash {
            c.digest()?
        } else {
            [0u8; DIGEST_LEN]
        },
    })
}

/// Serialized byte size of a [`Location`].
pub const fn location_len(with_hash: bool) -> usize {
    if with_hash {
        12 + DIGEST_LEN
    } else {
        12
    }
}

/// Serialized byte size of a [`Location`] with hash (anchor and tests).
pub const LOCATION_LEN: usize = 12 + DIGEST_LEN;

// ---------------------------------------------------------------------------
// ChunkData payload
// ---------------------------------------------------------------------------

/// Build the plaintext `ChunkData` payload for a chunk.
pub fn encode_chunk_payload(id: ChunkId, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + data.len());
    out.extend_from_slice(&id.0.to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Split a decrypted `ChunkData` payload into (id, chunk bytes).
pub fn decode_chunk_payload(plain: &[u8]) -> Result<(ChunkId, &[u8]), Malformed> {
    if plain.len() < 8 {
        return Err(Malformed("chunk payload shorter than id".into()));
    }
    let id = u64::from_le_bytes(plain[..8].try_into().expect("8"));
    Ok((ChunkId(id), &plain[8..]))
}

// ---------------------------------------------------------------------------
// Commit payload
// ---------------------------------------------------------------------------

/// The plaintext contents of a commit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitPayload {
    /// Monotonic commit sequence number.
    pub seq: u64,
    /// Whether the application requested durability for this commit.
    pub durable: bool,
    /// High-water mark of allocated chunk ids after this commit.
    pub next_id: u64,
    /// Chunk versions written by this commit and where they landed.
    pub writes: Vec<(ChunkId, Location)>,
    /// Chunk ids deallocated by this commit.
    pub deallocs: Vec<ChunkId>,
}

impl CommitPayload {
    /// Serialize. `with_hash` matches the store's security mode: TDB-S
    /// persists the per-chunk digest, plain TDB does not.
    pub fn encode(&self, with_hash: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            25 + self.writes.len() * (8 + location_len(with_hash)) + self.deallocs.len() * 8,
        );
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.durable as u8);
        out.extend_from_slice(&self.next_id.to_le_bytes());
        out.extend_from_slice(&(self.writes.len() as u32).to_le_bytes());
        for (id, loc) in &self.writes {
            out.extend_from_slice(&id.0.to_le_bytes());
            put_location(&mut out, loc, with_hash);
        }
        out.extend_from_slice(&(self.deallocs.len() as u32).to_le_bytes());
        for id in &self.deallocs {
            out.extend_from_slice(&id.0.to_le_bytes());
        }
        out
    }

    /// Deserialize (defensive).
    pub fn decode(bytes: &[u8], with_hash: bool) -> Result<Self, Malformed> {
        let mut c = Cursor::new(bytes);
        let seq = c.u64()?;
        let durable = match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(Malformed(format!("bad durable flag {other}"))),
        };
        let next_id = c.u64()?;
        let n_writes = c.u32()? as usize;
        if n_writes > bytes.len() {
            return Err(Malformed("write count exceeds payload size".into()));
        }
        let mut writes = Vec::with_capacity(n_writes);
        for _ in 0..n_writes {
            let id = ChunkId(c.u64()?);
            let loc = get_location(&mut c, with_hash)?;
            writes.push((id, loc));
        }
        let n_deallocs = c.u32()? as usize;
        if n_deallocs > bytes.len() {
            return Err(Malformed("dealloc count exceeds payload size".into()));
        }
        let mut deallocs = Vec::with_capacity(n_deallocs);
        for _ in 0..n_deallocs {
            deallocs.push(ChunkId(c.u64()?));
        }
        c.finish()?;
        Ok(CommitPayload {
            seq,
            durable,
            next_id,
            writes,
            deallocs,
        })
    }
}

// ---------------------------------------------------------------------------
// NextSegment payload
// ---------------------------------------------------------------------------

/// Encode a `NextSegment` payload.
pub fn encode_next_segment(seg: SegmentId) -> [u8; NEXT_SEGMENT_PAYLOAD_LEN as usize] {
    seg.0.to_le_bytes()
}

/// Decode a `NextSegment` payload.
pub fn decode_next_segment(bytes: &[u8]) -> Result<SegmentId, Malformed> {
    if bytes.len() != NEXT_SEGMENT_PAYLOAD_LEN as usize {
        return Err(Malformed("bad NextSegment payload length".into()));
    }
    Ok(SegmentId(u32::from_le_bytes(bytes.try_into().expect("4"))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(seg: u32, off: u32, len: u32, h: u8) -> Location {
        Location {
            seg: SegmentId(seg),
            off,
            len,
            hash: [h; 32],
        }
    }

    #[test]
    fn segment_header_roundtrip() {
        let enc = encode_segment_header(SegmentId(42));
        assert_eq!(decode_segment_header(&enc).unwrap(), SegmentId(42));
        let mut bad = enc;
        bad[0] ^= 1;
        assert!(decode_segment_header(&bad).is_err());
        assert!(decode_segment_header(&enc[..10]).is_err());
    }

    #[test]
    fn record_header_roundtrip() {
        for kind in [
            RecordKind::ChunkData,
            RecordKind::MapPage,
            RecordKind::Commit,
            RecordKind::NextSegment,
        ] {
            let enc = encode_record_header(kind, 12345);
            assert_eq!(decode_record_header(&enc).unwrap(), (kind, 12345));
        }
        assert!(decode_record_header(&[99, 0, 0, 0, 0]).is_err());
        assert!(decode_record_header(&[1, 0]).is_err());
    }

    #[test]
    fn chunk_payload_roundtrip() {
        let enc = encode_chunk_payload(ChunkId(7), b"state");
        let (id, data) = decode_chunk_payload(&enc).unwrap();
        assert_eq!(id, ChunkId(7));
        assert_eq!(data, b"state");
        assert!(decode_chunk_payload(&enc[..4]).is_err());
        // Empty chunk body is legal.
        let empty = encode_chunk_payload(ChunkId(1), b"");
        let (id, data) = decode_chunk_payload(&empty).unwrap();
        assert_eq!((id, data.len()), (ChunkId(1), 0));
    }

    #[test]
    fn commit_payload_roundtrip() {
        let payload = CommitPayload {
            seq: 99,
            durable: true,
            next_id: 1000,
            writes: vec![
                (ChunkId(1), loc(0, 16, 100, 0xAA)),
                (ChunkId(2), loc(1, 32, 50, 0xBB)),
            ],
            deallocs: vec![ChunkId(3), ChunkId(4)],
        };
        let enc = payload.encode(true);
        assert_eq!(CommitPayload::decode(&enc, true).unwrap(), payload);
        // Hash-free encoding is smaller and round-trips positions.
        let slim = payload.encode(false);
        assert!(slim.len() < enc.len());
        let decoded = CommitPayload::decode(&slim, false).unwrap();
        assert_eq!(decoded.writes[0].0, payload.writes[0].0);
        assert_eq!(decoded.writes[0].1.off, payload.writes[0].1.off);
        assert_eq!(decoded.writes[0].1.hash, [0u8; 32]);
    }

    #[test]
    fn commit_payload_empty_roundtrip() {
        let payload = CommitPayload {
            seq: 1,
            durable: false,
            next_id: 0,
            writes: vec![],
            deallocs: vec![],
        };
        assert_eq!(
            CommitPayload::decode(&payload.encode(true), true).unwrap(),
            payload
        );
        assert_eq!(
            CommitPayload::decode(&payload.encode(false), false).unwrap(),
            payload
        );
    }

    #[test]
    fn commit_payload_rejects_malformed() {
        let payload = CommitPayload {
            seq: 1,
            durable: true,
            next_id: 5,
            writes: vec![(ChunkId(1), loc(0, 0, 1, 1))],
            deallocs: vec![],
        };
        let enc = payload.encode(true);
        // Truncation at every length must fail cleanly, never panic.
        for cut in 0..enc.len() {
            assert!(
                CommitPayload::decode(&enc[..cut], true).is_err(),
                "cut {cut}"
            );
        }
        // Trailing garbage rejected.
        let mut extended = enc.clone();
        extended.push(0);
        assert!(CommitPayload::decode(&extended, true).is_err());
        // Absurd counts rejected without allocation blowup.
        let mut bogus = enc.clone();
        bogus[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(CommitPayload::decode(&bogus, true).is_err());
        // Bad durable flag.
        let mut bad_flag = enc;
        bad_flag[8] = 7;
        assert!(CommitPayload::decode(&bad_flag, true).is_err());
    }

    #[test]
    fn next_segment_roundtrip() {
        let enc = encode_next_segment(SegmentId(9));
        assert_eq!(decode_next_segment(&enc).unwrap(), SegmentId(9));
        assert!(decode_next_segment(&[1, 2, 3]).is_err());
    }

    #[test]
    fn cursor_is_bounds_checked() {
        let mut c = Cursor::new(&[1, 2, 3]);
        assert_eq!(c.u8().unwrap(), 1);
        assert!(c.u32().is_err());
        assert_eq!(c.remaining(), 2);
        assert!(Cursor::new(&[0; 31]).digest().is_err());
        assert!(Cursor::new(&[0; 3]).finish().is_err());
        assert!(Cursor::new(&[]).finish().is_ok());
    }
}
