//! Operation counters.
//!
//! The paper's evaluation reports quantities like bytes written per
//! transaction (§7.4: "Berkeley DB writes approximately twice as much data
//! per transaction as TDB") and cleaning overhead versus utilization
//! (Figure 11). These counters make the same quantities observable here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Live atomic counters shared across chunk store components.
        #[derive(Default)]
        pub struct Stats {
            $( $(#[$doc])* pub $name: AtomicU64, )*
        }

        /// A point-in-time copy of [`Stats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )*
        }

        impl Stats {
            /// Snapshot all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.load(Ordering::Relaxed), )*
                }
            }
        }

        impl StatsSnapshot {
            /// Difference since `earlier` (per-interval measurements).
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.wrapping_sub(earlier.$name), )*
                }
            }
        }
    };
}

counters! {
    /// Total bytes appended to the log (records incl. headers).
    bytes_appended,
    /// Bytes appended for chunk-data records only.
    chunk_bytes_appended,
    /// Bytes appended for map pages.
    map_bytes_appended,
    /// Bytes appended for commit records.
    commit_bytes_appended,
    /// Records appended.
    records_appended,
    /// Commits (durable + nondurable), excluding internal empty ones.
    commits,
    /// Durable commits.
    durable_commits,
    /// Checkpoints taken.
    checkpoints,
    /// `sync` calls issued to the untrusted store.
    syncs,
    /// Anchor records written.
    anchor_writes,
    /// One-way counter increments.
    counter_increments,
    /// Chunk reads served (from the log, not the write batch).
    chunk_reads,
    /// Bytes of records read back.
    bytes_read,
    /// Cleaner passes executed.
    cleaner_passes,
    /// Bytes the cleaner copied to relocate live data.
    cleaner_bytes_copied,
    /// Segments the cleaner freed.
    cleaner_segments_freed,
    /// Segments allocated beyond the initial set (growth).
    segments_grown,
    /// Free segment files dropped to shrink the database.
    segments_dropped,
}

/// Shared handle.
pub type SharedStats = Arc<Stats>;

/// Convenience: add to a counter.
pub(crate) fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Stats::default();
        add(&s.commits, 5);
        add(&s.bytes_appended, 100);
        let a = s.snapshot();
        assert_eq!(a.commits, 5);
        add(&s.commits, 2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 2);
        assert_eq!(d.bytes_appended, 0);
    }
}
