//! Operation counters and commit-path phase timings.
//!
//! The paper's evaluation reports quantities like bytes written per
//! transaction (§7.4: "Berkeley DB writes approximately twice as much data
//! per transaction as TDB") and cleaning overhead versus utilization
//! (Figure 11). These counters make the same quantities observable here.
//!
//! Counters live in a per-store [`tdb_obs::Registry`] (names prefixed
//! `chunk.`), so the legacy [`StatsSnapshot`] API and the observability
//! registry read the *same* atomics — deltas taken through either view
//! reconcile by construction. The registry is created alongside `Stats` and
//! shared downward to the object/collection/backup layers via
//! [`ChunkStore::obs`](crate::ChunkStore::obs).

use std::sync::Arc;

use tdb_obs::{Counter, Histogram, Registry};

macro_rules! counters {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {
        /// Live counters shared across chunk store components. Each field is
        /// a [`Counter`] registered as `chunk.<field>` in the store's
        /// observability registry.
        pub struct Stats {
            registry: Arc<Registry>,
            /// Commit-path / maintenance phase timings.
            pub phases: Phases,
            /// Proof-carrying read counters (`proof.*`).
            pub proofs: ProofCounters,
            $( $(#[$doc])* pub $name: Counter, )*
        }

        /// A point-in-time copy of [`Stats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )*
        }

        impl Stats {
            /// Create stats registered in `registry` under the `chunk.`
            /// prefix.
            pub fn with_registry(registry: Arc<Registry>) -> Stats {
                Stats {
                    phases: Phases::with_registry(&registry),
                    proofs: ProofCounters::with_registry(&registry),
                    $( $name: registry.counter(concat!("chunk.", stringify!($name))), )*
                    registry,
                }
            }

            /// Snapshot all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.get(), )*
                }
            }
        }

        impl StatsSnapshot {
            /// Difference since `earlier` (per-interval measurements).
            pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.wrapping_sub(earlier.$name), )*
                }
            }

            /// Field-wise sum — aggregation across the shards of a
            /// [`ShardedChunkStore`](crate::ShardedChunkStore).
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $( $name: self.$name.wrapping_add(other.$name), )*
                }
            }
        }
    };
}

counters! {
    /// Total bytes appended to the log (records incl. headers).
    bytes_appended,
    /// Bytes appended for chunk-data records only.
    chunk_bytes_appended,
    /// Bytes appended for map pages.
    map_bytes_appended,
    /// Bytes appended for commit records.
    commit_bytes_appended,
    /// Records appended.
    records_appended,
    /// Commits (durable + nondurable), excluding internal empty ones.
    commits,
    /// Durable commits.
    durable_commits,
    /// Checkpoints taken.
    checkpoints,
    /// `sync` calls issued to the untrusted store.
    syncs,
    /// Anchor records written.
    anchor_writes,
    /// One-way counter increments.
    counter_increments,
    /// Chunk reads served (from the log, not the write batch).
    chunk_reads,
    /// Bytes of records read back.
    bytes_read,
    /// Cleaner passes executed.
    cleaner_passes,
    /// Bytes the cleaner copied to relocate live data.
    cleaner_bytes_copied,
    /// Segments the cleaner freed.
    cleaner_segments_freed,
    /// Segments allocated beyond the initial set (growth).
    segments_grown,
    /// Free segment files dropped to shrink the database.
    segments_dropped,
    /// Bounded relocation slices executed by cleaning passes.
    cleaner_slices,
    /// Relocation slices cut short by out-of-space on a fixed-size log;
    /// the pass still closes (checkpoint + frees) instead of aborting.
    cleaner_move_stalls,
    /// Times the maintenance thread woke to a kick (or shutdown).
    maintenance_wakeups,
    /// Maintenance rounds that ended with no free segment despite garbage
    /// existing (victims all pinned/tail, or the pass cap was hit).
    maintenance_gave_up,
    /// Commits that blocked on the maintenance backpressure path because
    /// the log was out of segments.
    maintenance_stalls,
    /// Diagnostic dumps emitted by the stall watchdog.
    watchdog_dumps,
}

impl Default for Stats {
    fn default() -> Self {
        Stats::with_registry(Arc::new(Registry::new()))
    }
}

impl Stats {
    /// The observability registry these counters live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

/// Counters for the proof-carrying read path, registered under the
/// `proof.` prefix (they describe the trust layer, not the log). They are
/// intentionally outside [`StatsSnapshot`] — consumers (the `fig_proofs`
/// bench, dashboards) read them through the observability registry.
pub struct ProofCounters {
    /// Proven reads served (bookmark captured).
    pub proven_reads: Counter,
    /// Chunk proofs actually constructed (deferred `prove()` calls).
    pub minted: Counter,
    /// Keyed (index-level) attestations minted.
    pub keyed_minted: Counter,
}

impl ProofCounters {
    fn with_registry(registry: &Registry) -> ProofCounters {
        ProofCounters {
            proven_reads: registry.counter("proof.proven_reads"),
            minted: registry.counter("proof.minted"),
            keyed_minted: registry.counter("proof.keyed_minted"),
        }
    }
}

/// Phase-span histograms (values in nanoseconds). Commit phases are
/// accumulated per commit: e.g. one `commit.seal` sample is the total crypto
/// time across every record sealed by that commit, so per-commit phase
/// samples sum to (approximately) the `commit.total` sample.
pub struct Phases {
    /// Chunk/commit-record payload encoding time per commit.
    pub serialize: Histogram,
    /// Encrypt + MAC (and record hashing) time per commit.
    pub seal: Histogram,
    /// Log append time per commit.
    pub append: Histogram,
    /// Location-map batch apply time per commit (in-memory tree update).
    pub map: Histogram,
    /// `sync` time per *commit-path* durable anchor round.
    pub sync: Histogram,
    /// Anchor record write time per commit-path durable anchor round.
    pub anchor: Histogram,
    /// One-way counter increment time per commit-path durable anchor round.
    pub counter: Histogram,
    /// Batched bottom-up Merkle rehash time per leader anchor round (the
    /// group's dirty root-to-leaf paths hashed in one pass).
    pub rehash: Histogram,
    /// `sync` time per maintenance-path (checkpoint/cleaner) anchor round.
    pub maint_sync: Histogram,
    /// Anchor write time per maintenance-path anchor round.
    pub maint_anchor: Histogram,
    /// Counter increment time per maintenance-path anchor round.
    pub maint_counter: Histogram,
    /// Batched Merkle memo pass deferred to the maintenance thread
    /// (consecutive leader rounds coalesce onto the latest frozen root).
    pub maint_rehash: Histogram,
    /// End-to-end durable commit time (staging seal through group
    /// durability).
    pub commit_total: Histogram,
    /// Commits made durable per group-commit anchor round (a value of 1
    /// means the leader anchored alone; >1 means followers amortized the
    /// sync/anchor/counter round).
    pub group_size: Histogram,
    /// Time a durable committer spends between finishing its log append
    /// and its group becoming durable (leader: its own anchor round;
    /// follower: waiting on the leader).
    pub group_wait: Histogram,
    /// Checkpoint duration.
    pub checkpoint: Histogram,
    /// Cleaner pass duration.
    pub cleaner_pass: Histogram,
    /// One bounded relocation slice of a cleaning pass (store lock held).
    pub cleaner_slice: Histogram,
    /// Time a committer spent stalled waiting for maintenance to free a
    /// segment (the out-of-space backpressure path).
    pub stall: Histogram,
    /// Anchor scan + validation time during recovery.
    pub recovery_anchor: Histogram,
    /// Location-map load + Merkle validation time during recovery.
    pub recovery_map_load: Histogram,
    /// Residual-log replay time during recovery.
    pub recovery_replay: Histogram,
    /// Total open/recovery time.
    pub recovery_total: Histogram,
}

impl Phases {
    fn with_registry(registry: &Registry) -> Phases {
        Phases {
            serialize: registry.histogram("commit.serialize"),
            seal: registry.histogram("commit.seal"),
            append: registry.histogram("commit.append"),
            map: registry.histogram("commit.map"),
            sync: registry.histogram("commit.sync"),
            anchor: registry.histogram("commit.anchor"),
            counter: registry.histogram("commit.counter"),
            rehash: registry.histogram("commit.rehash"),
            maint_sync: registry.histogram("maint.sync"),
            maint_anchor: registry.histogram("maint.anchor"),
            maint_counter: registry.histogram("maint.counter"),
            maint_rehash: registry.histogram("maint.rehash"),
            commit_total: registry.histogram("commit.total"),
            group_size: registry.histogram("commit.group_size"),
            group_wait: registry.histogram("commit.group_wait"),
            checkpoint: registry.histogram("checkpoint.total"),
            cleaner_pass: registry.histogram("cleaner.pass"),
            cleaner_slice: registry.histogram("cleaner.slice"),
            stall: registry.histogram("commit.stall"),
            recovery_anchor: registry.histogram("recovery.anchor"),
            recovery_map_load: registry.histogram("recovery.map_load"),
            recovery_replay: registry.histogram("recovery.replay"),
            recovery_total: registry.histogram("recovery.total"),
        }
    }
}

/// Shared handle.
pub type SharedStats = Arc<Stats>;

/// Convenience: add to a counter.
pub(crate) fn add(counter: &Counter, n: u64) {
    counter.add(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Stats::default();
        add(&s.commits, 5);
        add(&s.bytes_appended, 100);
        let a = s.snapshot();
        assert_eq!(a.commits, 5);
        add(&s.commits, 2);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.commits, 2);
        assert_eq!(d.bytes_appended, 0);
    }

    #[test]
    fn registry_view_matches_snapshot() {
        let s = Stats::default();
        add(&s.commits, 3);
        add(&s.bytes_read, 42);
        let reg = s.registry().snapshot();
        assert_eq!(reg.counters["chunk.commits"], 3);
        assert_eq!(reg.counters["chunk.bytes_read"], 42);
        assert_eq!(s.snapshot().commits, 3);
    }
}
