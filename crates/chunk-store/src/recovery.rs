//! Opening an existing database: anchor validation, replay detection, map
//! loading, and residual-log replay.
//!
//! "Upon recovery, the portion of the log written since the last checkpoint
//! (which we call the residual log) is read to restore the latest committed
//! state of the database." (paper §3.2.1)
//!
//! The replay trusts nothing: every map page is validated against its
//! parent's hash on the way down (the Merkle path), and every commit record
//! must extend the keyed commit chain whose endpoint is stored in the
//! authenticated anchor. Commits beyond the anchor's `last_seq` are
//! *nondurable leftovers* and are discarded — exactly the §3.2.2 semantics
//! that a nondurable commit does not survive a crash. Failing to reach
//! `last_seq` means durable history is missing and is reported as
//! tampering.

use crate::anchor::AnchorStore;
use crate::config::{ChunkStoreConfig, SecurityMode};
use crate::crypto_ctx::CryptoCtx;
use crate::error::{ChunkStoreError, Result};
use crate::ids::SegmentId;
use crate::layout::{
    decode_next_segment, CommitPayload, RecordKind, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN,
};
use crate::map::{Location, LocationMap};
use crate::segment::SegmentManager;
use crate::stats::{SharedStats, Stats};
use crate::store::{iv_salt, Inner};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use tdb_crypto::DIGEST_LEN;
use tdb_platform::{OneWayCounter, SecretStore, UntrustedStore};

/// What crash recovery found and did, for post-mortem assertions by crash
/// tests (and diagnostics). Produced by every successful `ChunkStore::open`.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Anchor generation that recovery started from.
    pub anchor_seq: u64,
    /// Commit sequence at the residual-log start (last checkpoint).
    pub base_seq: u64,
    /// Last durable commit the anchor covers.
    pub last_seq: u64,
    /// Durable commits replayed from the residual log
    /// (`last_seq - base_seq`).
    pub commits_replayed: u64,
    /// Well-formed, chain-authenticated commits found *past* `last_seq` and
    /// discarded — nondurable leftovers that §3.2.2 guarantees do not
    /// survive a crash.
    pub nondurable_discarded: u64,
    /// Residual-log bytes re-applied.
    pub residual_bytes: u64,
    /// One-way counter value the anchor was authenticated against.
    pub counter_value: u64,
    /// Whether recovery completed a counter increment that a crash
    /// interrupted between the anchor write and the increment.
    pub counter_repaired: bool,
}

pub(crate) fn open_impl(
    untrusted: Arc<dyn UntrustedStore>,
    secret: &dyn SecretStore,
    counter: Arc<dyn OneWayCounter>,
    cfg: ChunkStoreConfig,
) -> Result<Inner> {
    cfg.validate().map_err(ChunkStoreError::ConfigMismatch)?;
    let stats: SharedStats = Arc::new(Stats::default());
    let mut sw = tdb_obs::Stopwatch::start();
    let mut total_ns = 0u64;
    let ctx = CryptoCtx::new(cfg.security, secret, iv_salt(&*counter))?;
    let anchor = AnchorStore::new(&*untrusted).read_best(&ctx)?;

    if anchor.segment_size != cfg.segment_size {
        return Err(ChunkStoreError::ConfigMismatch(format!(
            "segment size: store {} vs config {}",
            anchor.segment_size, cfg.segment_size
        )));
    }
    if anchor.map_fanout != cfg.map_fanout as u32 {
        return Err(ChunkStoreError::ConfigMismatch(format!(
            "map fanout: store {} vs config {}",
            anchor.map_fanout, cfg.map_fanout
        )));
    }

    // Replay detection against the one-way counter (§3). `anchor == hw + 1`
    // is the benign crash window between anchor write and counter
    // increment; it is repaired by completing the increment.
    let mut counter_repaired = false;
    if cfg.security == SecurityMode::Full {
        let hw = counter.read()?;
        if anchor.counter_value == hw + 1 {
            counter.increment()?;
            counter_repaired = true;
        } else if anchor.counter_value != hw {
            return Err(ChunkStoreError::ReplayDetected {
                anchor_counter: anchor.counter_value,
                hardware_counter: hw,
            });
        }
    }

    if sw.running() {
        let ns = sw.lap();
        total_ns += ns;
        stats.phases.recovery_anchor.record(ns);
    }
    let mut segs = SegmentManager::open_existing(
        untrusted.clone(),
        cfg.segment_size,
        cfg.allow_growth,
        stats.clone(),
    )?;

    // Load the whole location map, validating every page hash against its
    // parent (root hash comes from the authenticated anchor).
    let mut map = {
        let segs_ref = &segs;
        let ctx_ref = &ctx;
        let reader = |loc: &Location| -> Result<Vec<u8>> {
            let stored = segs_ref.read_record(loc, RecordKind::MapPage)?;
            if ctx_ref.verifies_hashes()
                && !CryptoCtx::tags_equal(&ctx_ref.hash(&stored), &loc.hash)
            {
                return Err(ChunkStoreError::TamperDetected(format!(
                    "map page at {loc:?} hash mismatch"
                )));
            }
            ctx_ref.open(stored.as_slice())
        };
        LocationMap::load(
            anchor.map_root,
            anchor.map_depth,
            cfg.map_fanout,
            cfg.security == SecurityMode::Full,
            &reader,
        )?
    };
    if sw.running() {
        let ns = sw.lap();
        total_ns += ns;
        stats.phases.recovery_map_load.record(ns);
    }

    // ---- residual-log replay ------------------------------------------
    let mut free_ids: BTreeSet<u64> = anchor.free_ids.iter().copied().collect();
    let mut next_id = anchor.next_id;
    let mut seg = anchor.residual_seg;
    let mut off = anchor.residual_off;
    let mut chain = anchor.chain_base;
    let mut seq = anchor.base_seq;
    let mut visited: HashSet<SegmentId> = std::iter::once(seg).collect();
    let mut residual_segments = visited.clone();
    let (mut tail_seg, mut tail_off) = (seg, off);
    let mut scanned_bytes = 0u64;
    let mut residual_bytes = 0u64;
    // Applied (durable) cursor vs the scanning cursor: past `last_seq` the
    // scan keeps following the chain as a *phantom* — counting nondurable
    // leftovers for the recovery report without applying them.
    let mut applied_seq = seq;
    let mut applied_chain = chain;
    let mut commits_replayed = 0u64;
    let mut nondurable_discarded = 0u64;

    if !segs.check_segment_header(seg)? {
        return Err(ChunkStoreError::TamperDetected(format!(
            "residual segment {seg:?} has an invalid header"
        )));
    }

    #[allow(clippy::while_let_loop)] // `continue` re-reads at a jumped position
    loop {
        let Some((kind, payload)) = segs.read_record_at(seg, off)? else {
            break;
        };
        let total = RECORD_HEADER_LEN + payload.len() as u32;
        match kind {
            RecordKind::NextSegment => {
                let Ok(next) = decode_next_segment(&payload) else {
                    break;
                };
                if visited.contains(&next)
                    || !segs.is_valid_segment(next)
                    || !segs.check_segment_header(next)?
                {
                    break;
                }
                visited.insert(next);
                seg = next;
                off = SEGMENT_HEADER_LEN;
                continue;
            }
            RecordKind::Commit => {
                if payload.len() < DIGEST_LEN {
                    break;
                }
                let (sealed, stored_chain) = payload.split_at(payload.len() - DIGEST_LEN);
                let computed = ctx.chain(&chain, sealed);
                let stored: [u8; DIGEST_LEN] = stored_chain.try_into().expect("exactly 32 bytes");
                if !CryptoCtx::tags_equal(&computed, &stored) {
                    // Either the benign end of the log (crash garbage /
                    // tampered nondurable tail) or missing durable history;
                    // the post-loop check distinguishes them.
                    break;
                }
                if seq + 1 > anchor.last_seq {
                    // Nondurable leftovers: guaranteed not to survive, but
                    // the report counts them. Any decode anomaly in this
                    // discarded tail is benign — it just ends the scan.
                    let Ok(plain) = ctx.open(sealed) else { break };
                    let Ok(cp) = CommitPayload::decode(&plain, ctx.verifies_hashes()) else {
                        break;
                    };
                    if cp.seq != seq + 1 {
                        break;
                    }
                    nondurable_discarded += 1;
                    seq = cp.seq;
                    chain = computed;
                } else {
                    let plain = ctx.open(sealed)?;
                    let cp = CommitPayload::decode(&plain, ctx.verifies_hashes()).map_err(|m| {
                        ChunkStoreError::TamperDetected(format!("commit record: {}", m.0))
                    })?;
                    if cp.seq != seq + 1 {
                        return Err(ChunkStoreError::TamperDetected(format!(
                            "commit sequence gap: expected {}, found {}",
                            seq + 1,
                            cp.seq
                        )));
                    }
                    for (id, loc) in &cp.writes {
                        map.set(*id, *loc);
                        free_ids.remove(&id.0);
                    }
                    for id in &cp.deallocs {
                        map.remove(*id);
                        free_ids.insert(id.0);
                    }
                    // The anchor may carry a higher high-water mark than an
                    // older replayed commit (ids allocated but only anchored
                    // later); never move backwards.
                    next_id = next_id.max(cp.next_id);
                    seq = cp.seq;
                    chain = computed;
                    applied_seq = seq;
                    applied_chain = chain;
                    commits_replayed += 1;
                    tail_seg = seg;
                    tail_off = off + total;
                    residual_segments = visited.clone();
                    residual_bytes = scanned_bytes + total as u64;
                }
            }
            RecordKind::ChunkData | RecordKind::MapPage => {}
        }
        off += total;
        scanned_bytes += total as u64;
    }

    if applied_seq != anchor.last_seq {
        return Err(ChunkStoreError::TamperDetected(format!(
            "residual log ends at commit {applied_seq}, but the anchor covers commit {}",
            anchor.last_seq
        )));
    }
    if applied_seq != anchor.base_seq && !CryptoCtx::tags_equal(&applied_chain, &anchor.last_chain)
    {
        return Err(ChunkStoreError::TamperDetected(
            "commit chain endpoint does not match the anchor".into(),
        ));
    }

    // Replay dirtied map pages; their superseded extents are the *current*
    // anchor's pages, which were never counted live below — discard.
    let _ = map.drain_superseded();

    // Rebuild per-segment live accounting from the recovered map.
    map.for_each_entry(&mut |_, loc| segs.add_live(loc.seg, loc.len as u64));
    map.for_each_page(&mut |loc| segs.add_live(loc.seg, loc.len as u64));

    segs.set_tail(tail_seg, tail_off);
    if sw.running() {
        let ns = sw.lap();
        total_ns += ns;
        stats.phases.recovery_replay.record(ns);
        stats.phases.recovery_total.record(total_ns);
    }

    let report = RecoveryReport {
        anchor_seq: anchor.anchor_seq,
        base_seq: anchor.base_seq,
        last_seq: anchor.last_seq,
        commits_replayed,
        nondurable_discarded,
        residual_bytes,
        counter_value: anchor.counter_value,
        counter_repaired,
    };

    Ok(Inner {
        cfg,
        ctx: Arc::new(ctx),
        counter,
        untrusted,
        segs,
        map,
        next_id,
        free_ids,
        commit_seq: applied_seq,
        chain: applied_chain,
        base_seq: anchor.base_seq,
        chain_base: anchor.chain_base,
        residual_start: (anchor.residual_seg, anchor.residual_off),
        residual_segments,
        residual_bytes,
        anchor_seq: anchor.anchor_seq,
        counter_value: anchor.counter_value,
        checkpointed_root: (anchor.map_root, anchor.map_depth),
        pending_dec: Vec::new(),
        snapshots: Vec::new(),
        sync_inflight: std::collections::BTreeSet::new(),
        anchor_io: std::sync::Arc::new(parking_lot::Mutex::new(())),
        pass_active: false,
        stats,
        recovery: Some(report),
    })
}
