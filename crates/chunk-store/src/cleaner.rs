//! The log cleaner: reclaiming obsolete chunk versions.
//!
//! "When a chunk is updated or deallocated, its previous version becomes
//! obsolete. Periodically, obsolete chunk versions must be reclaimed by a
//! log cleaner." (paper §3.2.1)
//!
//! A pass is three phases, so the background maintenance thread can run it
//! incrementally (releasing the store lock between relocation slices)
//! while the synchronous path runs all three under one lock hold:
//!
//! 1. [`select_victims`] settles accounting with a durable anchor
//!    (pending-dead extents are subtracted; nothing nondurable remains
//!    reclaim-blocked — the §3.2.2 rule), then picks victims: **all**
//!    fully dead segments (freed without copying), plus the lowest-live
//!    partial segments capped at `cleaner_batch` (excluding the tail,
//!    residual-log segments, and segments pinned by live snapshots) — the
//!    cap bounds per-pass cleaning cost (§3.2.1);
//! 2. [`relocate_slice`] relocates up to a bounded number of live chunk
//!    records verbatim (same sealed bytes, same hash — only the location
//!    changes). Each slice re-checks snapshot pins — a snapshot opened
//!    between slices still references old locations, so its victims are
//!    dropped from the plan — and re-fetches every chunk's current
//!    location, skipping chunks rewritten or deallocated since selection;
//! 3. [`finish_pass`] dirties the victims' live map pages and checkpoints —
//!    the new anchor references only the new locations, so a crash at any
//!    point leaves a recoverable database (an abandoned pass is just dead
//!    log tail) — then frees the still-dead, still-unpinned victims,
//!    truncating their files.
//!
//! Fully dead segments are freed without any copying, which is why low
//! database utilization makes cleaning nearly free (the Figure 11 effect:
//! at 50 % utilization "the cleaner does not run", i.e. never copies).

use crate::error::Result;
use crate::ids::SegmentId;
use crate::layout::RecordKind;
use crate::map::Location;
use crate::stats::add;
use crate::store::Inner;
use crate::ChunkId;
use std::collections::HashSet;

/// What a completed cleaning pass means for the caller. `Freed(0)` is not
/// the same as `NoGarbage`: victims existed but could not be freed (all
/// pinned mid-pass, or the pass's own checkpoint traffic re-used them), so
/// an out-of-space caller must treat the round as *gave up*, not clean.
pub(crate) enum CleanOutcome {
    /// Nothing reclaimable: every in-use segment is the tail, residual,
    /// pinned, or too full to be worth copying.
    NoGarbage,
    /// A pass ran to completion and freed this many segments.
    Freed(usize),
}

/// The persistent state of one in-flight cleaning pass: victims chosen by
/// [`select_victims`], chunk ids still to relocate. Locations are *not*
/// cached — each slice re-fetches them from the live map, so the plan
/// survives interleaved commits that rewrite or deallocate its chunks.
pub(crate) struct CleanPlan {
    victims: Vec<SegmentId>,
    victim_set: HashSet<SegmentId>,
    moves: Vec<ChunkId>,
    /// Cursor into `moves`: everything before it has been handled.
    next: usize,
}

/// Segments a live snapshot (or backup walking one) still references.
fn pinned_segments(inner: &mut Inner) -> HashSet<SegmentId> {
    inner.prune_snapshots();
    let mut pinned = HashSet::new();
    for weak in &inner.snapshots {
        if let Some(core) = weak.upgrade() {
            pinned.extend(core.referenced_segments());
        }
    }
    pinned
}

/// Phase 1: settle accounting and choose victims. Returns `None` when
/// there is nothing worth cleaning.
pub(crate) fn select_victims(inner: &mut Inner) -> Result<Option<CleanPlan>> {
    add(&inner.stats.cleaner_passes, 1);
    // Settle accounting: apply pending decrements under a durable anchor.
    // (A full checkpoint here would rewrite the whole dirty map a second
    // time per pass; the closing checkpoint is the one that matters for
    // correctness.)
    inner.segs.flush()?;
    inner.durable_anchor(true, crate::store::AnchorLane::Maintenance)?;

    let seg_size = inner.segs.segment_size() as u64;
    let tail = inner.segs.tail_pos().0;
    let pinned = pinned_segments(inner);

    let candidates: Vec<SegmentId> = inner
        .segs
        .in_use_segments()
        .into_iter()
        .filter(|s| {
            *s != tail
                && !inner.residual_segments.contains(s)
                && !pinned.contains(s)
                // Copying a nearly full segment frees almost nothing.
                && (inner.segs.live_of(*s) as f64) < seg_size as f64 * 0.95
        })
        .collect();
    // Fully dead segments are freed without copying and cost (almost)
    // nothing — take them all, every pass. Only *copy-requiring* victims
    // are capped by `cleaner_batch` (the §3.2.1 bound on per-pass
    // cleaning work). Capping dead segments too would let the pass's own
    // checkpoint traffic consume more segments than it frees, growing the
    // database without bound under map-heavy workloads.
    let (dead, mut partial): (Vec<SegmentId>, Vec<SegmentId>) = candidates
        .into_iter()
        .partition(|s| inner.segs.live_of(*s) == 0);
    partial.sort_by_key(|s| inner.segs.live_of(*s));
    partial.truncate(inner.cfg.cleaner_batch);
    let victims: Vec<SegmentId> = dead.into_iter().chain(partial).collect();
    if victims.is_empty() {
        return Ok(None);
    }
    let victim_set: HashSet<SegmentId> = victims.iter().copied().collect();

    let mut moves: Vec<ChunkId> = Vec::new();
    inner.map.for_each_entry(&mut |id, loc| {
        if victim_set.contains(&loc.seg) {
            moves.push(id);
        }
    });
    Ok(Some(CleanPlan {
        victims,
        victim_set,
        moves,
        next: 0,
    }))
}

/// Phase 2: relocate up to `max_chunks` live chunk records. Returns `true`
/// once the plan has no moves left. Safe to interleave with commits: a
/// snapshot opened since the previous slice drops its victims from the
/// plan, and every chunk's location is re-fetched from the live map.
///
/// Relocation appends obey the same last-segment reserve as ordinary
/// commits (see `SegmentManager::maintenance_mode`): on a fixed-size log
/// the final free segment is kept for the pass's *closing checkpoint*,
/// because only that checkpoint turns relocations into freed segments. A
/// relocation that hits out-of-space therefore does not abort the pass —
/// it truncates the remaining moves and reports the plan complete, so
/// [`finish_pass`] still checkpoints and frees the fully dead victims.
/// (The pre-reserve behavior — relocation consuming the last segment and
/// the whole pass erroring out before any free — wedged fixed logs at
/// zero free segments permanently.)
pub(crate) fn relocate_slice(
    inner: &mut Inner,
    plan: &mut CleanPlan,
    max_chunks: usize,
) -> Result<bool> {
    let mut sw = tdb_obs::Stopwatch::start();
    let pinned = pinned_segments(inner);
    if !pinned.is_empty() {
        plan.victims.retain(|v| {
            if pinned.contains(v) {
                plan.victim_set.remove(v);
                false
            } else {
                true
            }
        });
    }
    let mut done = 0usize;
    while done < max_chunks.max(1) && plan.next < plan.moves.len() {
        let id = plan.moves[plan.next];
        plan.next += 1;
        // Re-fetch: the chunk may have been rewritten or deallocated (or
        // its victim dropped from the plan) since selection.
        let Some(old) = inner.map.get(id) else {
            continue;
        };
        if !plan.victim_set.contains(&old.seg) {
            continue;
        }
        // The sealed bytes move verbatim, so the hash in the map entry
        // stays valid.
        let stored = inner.segs.read_record(&old, RecordKind::ChunkData)?;
        if inner.ctx.verifies_hashes()
            && !crate::crypto_ctx::CryptoCtx::tags_equal(&inner.ctx.hash(&stored), &old.hash)
        {
            return Err(crate::error::ChunkStoreError::TamperDetected(format!(
                "cleaner found corrupted chunk {id:?} at {old:?}"
            )));
        }
        let (seg, off, len) = match inner.segs.append_record(RecordKind::ChunkData, &stored) {
            Ok(t) => t,
            Err(e) if e.kind() == tdb_core::ErrorKind::OutOfSpace => {
                // No room to copy more live data. Stop moving and let the
                // pass close: the checkpoint (which may use the reserved
                // last segment) anchors what was already relocated, and
                // the fully dead victims still get freed.
                add(&inner.stats.cleaner_move_stalls, 1);
                plan.next = plan.moves.len();
                break;
            }
            Err(e) => return Err(e),
        };
        let new_loc = Location {
            seg,
            off,
            len,
            hash: old.hash,
        };
        if let Some(superseded) = inner.map.set(id, new_loc) {
            inner.pending_dec.push(superseded);
        }
        add(&inner.stats.cleaner_bytes_copied, len as u64);
        done += 1;
    }
    for s in inner.segs.drain_entered() {
        inner.residual_segments.insert(s);
    }
    add(&inner.stats.cleaner_slices, 1);
    tdb_obs::trace::emit(
        tdb_obs::TraceLayer::Maint,
        tdb_obs::TraceKind::MaintSlice,
        0,
        done as u64,
        (plan.moves.len() - plan.next) as u64,
    );
    if sw.running() {
        inner.stats.phases.cleaner_slice.record(sw.lap());
    }
    Ok(plan.next >= plan.moves.len())
}

/// Phase 3: make the relocations the anchored truth, then reclaim.
/// Returns the number of segments freed. A victim that a late snapshot
/// pinned, another pass freed, or the checkpoint re-used as the tail is
/// simply left alone — a future pass retries it.
pub(crate) fn finish_pass(inner: &mut Inner, plan: &CleanPlan) -> Result<usize> {
    if plan.victims.is_empty() {
        // Everything got pinned mid-pass. The relocations already
        // appended are ordinary log traffic for the next checkpoint; no
        // forced checkpoint needed.
        return Ok(0);
    }
    // Snapshots take the store lock, so the pin set cannot change between
    // this check and the frees below.
    let pinned = pinned_segments(inner);
    // Live map pages in victims are relocated by the closing checkpoint.
    inner.map.dirty_pages_in(&plan.victim_set);
    inner.do_checkpoint()?;

    let mut freed = 0;
    let tail_now = inner.segs.tail_pos().0;
    for v in &plan.victims {
        if *v != tail_now
            && !pinned.contains(v)
            && inner.segs.is_in_use(*v)
            && inner.segs.live_of(*v) == 0
        {
            inner.segs.free_segment(*v)?;
            freed += 1;
            add(&inner.stats.cleaner_segments_freed, 1);
            tdb_obs::trace::emit(
                tdb_obs::TraceLayer::Maint,
                tdb_obs::TraceKind::SegFree,
                0,
                v.0 as u64,
                inner.segs.free_count() as u64,
            );
        }
    }
    inner
        .segs
        .drop_excess_free(inner.cfg.free_segment_reserve)?;
    Ok(freed)
}

/// Run one synchronous cleaning pass under a continuous lock hold (the
/// inline-maintenance path; the background thread drives the same three
/// phases through `maintenance::incremental_pass`, unlocking between
/// slices).
pub(crate) fn clean_pass(inner: &mut Inner) -> Result<CleanOutcome> {
    let mut sw = tdb_obs::Stopwatch::start();
    let out = clean_pass_inner(inner);
    if sw.running() {
        inner.stats.phases.cleaner_pass.record(sw.lap());
    }
    out
}

fn clean_pass_inner(inner: &mut Inner) -> Result<CleanOutcome> {
    let Some(mut plan) = select_victims(inner)? else {
        return Ok(CleanOutcome::NoGarbage);
    };
    let slice = inner.cfg.maintenance_slice_chunks;
    while !relocate_slice(inner, &mut plan, slice)? {}
    finish_pass(inner, &plan).map(CleanOutcome::Freed)
}
