//! The log cleaner: reclaiming obsolete chunk versions.
//!
//! "When a chunk is updated or deallocated, its previous version becomes
//! obsolete. Periodically, obsolete chunk versions must be reclaimed by a
//! log cleaner." (paper §3.2.1)
//!
//! A pass:
//!
//! 1. settles accounting with a durable anchor (pending-dead extents are
//!    subtracted; nothing nondurable remains reclaim-blocked — the §3.2.2
//!    rule);
//! 2. picks victims: **all** fully dead segments (freed without copying),
//!    plus the lowest-live partial segments capped at `cleaner_batch`
//!    (excluding the tail, residual-log segments, and segments pinned by
//!    live snapshots) — the cap bounds per-commit cleaning cost (§3.2.1);
//! 3. relocates live chunk records verbatim (same sealed bytes, same hash —
//!    only the location changes) and dirties live map pages so the closing
//!    checkpoint rewrites them at the tail;
//! 4. checkpoints — the new anchor references only the new locations, so a
//!    crash at any point leaves a recoverable database — and frees the
//!    now-dead victims, truncating their files.
//!
//! Fully dead segments are freed without any copying, which is why low
//! database utilization makes cleaning nearly free (the Figure 11 effect:
//! at 50 % utilization "the cleaner does not run", i.e. never copies).

use crate::error::Result;
use crate::ids::SegmentId;
use crate::layout::RecordKind;
use crate::map::Location;
use crate::stats::add;
use crate::store::Inner;
use crate::ChunkId;
use std::collections::HashSet;

/// Run one cleaning pass. Returns the number of segments freed.
pub(crate) fn clean_pass(inner: &mut Inner) -> Result<usize> {
    let mut sw = tdb_obs::Stopwatch::start();
    let out = clean_pass_inner(inner);
    if sw.running() {
        inner.stats.phases.cleaner_pass.record(sw.lap());
    }
    out
}

fn clean_pass_inner(inner: &mut Inner) -> Result<usize> {
    add(&inner.stats.cleaner_passes, 1);
    // Settle accounting: apply pending decrements under a durable anchor.
    // (A full checkpoint here would rewrite the whole dirty map a second
    // time per pass; the closing checkpoint below is the one that matters
    // for correctness.)
    inner.segs.flush()?;
    inner.durable_anchor(true)?;

    let seg_size = inner.segs.segment_size() as u64;
    let tail = inner.segs.tail_pos().0;

    inner.prune_snapshots();
    let mut pinned: HashSet<SegmentId> = HashSet::new();
    for weak in &inner.snapshots {
        if let Some(core) = weak.upgrade() {
            pinned.extend(core.referenced_segments());
        }
    }

    let candidates: Vec<SegmentId> = inner
        .segs
        .in_use_segments()
        .into_iter()
        .filter(|s| {
            *s != tail
                && !inner.residual_segments.contains(s)
                && !pinned.contains(s)
                // Copying a nearly full segment frees almost nothing.
                && (inner.segs.live_of(*s) as f64) < seg_size as f64 * 0.95
        })
        .collect();
    // Fully dead segments are freed without copying and cost (almost)
    // nothing — take them all, every pass. Only *copy-requiring* victims
    // are capped by `cleaner_batch` (the §3.2.1 bound on per-commit
    // cleaning work). Capping dead segments too would let the pass's own
    // checkpoint traffic consume more segments than it frees, growing the
    // database without bound under map-heavy workloads.
    let (dead, mut partial): (Vec<SegmentId>, Vec<SegmentId>) = candidates
        .into_iter()
        .partition(|s| inner.segs.live_of(*s) == 0);
    partial.sort_by_key(|s| inner.segs.live_of(*s));
    partial.truncate(inner.cfg.cleaner_batch);
    let victims: Vec<SegmentId> = dead.into_iter().chain(partial).collect();
    if victims.is_empty() {
        return Ok(0);
    }
    let victim_set: HashSet<SegmentId> = victims.iter().copied().collect();

    // Relocate live chunk versions. The sealed bytes move verbatim, so the
    // hash in the map entry stays valid.
    let mut moves: Vec<(ChunkId, Location)> = Vec::new();
    inner.map.for_each_entry(&mut |id, loc| {
        if victim_set.contains(&loc.seg) {
            moves.push((id, *loc));
        }
    });
    for (id, old) in moves {
        let stored = inner.segs.read_record(&old, RecordKind::ChunkData)?;
        if inner.ctx.verifies_hashes()
            && !crate::crypto_ctx::CryptoCtx::tags_equal(&inner.ctx.hash(&stored), &old.hash)
        {
            return Err(crate::error::ChunkStoreError::TamperDetected(format!(
                "cleaner found corrupted chunk {id:?} at {old:?}"
            )));
        }
        let (seg, off, len) = inner.segs.append_record(RecordKind::ChunkData, &stored)?;
        let new_loc = Location {
            seg,
            off,
            len,
            hash: old.hash,
        };
        if let Some(superseded) = inner.map.set(id, new_loc) {
            inner.pending_dec.push(superseded);
        }
        add(&inner.stats.cleaner_bytes_copied, len as u64);
    }
    for s in inner.segs.drain_entered() {
        inner.residual_segments.insert(s);
    }

    // Live map pages in victims are relocated by the closing checkpoint.
    inner.map.dirty_pages_in(&victim_set);

    // Make the relocations the anchored truth, then reclaim.
    inner.do_checkpoint()?;

    let mut freed = 0;
    let tail_now = inner.segs.tail_pos().0;
    for v in victims {
        if v != tail_now && inner.segs.live_of(v) == 0 {
            inner.segs.free_segment(v)?;
            freed += 1;
            add(&inner.stats.cleaner_segments_freed, 1);
        }
    }
    inner
        .segs
        .drop_excess_free(inner.cfg.free_segment_reserve)?;
    Ok(freed)
}
