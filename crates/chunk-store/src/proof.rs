//! Proof-carrying reads: deferred construction of [`tdb_proof`] proofs.
//!
//! A proven read ([`ChunkStore::read_proven`](crate::ChunkStore::read_proven),
//! [`ChunkStore::proven_at_snapshot`](crate::ChunkStore::proven_at_snapshot))
//! returns a [`Proven<T>`]: the value plus a [`ProofBookmark`] — an `Arc`
//! of the pinned snapshot root, the chunk's leaf digests, and the counter
//! value observed at the pin. **No proof is built at read time**; the read
//! path pays only the bookmark. Calling [`Proven::prove`] later extracts
//! the Merkle path from the frozen root and mints the attestation and
//! content tags — all without touching the store lock, so proofs stay
//! stable (and cheap) under concurrent commits and cleaner relocation: the
//! frozen root's canonical hashes depend only on chunk *content*, never on
//! where the cleaner moved a record.

use std::sync::Arc;

use tdb_crypto::{sha256, Digest};
use tdb_proof::tree::{self, Attestation, ChunkOutcome, ChunkProof, ShardBinding};

use crate::crypto_ctx::CryptoCtx;
use crate::error::{ChunkStoreError, Result};
use crate::ids::ChunkId;
use crate::map;
use crate::snapshot::SnapCore;
use crate::stats::SharedStats;

/// Hook installed by the sharded store: minted at [`Proven::prove`] time,
/// it produces the root-of-roots [`tdb_proof::EpochRecord`] (under the
/// combiner's current state) spliced into the proof as a [`ShardBinding`].
pub(crate) type ShardHook = Arc<dyn Fn() -> Result<ShardBinding> + Send + Sync>;

/// What the read observed about the chunk, recorded in the bookmark.
#[derive(Clone)]
pub(crate) enum BookmarkOutcome {
    /// The chunk was present; both digests were captured at read time.
    Included {
        sealed_hash: Digest,
        plain_hash: Digest,
    },
    /// The chunk was absent at the pinned snapshot.
    Absent,
}

/// Everything needed to build a [`ChunkProof`] later, captured at read
/// time for (almost) free: a clone of the snapshot `Arc`, the digests the
/// read verified anyway, and the counter value pinned with the snapshot.
pub struct ProofBookmark {
    pub(crate) ctx: Arc<CryptoCtx>,
    pub(crate) core: Arc<SnapCore>,
    /// Id the proof path is walked with (shard-local on a sharded store).
    pub(crate) cid: ChunkId,
    /// Id the proof speaks about (global; equals `cid` when unsharded).
    pub(crate) proof_id: u64,
    pub(crate) outcome: BookmarkOutcome,
    pub(crate) shard: Option<ShardHook>,
    pub(crate) stats: SharedStats,
}

impl ProofBookmark {
    /// Build the proof from the pinned snapshot.
    pub fn prove(&self) -> Result<ChunkProof> {
        let mac_key = self.ctx.proof_mac_key();
        let (path, _) =
            map::proof_path_in_root(&self.core.root, self.core.depth, self.core.fanout, self.cid);
        let root_hash = path[0].hash();
        let depth = self.core.depth;
        let fanout = self.core.fanout as u32;
        let attestation = Attestation {
            counter_value: self.core.counter_value,
            commit_seq: self.core.seq,
            depth,
            fanout,
            tag: tree::attestation_tag(
                mac_key,
                self.core.counter_value,
                self.core.seq,
                depth,
                fanout,
                &root_hash,
            ),
        };
        let outcome = match &self.outcome {
            BookmarkOutcome::Included {
                sealed_hash,
                plain_hash,
            } => ChunkOutcome::Included {
                sealed_hash: *sealed_hash,
                plain_hash: *plain_hash,
                content_tag: tree::content_tag(mac_key, self.proof_id, sealed_hash, plain_hash),
            },
            BookmarkOutcome::Absent => ChunkOutcome::Absent,
        };
        let shard = match &self.shard {
            Some(hook) => Some(hook()?),
            None => None,
        };
        self.stats.proofs.minted.add(1);
        Ok(ChunkProof {
            chunk_id: self.proof_id,
            outcome,
            path,
            attestation,
            shard,
        })
    }
}

/// A value read from the store together with the deferred ability to prove
/// it: call [`Proven::prove`] to obtain the [`ChunkProof`] a standalone
/// [`tdb_proof::Verifier`] checks against a [`tdb_proof::TrustAnchor`].
pub struct Proven<T> {
    /// The value the read produced (`None` inside an `Option` means the
    /// chunk was absent — provable absence, not an error).
    pub value: T,
    pub(crate) bookmark: ProofBookmark,
}

impl<T> Proven<T> {
    /// Commit sequence of the snapshot the value (and proof) pin.
    pub fn commit_seq(&self) -> u64 {
        self.bookmark.core.seq
    }

    /// Counter value observed when the snapshot was pinned.
    pub fn counter_value(&self) -> u64 {
        self.bookmark.core.counter_value
    }

    /// Build the proof for this read. Pure function of the pinned
    /// snapshot: never touches the store lock, so it can run long after
    /// the read, concurrently with commits and cleaning.
    pub fn prove(&self) -> Result<ChunkProof> {
        self.bookmark.prove()
    }

    /// Transform the carried value while keeping the bookmark (used by
    /// the object layer to decode chunk bytes into typed objects).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Proven<U> {
        Proven {
            value: f(self.value),
            bookmark: self.bookmark,
        }
    }
}

/// Reject proof requests on a store without security: there is no MAC key
/// to mint attestations under, so a "proof" would be meaningless bytes.
pub(crate) fn require_full_security(ctx: &CryptoCtx) -> Result<()> {
    if ctx.mode() != crate::config::SecurityMode::Full {
        return Err(ChunkStoreError::ConfigMismatch(
            "proof-carrying reads require SecurityMode::Full \
             (a store created with SecurityMode::Off has no MAC keys to attest under)"
                .into(),
        ));
    }
    Ok(())
}

/// Digest of a plaintext value as bound by proof content tags.
pub(crate) fn plain_digest(value: &[u8]) -> Digest {
    sha256(value)
}
