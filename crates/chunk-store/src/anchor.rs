//! The trusted anchor: the single authenticated root of the database.
//!
//! "The resulting hash value along with the current value of the one-way
//! counter are signed with the secret key and stored at a known location in
//! the untrusted store" (paper §3). The anchor binds together:
//!
//! * the location **and hash** of the location-map root page (the Merkle
//!   root of the whole database),
//! * the residual-log start position and the commit-chain state needed to
//!   replay it,
//! * the one-way counter value (replay detection),
//! * allocation state (`next_id`, a bounded free-id list).
//!
//! It is double-buffered across two files (`anchor.a` / `anchor.b`) with a
//! monotonically increasing `anchor_seq`, so a crash torn mid-anchor-write
//! always leaves the previous valid anchor intact.

use crate::crypto_ctx::CryptoCtx;
use crate::error::{ChunkStoreError, Result};
use crate::ids::SegmentId;
use crate::layout::{get_location, put_location, Cursor, Malformed};
use crate::map::Location;
use tdb_crypto::Digest;
use tdb_platform::UntrustedStore;
use tdb_proof::{decode_slot, encode_slot, SlotPair};

const ANCHOR_MAGIC: [u8; 8] = *b"TDBANC01";
const SLOT_NAMES: [&str; 2] = ["anchor.a", "anchor.b"];

/// Decoded anchor contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnchorState {
    /// Monotonic anchor write sequence (slot arbitration).
    pub anchor_seq: u64,
    /// Segment size the store was created with.
    pub segment_size: u32,
    /// Map fanout the store was created with.
    pub map_fanout: u32,
    /// Location (and hash) of the checkpointed map root page.
    pub map_root: Location,
    /// Depth of the checkpointed map tree.
    pub map_depth: u32,
    /// Chunk-id high-water mark.
    pub next_id: u64,
    /// Free chunk ids (bounded; overflow ids simply leak).
    pub free_ids: Vec<u64>,
    /// Start of the residual log (first byte after the checkpoint).
    pub residual_seg: SegmentId,
    /// Offset within `residual_seg`.
    pub residual_off: u32,
    /// Commit sequence number at the residual start.
    pub base_seq: u64,
    /// Commit chain value at the residual start.
    pub chain_base: Digest,
    /// Sequence of the last durable commit.
    pub last_seq: u64,
    /// Chain value of the last durable commit.
    pub last_chain: Digest,
    /// One-way counter value this anchor was written under.
    pub counter_value: u64,
}

impl AnchorState {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(200 + self.free_ids.len() * 8);
        out.extend_from_slice(&self.anchor_seq.to_le_bytes());
        out.extend_from_slice(&self.segment_size.to_le_bytes());
        out.extend_from_slice(&self.map_fanout.to_le_bytes());
        put_location(&mut out, &self.map_root, true);
        out.extend_from_slice(&self.map_depth.to_le_bytes());
        out.extend_from_slice(&self.next_id.to_le_bytes());
        out.extend_from_slice(&(self.free_ids.len() as u32).to_le_bytes());
        for id in &self.free_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out.extend_from_slice(&self.residual_seg.0.to_le_bytes());
        out.extend_from_slice(&self.residual_off.to_le_bytes());
        out.extend_from_slice(&self.base_seq.to_le_bytes());
        out.extend_from_slice(&self.chain_base);
        out.extend_from_slice(&self.last_seq.to_le_bytes());
        out.extend_from_slice(&self.last_chain);
        out.extend_from_slice(&self.counter_value.to_le_bytes());
        out
    }

    fn decode_body(bytes: &[u8]) -> std::result::Result<Self, Malformed> {
        let mut c = Cursor::new(bytes);
        let anchor_seq = c.u64()?;
        let segment_size = c.u32()?;
        let map_fanout = c.u32()?;
        let map_root = get_location(&mut c, true)?;
        let map_depth = c.u32()?;
        let next_id = c.u64()?;
        let n_free = c.u32()? as usize;
        if n_free > bytes.len() {
            return Err(Malformed("free list count exceeds body".into()));
        }
        let mut free_ids = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free_ids.push(c.u64()?);
        }
        let residual_seg = SegmentId(c.u32()?);
        let residual_off = c.u32()?;
        let base_seq = c.u64()?;
        let chain_base = c.digest()?;
        let last_seq = c.u64()?;
        let last_chain = c.digest()?;
        let counter_value = c.u64()?;
        c.finish()?;
        Ok(AnchorState {
            anchor_seq,
            segment_size,
            map_fanout,
            map_root,
            map_depth,
            next_id,
            free_ids,
            residual_seg,
            residual_off,
            base_seq,
            chain_base,
            last_seq,
            last_chain,
            counter_value,
        })
    }

    /// Serialize to the on-disk slot format (framed and authenticated by
    /// the trust layer's [`encode_slot`]; byte-compatible with every
    /// earlier release — see the golden-vector test below).
    pub fn encode(&self, ctx: &CryptoCtx) -> Vec<u8> {
        encode_slot(ctx, &ANCHOR_MAGIC, self.anchor_seq, &self.encode_body())
    }

    /// Parse and authenticate a slot. Returns `Ok(None)` for an empty slot
    /// (never written), `Err` for a present-but-invalid slot. Framing,
    /// claimed-mode-first authentication, and the tamper/config-mismatch
    /// distinction live in [`decode_slot`]; this decodes the body and
    /// cross-checks the plaintext sequence against the sealed one.
    pub fn decode(ctx: &CryptoCtx, bytes: &[u8]) -> Result<Option<Self>> {
        let (seq, body) = match decode_slot(ctx, &ANCHOR_MAGIC, "anchor", bytes)? {
            Some(found) => found,
            None => return Ok(None),
        };
        let state = Self::decode_body(&body)
            .map_err(|m| ChunkStoreError::TamperDetected(format!("anchor: {}", m.0)))?;
        if state.anchor_seq != seq {
            return Err(ChunkStoreError::TamperDetected(
                "anchor: sequence number mismatch".into(),
            ));
        }
        Ok(Some(state))
    }
}

/// Reader/writer for the double-buffered anchor slots — a thin binding of
/// the trust layer's [`SlotPair`] to the anchor's magic, file names, and
/// body format.
pub struct AnchorStore<'a> {
    slots: SlotPair<'a>,
}

impl<'a> AnchorStore<'a> {
    /// Wrap an untrusted store.
    pub fn new(store: &'a dyn UntrustedStore) -> Self {
        AnchorStore {
            slots: SlotPair::new(store, ANCHOR_MAGIC, SLOT_NAMES, "anchor"),
        }
    }

    /// Whether any anchor slot exists (i.e. a database was created here).
    pub fn database_exists(&self) -> Result<bool> {
        Ok(self.slots.exists()?)
    }

    /// Read both slots and return the valid state with the highest
    /// `anchor_seq`. One invalid slot is tolerated **only** if it is the
    /// *older* write (a torn anchor update); an invalid newest-candidate is
    /// tampering. If neither slot exists, [`ChunkStoreError::NoDatabase`].
    pub fn read_best(&self, ctx: &CryptoCtx) -> Result<AnchorState> {
        let (seq, body) = self.slots.read_best(ctx)?;
        let state = AnchorState::decode_body(&body)
            .map_err(|m| ChunkStoreError::TamperDetected(format!("anchor: {}", m.0)))?;
        if state.anchor_seq != seq {
            return Err(ChunkStoreError::TamperDetected(
                "anchor: sequence number mismatch".into(),
            ));
        }
        Ok(state)
    }

    /// Write `state` into the slot *not* holding the current best anchor,
    /// then sync. Alternation follows `anchor_seq` parity, which is simple
    /// and deterministic.
    pub fn write(&self, ctx: &CryptoCtx, state: &AnchorState) -> Result<()> {
        Ok(self
            .slots
            .write(ctx, state.anchor_seq, &state.encode_body())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecurityMode;
    use tdb_platform::{MemSecretStore, MemStore};

    fn ctx(mode: SecurityMode) -> CryptoCtx {
        CryptoCtx::new(mode, &MemSecretStore::from_label("anchor-test"), 0).unwrap()
    }

    fn sample(seq: u64) -> AnchorState {
        AnchorState {
            anchor_seq: seq,
            segment_size: 65536,
            map_fanout: 64,
            map_root: Location {
                seg: SegmentId(0),
                off: 16,
                len: 40,
                hash: [9; 32],
            },
            map_depth: 2,
            next_id: 42,
            free_ids: vec![3, 7],
            residual_seg: SegmentId(1),
            residual_off: 128,
            base_seq: 10,
            chain_base: [1; 32],
            last_seq: 12,
            last_chain: [2; 32],
            counter_value: 77,
        }
    }

    /// Byte-identical golden vectors captured from the pre-`tdb-proof`
    /// encoder (one fresh context per encode, so the first DRBG IV is
    /// deterministic). If this test fails, on-disk anchors written by
    /// earlier releases no longer authenticate — that is a compatibility
    /// break, not a test to update.
    #[test]
    fn golden_slot_encoding_is_stable() {
        const GOLDEN_FULL: &str = "544442414e433031050000000000000001d0000000a8e6d78a37be192a2e0b8c9eb3ba7c9cb495789436721f81a6c6fc82ef7b18ac52670206e210dc439f640dcb3287755d0c163c17e66c012deae6bf72a15218f809f49729118dc005f443ecbfd1e27d452b38b347eb5ab989ab29ef25e8d2c6bb5cf21b4c66d0f6b9f5662aff7d9acfee510b7ccf343503690e200b69dce3470d1b51b7fb0d8ef72ca43156518f4ce02d75728c37141a01ba4bb0dcb1ef8a32d5ab9fab78645eaed39b82028104cc963c0efca65245469fae963e3f5bec5c6d5112651a65df7b8d16ab756781c2ff14c4b2a41dd2700eff112cbc9162fd7bdfaee0d8d3ae3c8a7f2f5231666d710daa86";
        const GOLDEN_OFF: &str = "544442414e433031050000000000000000bc000000050000000000000000000100400000000000000010000000280000000909090909090909090909090909090909090909090909090909090909090909020000002a00000000000000020000000300000000000000070000000000000001000000800000000a0000000000000001010101010101010101010101010101010101010101010101010101010101010c0000000000000002020202020202020202020202020202020202020202020202020202020202024d00000000000000ffd3b6a6482f95f28d61eb8debedba8330e44b9c9c717a149a2d2921bf11e1a6";
        for (mode, golden) in [
            (SecurityMode::Full, GOLDEN_FULL),
            (SecurityMode::Off, GOLDEN_OFF),
        ] {
            let c = ctx(mode);
            let bytes = sample(5).encode(&c);
            let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(hex, golden, "{mode:?} anchor slot bytes drifted");
            // And the pre-refactor bytes still decode.
            let golden_bytes: Vec<u8> = (0..golden.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&golden[i..i + 2], 16).unwrap())
                .collect();
            let decoded = AnchorState::decode(&ctx(mode), &golden_bytes)
                .unwrap()
                .unwrap();
            assert_eq!(decoded, sample(5));
        }
    }

    #[test]
    fn encode_decode_roundtrip_both_modes() {
        for mode in [SecurityMode::Full, SecurityMode::Off] {
            let c = ctx(mode);
            let state = sample(5);
            let bytes = state.encode(&c);
            let decoded = AnchorState::decode(&c, &bytes).unwrap().unwrap();
            assert_eq!(decoded, state);
        }
    }

    #[test]
    fn full_mode_anchor_hides_contents() {
        let c = ctx(SecurityMode::Full);
        let bytes = sample(5).encode(&c);
        // counter_value = 77 must not be findable in plaintext.
        assert!(!bytes.windows(8).any(|w| w == 77u64.to_le_bytes()));
    }

    #[test]
    fn decode_rejects_any_bit_flip() {
        let c = ctx(SecurityMode::Full);
        let bytes = sample(5).encode(&c);
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(AnchorState::decode(&c, &bad).is_err(), "byte {i}");
        }
        // Truncation too.
        assert!(AnchorState::decode(&c, &bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn decode_rejects_wrong_key() {
        let c1 = ctx(SecurityMode::Full);
        let c2 =
            CryptoCtx::new(SecurityMode::Full, &MemSecretStore::from_label("other"), 0).unwrap();
        let bytes = sample(5).encode(&c1);
        assert!(AnchorState::decode(&c2, &bytes).is_err());
    }

    #[test]
    fn decode_rejects_mode_mismatch() {
        let full = ctx(SecurityMode::Full);
        let off = ctx(SecurityMode::Off);
        let bytes = sample(5).encode(&full);
        assert!(matches!(
            AnchorState::decode(&off, &bytes),
            Err(ChunkStoreError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn tampered_mode_byte_is_tamper_not_config_mismatch() {
        // Overwriting the plaintext mode byte with the *other* valid tag is
        // an attack on unauthenticated metadata, not a user misconfiguration:
        // the tag no longer verifies under the claimed mode, so it must
        // surface as TamperDetected.
        let full = ctx(SecurityMode::Full);
        let mut bytes = sample(5).encode(&full);
        assert_eq!(bytes[16], SecurityMode::Full.tag());
        bytes[16] = SecurityMode::Off.tag();
        assert!(matches!(
            AnchorState::decode(&full, &bytes),
            Err(ChunkStoreError::TamperDetected(_))
        ));
        // Same story when the opener's configured mode happens to match the
        // forged claim.
        let off = ctx(SecurityMode::Off);
        assert!(matches!(
            AnchorState::decode(&off, &bytes),
            Err(ChunkStoreError::TamperDetected(_))
        ));
    }

    #[test]
    fn off_mode_detects_accidental_corruption() {
        let c = ctx(SecurityMode::Off);
        let mut bytes = sample(5).encode(&c);
        bytes[30] ^= 1;
        assert!(AnchorState::decode(&c, &bytes).is_err());
    }

    #[test]
    fn slot_arbitration_picks_newest_valid() {
        let mem = MemStore::new();
        let c = ctx(SecurityMode::Full);
        let anchors = AnchorStore::new(&mem);
        assert!(matches!(
            anchors.read_best(&c),
            Err(ChunkStoreError::NoDatabase)
        ));
        assert!(!anchors.database_exists().unwrap());

        anchors.write(&c, &sample(1)).unwrap();
        anchors.write(&c, &sample(2)).unwrap();
        assert!(anchors.database_exists().unwrap());
        assert_eq!(anchors.read_best(&c).unwrap().anchor_seq, 2);

        // Newer write goes to the other slot; a torn write of anchor 3
        // (slot of anchor 1) must fall back to anchor 2.
        let f = mem.open("anchor.b", true).unwrap();
        let _ = f; // anchor_seq 2 lives in slot index 0 ("anchor.a")
        anchors.write(&c, &sample(3)).unwrap();
        assert_eq!(anchors.read_best(&c).unwrap().anchor_seq, 3);
        mem.corrupt("anchor.b", 10, 4).unwrap(); // destroy anchor 3
        assert_eq!(anchors.read_best(&c).unwrap().anchor_seq, 2);
    }

    #[test]
    fn both_slots_corrupt_is_tamper() {
        let mem = MemStore::new();
        let c = ctx(SecurityMode::Full);
        let anchors = AnchorStore::new(&mem);
        anchors.write(&c, &sample(1)).unwrap();
        anchors.write(&c, &sample(2)).unwrap();
        mem.corrupt("anchor.a", 12, 2).unwrap();
        mem.corrupt("anchor.b", 12, 2).unwrap();
        assert!(matches!(
            anchors.read_best(&c),
            Err(ChunkStoreError::TamperDetected(_) | ChunkStoreError::ConfigMismatch(_))
        ));
    }
}
