//! Sharded chunk store: N independent logs under one trust anchor.
//!
//! The object space is partitioned across `N` fully independent
//! [`ChunkStore`] shards — each with its own log segments, location map,
//! group-commit coordinator, and maintenance thread — behind a router that
//! preserves the single-store API. The paper's trust argument (§3) rests on
//! *one* one-way counter authenticating *one* anchor; sharding must not
//! multiply trust roots. So the shards' counters are virtual: every shard
//! counter increment funnels through a **root-of-roots** record (`rr.a` /
//! `rr.b`, double-buffered like the anchor) that binds the vector of
//! per-shard counter values to the single hardware counter. Rolling back
//! any shard — or the whole database — past a committed state makes some
//! shard anchor or the root-of-roots disagree with the hardware counter and
//! surfaces as [`ReplayDetected`](ChunkStoreError::ReplayDetected); forging
//! either record fails its MAC and surfaces as
//! [`TamperDetected`](ChunkStoreError::TamperDetected).
//!
//! # Layout
//!
//! Shard `k` lives under the flat file-name prefix `shard{k}--` (via
//! [`PrefixedStore`]) and seals with keys derived from the platform secret
//! under the domain `tdb.shard{k}`, so segments physically swapped between
//! shards fail authentication instead of decoding in the wrong namespace.
//! Global chunk id `g` routes to shard `g % N`, local id `g / N + 1`;
//! local id 0 of every shard is reserved (shard 0: the cross-shard
//! coordination directory; shards ≥ 1: a ring of recently applied
//! cross-shard transaction ids used to make recovery redo idempotent).
//!
//! # Cross-shard commits
//!
//! A batch touching one shard commits on that shard's fast path,
//! unchanged. A batch touching several commits with an ordered two-phase
//! append: **(A)** a coordination record holding every other shard's
//! writes is committed durably on shard 0 — atomically with shard 0's own
//! data and with a directory entry registering the record — and this
//! commit is the transaction's commit point; **(B)** each participant
//! shard's writes are appended together with its witness-ring update.
//! Recovery reads the directory and *re-applies* any registered
//! transaction to participants whose ring does not yet witness it, so a
//! crash between (A) and (B) converges to all; a crash before (A) leaves
//! no trace. Cross-shard transactions are always durable — a lazy
//! cross-shard commit could be half-lost and is silently upgraded.
//!
//! With `N = 1` (the default configuration) every call delegates directly
//! to the inner [`ChunkStore`]: no prefixing, no derived keys, no
//! root-of-roots file — bit-for-bit today's unsharded layout.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use tdb_core::Durability;
use tdb_crypto::Digest;
use tdb_platform::secret::SECRET_LEN;
use tdb_platform::{OneWayCounter, PlatformError, PrefixedStore, SecretStore, UntrustedStore};

use crate::anchor::AnchorStore;
use crate::config::{ChunkStoreConfig, SecurityMode};
use crate::crypto_ctx::CryptoCtx;
use crate::error::{ChunkStoreError, Result};
use crate::ids::ChunkId;
use crate::proof::Proven;
use crate::recovery::RecoveryReport;
use crate::snapshot::Snapshot;
use crate::stats::StatsSnapshot;
use crate::store::{iv_salt, ChunkStore, CommitTicket, WriteBatch};
use tdb_obs::{trace, watchdog, TraceKind, TraceLayer};

/// Magic prefix of a root-of-roots slot.
const RR_MAGIC: [u8; 8] = *b"TDBRR001";
/// Double-buffered root-of-roots slot names (alternation by `rr_seq`
/// parity, mirroring the anchor slots).
const RR_SLOTS: [&str; 2] = ["rr.a", "rr.b"];
/// Key-derivation domain of the root-of-roots crypto context.
const RR_DOMAIN: &str = "tdb.rootofroots";
/// Upper bound on entries kept in a participant shard's
/// applied-transaction witness ring; [`ring_cap_for`] may shrink it so
/// the encoded ring always fits in one chunk of the shard's configuration.
const RING_CAP: usize = 1024;
/// Attempts to complete a participant's phase (B) through the redo path
/// after its append failed, before giving up until the next open.
const PHASE_B_RETRIES: usize = 100;
/// Pause between those attempts, long enough for snapshot pins to drain
/// and maintenance to reclaim segments.
const PHASE_B_BACKOFF: std::time::Duration = std::time::Duration::from_millis(10);
/// Reserved local chunk id (directory on shard 0, witness ring elsewhere).
const RESERVED: ChunkId = ChunkId(0);

// ---------------------------------------------------------------------
// Per-shard key material
// ---------------------------------------------------------------------

/// Secret store handing each shard an independent sub-secret, so chunks
/// (and anchors) sealed by one shard never authenticate in another.
struct DerivedSecret {
    secret: [u8; SECRET_LEN],
}

impl DerivedSecret {
    fn for_shard(master: &dyn SecretStore, shard: usize) -> tdb_platform::Result<DerivedSecret> {
        let master = master.master_secret()?;
        Ok(DerivedSecret {
            secret: tdb_crypto::derive_secret(&master, &format!("tdb.shard{shard}")),
        })
    }
}

impl SecretStore for DerivedSecret {
    fn master_secret(&self) -> tdb_platform::Result<[u8; SECRET_LEN]> {
        Ok(self.secret)
    }
}

// ---------------------------------------------------------------------
// Root-of-roots record
// ---------------------------------------------------------------------

/// The persisted combiner state: the vector of virtual per-shard counter
/// values, bound to the hardware counter.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RrState {
    /// Monotone write sequence; selects the slot and arbitrates between
    /// the two buffered copies.
    rr_seq: u64,
    /// Shard count the database was created with.
    shards: u32,
    /// Open generation; the high half of cross-shard transaction ids, so
    /// ids never repeat across reopens.
    epoch: u32,
    /// Hardware counter value this record expects (the value *after* the
    /// increment paired with this write completes).
    expected_hw: u64,
    /// Virtual counter value per shard.
    counters: Vec<u64>,
}

impl RrState {
    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 + 4 + 8 + 8 * self.counters.len());
        out.extend_from_slice(&self.rr_seq.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.expected_hw.to_le_bytes());
        for c in &self.counters {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    fn decode_body(body: &[u8]) -> Result<RrState> {
        let mut c = Reader::new(body, "root-of-roots");
        let rr_seq = c.u64()?;
        let shards = c.u32()?;
        let epoch = c.u32()?;
        let expected_hw = c.u64()?;
        if !(1..=64).contains(&(shards as usize)) {
            return Err(tamper("root-of-roots: implausible shard count"));
        }
        let mut counters = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            counters.push(c.u64()?);
        }
        c.finish()?;
        Ok(RrState {
            rr_seq,
            shards,
            epoch,
            expected_hw,
            counters,
        })
    }

    /// Serialize to the slot format — the same trust-layer framing
    /// ([`tdb_proof::encode_slot`]) as the anchor, under the root-of-roots
    /// key domain. Byte-compatible with earlier releases (see the golden
    /// test below). The live write path goes through [`rr_write`]; this
    /// whole-slot form documents the codec and anchors the golden test.
    #[cfg(test)]
    fn encode(&self, ctx: &CryptoCtx) -> Vec<u8> {
        tdb_proof::encode_slot(ctx, &RR_MAGIC, self.rr_seq, &self.encode_body())
    }

    /// Parse and authenticate a slot (`Ok(None)` = never written).
    /// Framing, claimed-mode-first authentication, and the tamper vs.
    /// config-mismatch distinction live in [`tdb_proof::decode_slot`].
    #[cfg(test)]
    fn decode(ctx: &CryptoCtx, bytes: &[u8]) -> Result<Option<RrState>> {
        let (seq, body) = match tdb_proof::decode_slot(ctx, &RR_MAGIC, "root-of-roots", bytes)? {
            Some(found) => found,
            None => return Ok(None),
        };
        let state = RrState::decode_body(&body)?;
        if state.rr_seq != seq {
            return Err(tamper("root-of-roots: sequence number mismatch"));
        }
        Ok(Some(state))
    }
}

fn tamper(what: &str) -> ChunkStoreError {
    ChunkStoreError::TamperDetected(what.into())
}

fn rr_slots(store: &dyn UntrustedStore) -> tdb_proof::SlotPair<'_> {
    tdb_proof::SlotPair::new(store, RR_MAGIC, RR_SLOTS, "root-of-roots")
}

fn rr_exists(store: &dyn UntrustedStore) -> Result<bool> {
    Ok(rr_slots(store).exists()?)
}

/// Read both slots, return the valid state with the highest `rr_seq`. An
/// invalid slot is tolerated only as the *older* write (torn update); if
/// nothing decodes but slots exist, that is tampering.
fn rr_read_best(store: &dyn UntrustedStore, ctx: &CryptoCtx) -> Result<RrState> {
    let (seq, body) = rr_slots(store).read_best(ctx)?;
    let state = RrState::decode_body(&body)?;
    if state.rr_seq != seq {
        return Err(tamper("root-of-roots: sequence number mismatch"));
    }
    Ok(state)
}

fn rr_write(store: &dyn UntrustedStore, ctx: &CryptoCtx, state: &RrState) -> Result<()> {
    Ok(rr_slots(store).write(ctx, state.rr_seq, &state.encode_body())?)
}

// ---------------------------------------------------------------------
// Combiner: virtual per-shard counters over the one hardware counter
// ---------------------------------------------------------------------

/// Owns the root-of-roots record and the single hardware counter. Every
/// virtual-counter increment persists the new counter vector *before*
/// bumping the hardware counter, so a crash between the two reads as the
/// same benign `+1` window the unsharded anchor protocol repairs.
struct Combiner {
    mode: SecurityMode,
    ctx: CryptoCtx,
    untrusted: Arc<dyn UntrustedStore>,
    hw: Arc<dyn OneWayCounter>,
    state: Mutex<RrState>,
}

impl Combiner {
    /// Increment shard `idx`'s virtual counter: persist the updated
    /// root-of-roots, then increment the hardware counter. Returns the new
    /// virtual value.
    fn bump(&self, idx: usize) -> tdb_platform::Result<u64> {
        let mut st = self.state.lock();
        st.counters[idx] += 1;
        st.rr_seq += 1;
        if self.mode == SecurityMode::Full {
            st.expected_hw = self.hw.read()? + 1;
        }
        if let Err(e) = rr_write(&*self.untrusted, &self.ctx, &st) {
            // Undo the in-memory bump so a retried commit re-derives the
            // same persisted state instead of skipping values.
            st.counters[idx] -= 1;
            st.rr_seq -= 1;
            return Err(plat_err(e));
        }
        if self.mode == SecurityMode::Full {
            self.hw.increment()?;
        }
        Ok(st.counters[idx])
    }
}

fn plat_err(e: ChunkStoreError) -> PlatformError {
    match e {
        ChunkStoreError::Platform(p) => p,
        other => PlatformError::CorruptSubstrate(format!("root-of-roots: {other}")),
    }
}

/// The virtual one-way counter a single shard sees.
struct ShardCounter {
    combiner: Arc<Combiner>,
    idx: usize,
}

impl OneWayCounter for ShardCounter {
    fn read(&self) -> tdb_platform::Result<u64> {
        Ok(self.combiner.state.lock().counters[self.idx])
    }

    fn increment(&self) -> tdb_platform::Result<u64> {
        self.combiner.bump(self.idx)
    }
}

// ---------------------------------------------------------------------
// Serialization of the reserved chunks + coordination record
// ---------------------------------------------------------------------

/// Little bounds-checked reader; malformed trusted-path structures are
/// tamper evidence (they sit behind chunk hashes, so random corruption is
/// caught earlier).
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Reader {
            bytes,
            pos: 0,
            what,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(ChunkStoreError::TamperDetected(format!(
                "{}: truncated",
                self.what
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(ChunkStoreError::TamperDetected(format!(
                "{}: trailing bytes",
                self.what
            )));
        }
        Ok(())
    }
}

/// Largest witness-ring length whose [`enc_ring`] encoding still fits in
/// one chunk of `max_chunk` bytes, capped at [`RING_CAP`]. The ring only
/// shields *recent* transactions from being re-applied by redo, so a
/// smaller window on small-segment configurations is a pure narrowing:
/// directory entries outlive their ring entries only across a crash
/// window of in-flight transactions, which is far shorter than any cap.
fn ring_cap_for(max_chunk: usize) -> usize {
    (max_chunk.saturating_sub(4) / 8).clamp(1, RING_CAP)
}

/// Add `xid` to the ring if absent and evict the oldest entries beyond
/// `cap`. Idempotent so retries and redo can re-run it safely.
fn ring_push(ring: &mut Vec<u64>, xid: u64, cap: usize) {
    if !ring.contains(&xid) {
        ring.push(xid);
    }
    if ring.len() > cap {
        let drop_n = ring.len() - cap;
        ring.drain(..drop_n);
    }
}

fn enc_ring(xids: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 * xids.len());
    out.extend_from_slice(&(xids.len() as u32).to_le_bytes());
    for x in xids {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn dec_ring(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut c = Reader::new(bytes, "witness ring");
    let n = c.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(RING_CAP * 2));
    for _ in 0..n {
        out.push(c.u64()?);
    }
    c.finish()?;
    Ok(out)
}

fn enc_dir(entries: &[(u64, Vec<u64>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (xid, coord) in entries {
        out.extend_from_slice(&xid.to_le_bytes());
        out.extend_from_slice(&(coord.len() as u32).to_le_bytes());
        for id in coord {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

fn dec_dir(bytes: &[u8]) -> Result<Vec<(u64, Vec<u64>)>> {
    let mut c = Reader::new(bytes, "coordination directory");
    let n = c.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..n {
        let xid = c.u64()?;
        let k = c.u32()? as usize;
        let mut coord = Vec::with_capacity(k);
        for _ in 0..k {
            coord.push(c.u64()?);
        }
        out.push((xid, coord));
    }
    c.finish()?;
    Ok(out)
}

/// One participant's portion of a cross-shard transaction, in shard-local
/// chunk ids: full post-image bytes for writes (redo needs no prior
/// state), plus deallocations.
struct CoordSection {
    shard: u32,
    writes: Vec<(u64, Vec<u8>)>,
    removes: Vec<u64>,
}

fn enc_coord(xid: u64, sections: &[CoordSection]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&xid.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for s in sections {
        out.extend_from_slice(&s.shard.to_le_bytes());
        out.extend_from_slice(&(s.writes.len() as u32).to_le_bytes());
        for (id, bytes) in &s.writes {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&(s.removes.len() as u32).to_le_bytes());
        for id in &s.removes {
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
    out
}

fn dec_coord(bytes: &[u8]) -> Result<(u64, Vec<CoordSection>)> {
    let mut c = Reader::new(bytes, "coordination record");
    let xid = c.u64()?;
    let nsec = c.u32()? as usize;
    let mut sections = Vec::with_capacity(nsec);
    for _ in 0..nsec {
        let shard = c.u32()?;
        let nw = c.u32()? as usize;
        let mut writes = Vec::with_capacity(nw);
        for _ in 0..nw {
            let id = c.u64()?;
            let len = c.u32()? as usize;
            writes.push((id, c.take(len)?.to_vec()));
        }
        let nr = c.u32()? as usize;
        let mut removes = Vec::with_capacity(nr);
        for _ in 0..nr {
            removes.push(c.u64()?);
        }
        sections.push(CoordSection {
            shard,
            writes,
            removes,
        });
    }
    c.finish()?;
    Ok((xid, sections))
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

fn route(n: usize, cid: ChunkId) -> (usize, ChunkId) {
    ((cid.0 % n as u64) as usize, ChunkId(cid.0 / n as u64 + 1))
}

fn unroute(n: usize, shard: usize, local: ChunkId) -> ChunkId {
    ChunkId((local.0 - 1) * n as u64 + shard as u64)
}

// ---------------------------------------------------------------------
// Multi-shard core
// ---------------------------------------------------------------------

struct MultiCore {
    shards: Vec<Arc<ChunkStore>>,
    /// Root-of-roots owner; proof epoch records are minted under its key
    /// and current counter vector (see `proven_at_snapshot`).
    combiner: Arc<Combiner>,
    /// Cross-shard commit lock. Writers hold it exclusively across phases
    /// (A)+(B) and the directory-pruning cleanup; snapshots hold it shared,
    /// so no snapshot observes a cross-shard transaction half-applied.
    xlock: RwLock<()>,
    /// Round-robin allocation cursor, so fresh-store allocations yield the
    /// global id sequence 0, 1, 2, … exactly like the unsharded store.
    cursor: AtomicUsize,
    next_xid: AtomicU64,
    epoch: u32,
    /// Merged observability registry: every shard's instruments adopted
    /// under a `shard{k}.` prefix (shared handles, so deltas through
    /// either view reconcile), plus anything upper layers register here
    /// directly. See [`ShardedChunkStore::obs`].
    merged_obs: Arc<tdb_obs::Registry>,
}

impl MultiCore {
    fn assemble(shards: Vec<Arc<ChunkStore>>, combiner: Arc<Combiner>, epoch: u32) -> MultiCore {
        let merged_obs = Arc::new(tdb_obs::Registry::new());
        for (k, s) in shards.iter().enumerate() {
            s.set_diag_label(format!("shard{k}"));
            merged_obs.adopt_all_prefixed(&s.obs(), &format!("shard{k}."));
        }
        MultiCore {
            shards,
            combiner,
            xlock: RwLock::new(()),
            cursor: AtomicUsize::new(0),
            next_xid: AtomicU64::new(0),
            epoch,
            merged_obs,
        }
    }

    fn n(&self) -> usize {
        self.shards.len()
    }

    fn new_xid(&self) -> u64 {
        ((self.epoch as u64) << 32) | (self.next_xid.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Make the durable frontier global: after any durable ack, every
    /// shard with commits past its last anchor gets one anchor round, so
    /// earlier lazy commits on sibling shards are covered exactly as they
    /// would be by a later durable commit in one shared log.
    fn harden_others(&self, except: Option<usize>) -> Result<()> {
        for (i, s) in self.shards.iter().enumerate() {
            if Some(i) != except && s.needs_anchor() {
                s.harden()?;
            }
        }
        Ok(())
    }

    /// Prune a completed transaction from the coordination directory and
    /// free its record chunks. Runs under the exclusive cross-shard lock;
    /// losing this lazy commit to a crash only means recovery sees the
    /// entry again, finds it witnessed everywhere, and re-prunes.
    fn cleanup(&self, xid: u64, coord_ids: &[u64]) -> Result<()> {
        let _guard = self.xlock.write();
        let mut b = self.shards[0].begin_batch();
        let dir = dec_dir(&b.read(RESERVED)?)?;
        let dir: Vec<(u64, Vec<u64>)> = dir.into_iter().filter(|(x, _)| *x != xid).collect();
        b.write(RESERVED, &enc_dir(&dir))?;
        for id in coord_ids {
            b.deallocate(ChunkId(*id))?;
        }
        self.shards[0].commit_batch(b, Durability::Lazy)
    }
}

/// Fold `shard{k}.X` instruments into aggregate `X` entries (in addition
/// to, not instead of, the per-shard names). See
/// [`ShardedChunkStore::obs_snapshot`].
fn fold_shard_metrics(mut snap: tdb_obs::RegistrySnapshot, n: usize) -> tdb_obs::RegistrySnapshot {
    let prefixes: Vec<String> = (0..n).map(|k| format!("shard{k}.")).collect();
    let strip = |key: &str| -> Option<String> {
        prefixes
            .iter()
            .find_map(|p| key.strip_prefix(p.as_str()))
            .map(String::from)
    };
    let folded_counters: Vec<(String, u64)> = snap
        .counters
        .iter()
        .filter_map(|(k, v)| strip(k).map(|agg| (agg, *v)))
        .collect();
    for (agg, v) in folded_counters {
        *snap.counters.entry(agg).or_insert(0) += v;
    }
    let folded_gauges: Vec<(String, i64)> = snap
        .gauges
        .iter()
        .filter_map(|(k, v)| strip(k).map(|agg| (agg, *v)))
        .collect();
    for (agg, v) in folded_gauges {
        *snap.gauges.entry(agg).or_insert(0) += v;
    }
    let folded_hists: Vec<(String, tdb_obs::HistSnapshot)> = snap
        .histograms
        .iter()
        .filter_map(|(k, h)| strip(k).map(|agg| (agg, h.clone())))
        .collect();
    for (agg, h) in folded_hists {
        snap.histograms.entry(agg).or_default().merge(&h);
    }
    snap
}

// ---------------------------------------------------------------------
// Public façade
// ---------------------------------------------------------------------

#[derive(Clone)]
enum Repr {
    Single(Arc<ChunkStore>),
    Multi(Arc<MultiCore>),
}

/// A chunk store partitioned across N independent shards under one trust
/// anchor. See the [module docs](self) for the protocol; with the default
/// `shards = 1` every operation delegates to the wrapped [`ChunkStore`]
/// unchanged.
#[derive(Clone)]
pub struct ShardedChunkStore {
    repr: Repr,
}

/// Staged operations against a [`ShardedChunkStore`]; the sharded
/// counterpart of [`WriteBatch`]. Dropping it releases allocated ids.
pub struct ShardedWriteBatch {
    repr: BatchRepr,
}

enum BatchRepr {
    Single(WriteBatch),
    Multi(MultiBatch),
}

struct MultiBatch {
    core: Arc<MultiCore>,
    batches: Vec<Option<WriteBatch>>,
    /// Shadow of every staged op in shard-local ids, kept so a cross-shard
    /// commit can serialize participants' post-images into the
    /// coordination record.
    mirror: Vec<BTreeMap<u64, Option<Vec<u8>>>>,
}

impl MultiBatch {
    fn ensure(&mut self, s: usize) -> &mut WriteBatch {
        if self.batches[s].is_none() {
            self.batches[s] = Some(self.core.shards[s].begin_batch());
        }
        self.batches[s].as_mut().expect("just ensured")
    }
}

/// Claim ticket from [`ShardedChunkStore::append_batch`]; the sharded
/// counterpart of [`CommitTicket`].
#[must_use = "pass the ticket to wait_durable (or drop it for lazy commits)"]
pub struct ShardedCommitTicket {
    repr: TicketRepr,
}

enum TicketRepr {
    Single {
        shard: usize,
        durable: bool,
        ticket: CommitTicket,
    },
    Cross {
        n: usize,
        /// (shard, commit_seq) for every touched shard, coordinator first.
        seqs: Vec<(usize, u64)>,
        /// Participant tickets still to be waited (the coordinator's
        /// commit was waited durably inside `append_batch` — it is the
        /// commit point).
        tickets: Vec<(usize, CommitTicket)>,
        xid: u64,
        coord_ids: Vec<u64>,
    },
}

impl ShardedCommitTicket {
    /// Commit sequence assigned on the shard that stores `cid`. Chunk
    /// versions must be stamped per shard — sequences from different
    /// shards are not comparable.
    pub fn seq_for(&self, cid: ChunkId) -> u64 {
        match &self.repr {
            TicketRepr::Single { ticket, .. } => ticket.seq(),
            TicketRepr::Cross { n, seqs, .. } => {
                let (shard, _) = route(*n, cid);
                seqs.iter()
                    .find(|(s, _)| *s == shard)
                    .map(|(_, seq)| *seq)
                    .unwrap_or_else(|| self.seq())
            }
        }
    }

    /// Highest commit sequence this transaction was assigned on any shard.
    /// Only meaningful as a coarse progress indicator; prefer
    /// [`seq_for`](Self::seq_for).
    pub fn seq(&self) -> u64 {
        match &self.repr {
            TicketRepr::Single { ticket, .. } => ticket.seq(),
            TicketRepr::Cross { seqs, .. } => seqs.iter().map(|(_, seq)| *seq).max().unwrap_or(0),
        }
    }
}

/// Consistent point-in-time view across every shard; the sharded
/// counterpart of [`Snapshot`]. Taken under the cross-shard commit lock,
/// so it never observes a cross-shard transaction half-applied.
pub struct ShardedSnapshot {
    repr: SnapRepr,
}

enum SnapRepr {
    Single(Snapshot),
    Multi(Vec<Snapshot>),
}

impl ShardedSnapshot {
    /// Commit sequence this snapshot captured on the shard storing `cid`.
    pub fn seq_for(&self, cid: ChunkId) -> u64 {
        match &self.repr {
            SnapRepr::Single(s) => s.commit_seq(),
            SnapRepr::Multi(snaps) => {
                let (shard, _) = route(snaps.len(), cid);
                snaps[shard].commit_seq()
            }
        }
    }

    /// Highest captured commit sequence across shards (a coarse global
    /// version; per-chunk comparisons must use [`seq_for`](Self::seq_for)).
    pub fn commit_seq(&self) -> u64 {
        match &self.repr {
            SnapRepr::Single(s) => s.commit_seq(),
            SnapRepr::Multi(snaps) => snaps.iter().map(|s| s.commit_seq()).max().unwrap_or(0),
        }
    }
}

impl ShardedChunkStore {
    // ---- constructors -----------------------------------------------

    /// Wrap an already-constructed unsharded store (shard count 1). The
    /// result behaves identically to the wrapped store.
    pub fn from_single(store: Arc<ChunkStore>) -> ShardedChunkStore {
        ShardedChunkStore {
            repr: Repr::Single(store),
        }
    }

    /// Create a fresh database partitioned across `cfg.shards` shards.
    /// Fails if any database (sharded or not) already exists in
    /// `untrusted`.
    pub fn create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<ShardedChunkStore> {
        cfg.validate().map_err(ChunkStoreError::ConfigMismatch)?;
        if rr_exists(&*untrusted)? {
            return Err(ChunkStoreError::ConfigMismatch(
                "a sharded database already exists in this untrusted store".into(),
            ));
        }
        if cfg.shards == 1 {
            let inner = ChunkStore::create(untrusted, secret, counter, cfg)?;
            return Ok(Self::from_single(Arc::new(inner)));
        }
        if AnchorStore::new(&*untrusted).database_exists()? {
            return Err(ChunkStoreError::ConfigMismatch(
                "an unsharded database already exists in this untrusted store".into(),
            ));
        }
        let n = cfg.shards;
        let ctx = CryptoCtx::with_domain(cfg.security, secret, iv_salt(&*counter), RR_DOMAIN)?;
        let mode = cfg.security;
        let hw_now = match mode {
            SecurityMode::Full => counter.read()?,
            SecurityMode::Off => 0,
        };
        let state = RrState {
            rr_seq: 1,
            shards: n as u32,
            epoch: 1,
            expected_hw: match mode {
                SecurityMode::Full => hw_now + 1,
                SecurityMode::Off => 0,
            },
            counters: vec![0; n],
        };
        rr_write(&*untrusted, &ctx, &state)?;
        if mode == SecurityMode::Full {
            counter.increment()?;
        }
        let combiner = Arc::new(Combiner {
            mode,
            ctx,
            untrusted: untrusted.clone(),
            hw: counter,
            state: Mutex::new(state),
        });
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            shards.push(Arc::new(Self::build_shard(
                &untrusted, secret, &combiner, k, &cfg, true,
            )?));
        }
        // Reserve local chunk 0 on every shard: the coordination directory
        // on shard 0, the cross-shard witness ring elsewhere.
        for (k, shard) in shards.iter().enumerate() {
            let mut b = shard.begin_batch();
            let id = b.allocate_chunk_id()?;
            assert_eq!(id, RESERVED, "fresh shard must hand out local id 0 first");
            let body = if k == 0 { enc_dir(&[]) } else { enc_ring(&[]) };
            b.write(id, &body)?;
            shard.commit_batch(b, Durability::Durable)?;
        }
        Ok(ShardedChunkStore {
            repr: Repr::Multi(Arc::new(MultiCore::assemble(shards, combiner, 1))),
        })
    }

    fn build_shard(
        untrusted: &Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        combiner: &Arc<Combiner>,
        k: usize,
        cfg: &ChunkStoreConfig,
        create: bool,
    ) -> Result<ChunkStore> {
        let prefixed: Arc<dyn UntrustedStore> =
            Arc::new(PrefixedStore::new(untrusted.clone(), format!("shard{k}--")));
        let derived = DerivedSecret::for_shard(secret, k).map_err(ChunkStoreError::Platform)?;
        let vcounter: Arc<dyn OneWayCounter> = Arc::new(ShardCounter {
            combiner: combiner.clone(),
            idx: k,
        });
        let shard_cfg = ChunkStoreConfig {
            shards: 1,
            ..cfg.clone()
        };
        if create {
            ChunkStore::create(prefixed, &derived, vcounter, shard_cfg)
        } else {
            ChunkStore::open(prefixed, &derived, vcounter, shard_cfg)
        }
    }

    /// Open an existing database: validate the root-of-roots against the
    /// hardware counter, recover every shard, then redo any cross-shard
    /// transaction a crash left registered but not applied everywhere.
    pub fn open(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<ShardedChunkStore> {
        cfg.validate().map_err(ChunkStoreError::ConfigMismatch)?;
        if cfg.shards == 1 {
            if rr_exists(&*untrusted)? {
                return Err(ChunkStoreError::ConfigMismatch(
                    "database was created sharded; open it with the same shard count".into(),
                ));
            }
            let inner = ChunkStore::open(untrusted, secret, counter, cfg)?;
            return Ok(Self::from_single(Arc::new(inner)));
        }
        let n = cfg.shards;
        let ctx = CryptoCtx::with_domain(cfg.security, secret, iv_salt(&*counter), RR_DOMAIN)?;
        let mode = cfg.security;
        let mut state = match rr_read_best(&*untrusted, &ctx) {
            Ok(state) => state,
            Err(ChunkStoreError::NoDatabase) => {
                if AnchorStore::new(&*untrusted).database_exists()? {
                    return Err(ChunkStoreError::ConfigMismatch(
                        "database was created unsharded; open it with shards = 1".into(),
                    ));
                }
                return Err(ChunkStoreError::NoDatabase);
            }
            Err(e) => return Err(e),
        };
        if state.shards as usize != n {
            return Err(ChunkStoreError::ConfigMismatch(format!(
                "database was created with {} shards, opened with {n}",
                state.shards
            )));
        }
        if mode == SecurityMode::Full {
            // Same decision rule as the anchor/counter pair: a one-ahead
            // record is the benign crash window between the root-of-roots
            // write and its hardware increment; anything else is replay.
            let hw_now = counter.read()?;
            if state.expected_hw == hw_now + 1 {
                counter.increment()?;
            } else if state.expected_hw != hw_now {
                return Err(ChunkStoreError::ReplayDetected {
                    anchor_counter: state.expected_hw,
                    hardware_counter: hw_now,
                });
            }
        }
        // New open generation: cross-shard transaction ids must never
        // repeat across reopens (witness rings persist).
        state.epoch += 1;
        state.rr_seq += 1;
        let hw_now = match mode {
            SecurityMode::Full => counter.read()?,
            SecurityMode::Off => 0,
        };
        state.expected_hw = match mode {
            SecurityMode::Full => hw_now + 1,
            SecurityMode::Off => 0,
        };
        rr_write(&*untrusted, &ctx, &state)?;
        if mode == SecurityMode::Full {
            counter.increment()?;
        }
        let epoch = state.epoch;
        let combiner = Arc::new(Combiner {
            mode,
            ctx,
            untrusted: untrusted.clone(),
            hw: counter,
            state: Mutex::new(state),
        });
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            shards.push(Arc::new(Self::build_shard(
                &untrusted, secret, &combiner, k, &cfg, false,
            )?));
        }
        let core = MultiCore::assemble(shards, combiner, epoch);
        Self::redo_cross_shard(&core)?;
        Ok(ShardedChunkStore {
            repr: Repr::Multi(Arc::new(core)),
        })
    }

    /// Open if a database exists (sharded or not), otherwise create one.
    pub fn open_or_create(
        untrusted: Arc<dyn UntrustedStore>,
        secret: &dyn SecretStore,
        counter: Arc<dyn OneWayCounter>,
        cfg: ChunkStoreConfig,
    ) -> Result<ShardedChunkStore> {
        if Self::database_exists(&*untrusted)? {
            Self::open(untrusted, secret, counter, cfg)
        } else {
            Self::create(untrusted, secret, counter, cfg)
        }
    }

    /// Whether any database — sharded or unsharded — exists in `untrusted`.
    pub fn database_exists(untrusted: &dyn UntrustedStore) -> Result<bool> {
        Ok(AnchorStore::new(untrusted).database_exists()? || rr_exists(untrusted)?)
    }

    /// Complete cross-shard transactions the directory registers but some
    /// participant's witness ring does not yet contain. Redo applies full
    /// post-images, so it is idempotent and insensitive to how far phase
    /// (B) got before the crash.
    fn redo_cross_shard(core: &MultiCore) -> Result<()> {
        let dir = dec_dir(&core.shards[0].read(RESERVED)?)?;
        if dir.is_empty() {
            return Ok(());
        }
        for (xid, coord_ids) in &dir {
            let mut record = Vec::new();
            for id in coord_ids {
                record.extend_from_slice(&core.shards[0].read(ChunkId(*id))?);
            }
            let (rec_xid, sections) = dec_coord(&record)?;
            if rec_xid != *xid {
                return Err(tamper("coordination record: directory id mismatch"));
            }
            for sec in &sections {
                let s = sec.shard as usize;
                if s == 0 || s >= core.n() {
                    return Err(tamper("coordination record: shard out of range"));
                }
                let shard = &core.shards[s];
                if dec_ring(&shard.read(RESERVED)?)?.contains(xid) {
                    continue;
                }
                trace::emit(TraceLayer::Shard, TraceKind::XRedo, *xid, s as u64, 0);
                Self::apply_participant_redo(shard, *xid, sec)?;
            }
        }
        // All transactions are applied everywhere: prune the directory and
        // free the records in one lazy commit (re-done next open if lost).
        let mut b = core.shards[0].begin_batch();
        b.write(RESERVED, &enc_dir(&[]))?;
        for (_, coord_ids) in &dir {
            for id in coord_ids {
                b.deallocate(ChunkId(*id))?;
            }
        }
        core.shards[0].commit_batch(b, Durability::Lazy)
    }

    // ---- shape ------------------------------------------------------

    /// Number of shards.
    pub fn shards(&self) -> usize {
        match &self.repr {
            Repr::Single(_) => 1,
            Repr::Multi(core) => core.n(),
        }
    }

    /// The single underlying [`ChunkStore`] when the store is unsharded.
    ///
    /// Bridges APIs that operate on a plain chunk store (backup, restore)
    /// and are not shard-aware. `operation` names the caller's operation
    /// for the error message. Fails with
    /// [`ChunkStoreError::ConfigMismatch`] when more than one shard
    /// exists, naming the operation and the shard count.
    pub fn unsharded(&self, operation: &str) -> Result<&Arc<ChunkStore>> {
        match &self.repr {
            Repr::Single(store) => Ok(store),
            Repr::Multi(core) => Err(ChunkStoreError::ConfigMismatch(format!(
                "{operation} requires an unsharded store, but this database has {} shards; \
                 per-shard backup/restore is not supported yet — see DESIGN.md \
                 \"Sharding & the root-of-roots\"",
                core.n()
            ))),
        }
    }

    /// Direct handle to shard `i`, for per-shard observability and
    /// maintenance (stats, forced checkpoint/clean). Routing invariants
    /// are the caller's responsibility when using it to read or write.
    pub fn shard(&self, i: usize) -> &ChunkStore {
        match &self.repr {
            Repr::Single(store) => {
                assert_eq!(i, 0, "unsharded store has only shard 0");
                store
            }
            Repr::Multi(core) => &core.shards[i],
        }
    }

    // ---- batches & commit -------------------------------------------

    /// Start an independent staging area (see [`ShardedWriteBatch`]).
    pub fn begin_batch(&self) -> ShardedWriteBatch {
        match &self.repr {
            Repr::Single(store) => ShardedWriteBatch {
                repr: BatchRepr::Single(store.begin_batch()),
            },
            Repr::Multi(core) => ShardedWriteBatch {
                repr: BatchRepr::Multi(MultiBatch {
                    core: core.clone(),
                    batches: (0..core.n()).map(|_| None).collect(),
                    mirror: (0..core.n()).map(|_| BTreeMap::new()).collect(),
                }),
            },
        }
    }

    /// Append a batch's staged operations — the commit point — and return
    /// a ticket. Batches touching a single shard take that shard's fast
    /// path; batches touching several commit with the two-phase protocol
    /// in the [module docs](self) (and are implicitly durable).
    pub fn append_batch(
        &self,
        batch: ShardedWriteBatch,
        durability: Durability,
    ) -> Result<ShardedCommitTicket> {
        match (&self.repr, batch.repr) {
            (Repr::Single(store), BatchRepr::Single(b)) => {
                let ticket = store.append_batch(b, durability)?;
                Ok(ShardedCommitTicket {
                    repr: TicketRepr::Single {
                        shard: 0,
                        durable: durability.is_durable(),
                        ticket,
                    },
                })
            }
            (Repr::Multi(core), BatchRepr::Multi(mb)) => Self::append_multi(core, mb, durability),
            _ => Err(ChunkStoreError::ConfigMismatch(
                "batch belongs to a store with a different shard layout".into(),
            )),
        }
    }

    fn append_multi(
        core: &Arc<MultiCore>,
        mut mb: MultiBatch,
        durability: Durability,
    ) -> Result<ShardedCommitTicket> {
        let n = core.n();
        let touched: Vec<usize> = (0..n)
            .filter(|&s| mb.batches[s].as_ref().is_some_and(|b| !b.is_empty()))
            .collect();
        match touched.len() {
            0 => {
                // Empty barrier: an empty commit on shard 0; a durable
                // wait on its ticket hardens every shard (below).
                let ticket =
                    core.shards[0].append_batch(core.shards[0].begin_batch(), durability)?;
                Ok(ShardedCommitTicket {
                    repr: TicketRepr::Single {
                        shard: 0,
                        durable: durability.is_durable(),
                        ticket,
                    },
                })
            }
            1 => {
                let s = touched[0];
                let b = mb.batches[s].take().expect("touched shard has a batch");
                let ticket = core.shards[s].append_batch(b, durability)?;
                Ok(ShardedCommitTicket {
                    repr: TicketRepr::Single {
                        shard: s,
                        durable: durability.is_durable(),
                        ticket,
                    },
                })
            }
            _ => Self::append_cross(core, &mut mb, &touched),
        }
    }

    /// The ordered two-phase cross-shard append. Holds the exclusive
    /// cross-shard lock across both phases so concurrent cross commits,
    /// snapshots, and directory cleanups serialize against it.
    fn append_cross(
        core: &Arc<MultiCore>,
        mb: &mut MultiBatch,
        touched: &[usize],
    ) -> Result<ShardedCommitTicket> {
        let n = core.n();
        let xid = core.new_xid();
        let sections: Vec<CoordSection> = touched
            .iter()
            .filter(|&&s| s != 0)
            .map(|&s| {
                let mut writes = Vec::new();
                let mut removes = Vec::new();
                for (id, op) in &mb.mirror[s] {
                    match op {
                        Some(bytes) => writes.push((*id, bytes.clone())),
                        None => removes.push(*id),
                    }
                }
                CoordSection {
                    shard: s as u32,
                    writes,
                    removes,
                }
            })
            .collect();
        let record = enc_coord(xid, &sections);

        let _op = watchdog::op_begin(watchdog::OpKind::CrossShardCommit, xid);
        let guard = core.xlock.write();
        // Phase A: commit the coordination record + directory entry +
        // shard 0's own data in one durable commit — the commit point.
        let mut b0 = mb.batches[0]
            .take()
            .unwrap_or_else(|| core.shards[0].begin_batch());
        let max_part = core.shards[0].max_chunk_size();
        let mut coord_ids = Vec::new();
        for part in record.chunks(max_part.max(1)) {
            let id = b0.allocate_chunk_id()?;
            b0.write(id, part)?;
            coord_ids.push(id.0);
        }
        let mut dir = dec_dir(&b0.read(RESERVED)?)?;
        dir.push((xid, coord_ids.clone()));
        b0.write(RESERVED, &enc_dir(&dir))?;
        let t0 = core.shards[0].append_batch(b0, Durability::Durable)?;
        let seq0 = t0.seq();
        core.shards[0].wait_durable(t0)?;
        trace::emit(
            TraceLayer::Shard,
            TraceKind::XPhaseA,
            xid,
            seq0,
            touched.len() as u64,
        );

        // Phase B: append each participant's data, then its witness-ring
        // entry in a second commit. The ring entry is the participant's
        // *completion witness*, so it must never land before the data: a
        // failed multi-group append can leave its earlier record groups
        // committed, and RESERVED (id 0) sorts first in a batch. Nothing
        // interleaves between the two appends — the committer still holds
        // its object-layer locks until this call returns. A participant
        // whose append fails is completed in-process through the
        // (idempotent) redo path; only if that keeps failing does the
        // error escape, and then the next open's redo finishes the job.
        let mut seqs = vec![(0usize, seq0)];
        let mut tickets = Vec::new();
        for &s in touched.iter().filter(|&&s| s != 0) {
            let shard = &core.shards[s];
            let bs = mb.batches[s].take().expect("touched shard has a batch");
            match shard.append_batch(bs, Durability::Durable) {
                Ok(ts) => {
                    seqs.push((s, ts.seq()));
                    tickets.push((s, ts));
                }
                Err(e) => {
                    let sec = sections
                        .iter()
                        .find(|c| c.shard as usize == s)
                        .expect("participant has a coordination section");
                    Self::force_participant_data(shard, sec, e)?;
                }
            }
            match Self::append_ring_entry(shard, xid) {
                Ok(tr) => tickets.push((s, tr)),
                Err(e) => Self::force_ring_entry(shard, xid, e)?,
            }
            trace::emit(TraceLayer::Shard, TraceKind::XPhaseB, xid, s as u64, 0);
        }
        drop(guard);
        Ok(ShardedCommitTicket {
            repr: TicketRepr::Cross {
                n,
                seqs,
                tickets,
                xid,
                coord_ids,
            },
        })
    }

    /// Commit `xid` into `shard`'s witness ring as its own durable
    /// append, strictly after the participant's data commit.
    fn append_ring_entry(shard: &ChunkStore, xid: u64) -> Result<CommitTicket> {
        let mut bs = shard.begin_batch();
        let mut ring = dec_ring(&bs.read(RESERVED)?)?;
        ring_push(&mut ring, xid, ring_cap_for(shard.max_chunk_size()));
        bs.write(RESERVED, &enc_ring(&ring))?;
        trace::emit(
            TraceLayer::Shard,
            TraceKind::XWitness,
            xid,
            ring.len() as u64,
            0,
        );
        shard.append_batch(bs, Durability::Durable)
    }

    /// Re-apply a participant's data after its phase (B) append failed.
    /// The transaction is already durably committed on shard 0, so the
    /// only acceptable outcomes are "applied" (possibly after waiting out
    /// transient space pressure) or surfacing the original error once the
    /// retries are exhausted — the next open's redo then completes it.
    fn force_participant_data(
        shard: &ChunkStore,
        sec: &CoordSection,
        first: ChunkStoreError,
    ) -> Result<()> {
        for _ in 0..PHASE_B_RETRIES {
            std::thread::sleep(PHASE_B_BACKOFF);
            if Self::apply_section_data(shard, sec).is_ok() {
                return Ok(());
            }
        }
        Err(first)
    }

    /// Same recovery posture as [`force_participant_data`], for the
    /// witness-ring entry.
    fn force_ring_entry(shard: &ChunkStore, xid: u64, first: ChunkStoreError) -> Result<()> {
        for _ in 0..PHASE_B_RETRIES {
            std::thread::sleep(PHASE_B_BACKOFF);
            if Self::append_ring_entry(shard, xid).is_ok() {
                return Ok(());
            }
        }
        Err(first)
    }

    /// Apply one coordination section's full post-images through the
    /// restore path. Idempotent: re-running it writes the same bytes.
    fn apply_section_data(shard: &ChunkStore, sec: &CoordSection) -> Result<()> {
        let writes: Vec<(ChunkId, Vec<u8>)> = sec
            .writes
            .iter()
            .map(|(id, bytes)| (ChunkId(*id), bytes.clone()))
            .collect();
        let removes: Vec<ChunkId> = sec
            .removes
            .iter()
            .map(|id| ChunkId(*id))
            // A remove of an id a partial append (or crash) already freed
            // must not re-enter the free pool twice.
            .filter(|id| shard.is_allocated(*id))
            .collect();
        shard.apply_restore_delta(writes, removes)
    }

    /// Complete one participant: data first, then the witness-ring entry
    /// in its own commit, mirroring phase (B)'s ordering so a ring entry
    /// always means "this shard's data is fully applied".
    fn apply_participant_redo(shard: &ChunkStore, xid: u64, sec: &CoordSection) -> Result<()> {
        Self::apply_section_data(shard, sec)?;
        let mut ring = dec_ring(&shard.read(RESERVED)?)?;
        ring_push(&mut ring, xid, ring_cap_for(shard.max_chunk_size()));
        shard.apply_restore_delta(vec![(RESERVED, enc_ring(&ring))], Vec::new())
    }

    /// Block until the ticket's commits are durable. At N > 1 a durable
    /// wait also anchors every sibling shard with uncovered commits, so
    /// the acked durable frontier is global exactly as in one shared log.
    pub fn wait_durable(&self, ticket: ShardedCommitTicket) -> Result<()> {
        match (&self.repr, ticket.repr) {
            (Repr::Single(store), TicketRepr::Single { ticket, .. }) => store.wait_durable(ticket),
            (
                Repr::Multi(core),
                TicketRepr::Single {
                    shard,
                    durable,
                    ticket,
                    ..
                },
            ) => {
                core.shards[shard].wait_durable(ticket)?;
                if durable {
                    core.harden_others(Some(shard))?;
                }
                Ok(())
            }
            (
                Repr::Multi(core),
                TicketRepr::Cross {
                    tickets,
                    xid,
                    coord_ids,
                    ..
                },
            ) => {
                for (s, t) in tickets {
                    core.shards[s].wait_durable(t)?;
                }
                core.harden_others(None)?;
                core.cleanup(xid, &coord_ids)
            }
            _ => Err(ChunkStoreError::ConfigMismatch(
                "ticket belongs to a store with a different shard layout".into(),
            )),
        }
    }

    /// [`append_batch`](Self::append_batch) + [`wait_durable`](Self::wait_durable).
    pub fn commit_batch(&self, batch: ShardedWriteBatch, durability: Durability) -> Result<()> {
        let ticket = self.append_batch(batch, durability)?;
        self.wait_durable(ticket)
    }

    // ---- reads & snapshots ------------------------------------------

    /// Read a chunk's committed bytes.
    pub fn read(&self, cid: ChunkId) -> Result<Vec<u8>> {
        match &self.repr {
            Repr::Single(store) => store.read(cid),
            Repr::Multi(core) => {
                let (s, local) = route(core.n(), cid);
                core.shards[s].read(local)
            }
        }
    }

    /// Read a chunk plus the commit sequence (on its shard) that last
    /// wrote it.
    pub fn read_versioned(&self, cid: ChunkId) -> Result<(Vec<u8>, u64)> {
        match &self.repr {
            Repr::Single(store) => store.read_versioned(cid),
            Repr::Multi(core) => {
                let (s, local) = route(core.n(), cid);
                core.shards[s].read_versioned(local)
            }
        }
    }

    /// Whether `cid` is currently allocated.
    pub fn is_allocated(&self, cid: ChunkId) -> bool {
        match &self.repr {
            Repr::Single(store) => store.is_allocated(cid),
            Repr::Multi(core) => {
                let (s, local) = route(core.n(), cid);
                core.shards[s].is_allocated(local)
            }
        }
    }

    /// Take a consistent snapshot across every shard (shared cross-shard
    /// lock: no half-applied cross-shard transaction is observable).
    pub fn snapshot(&self) -> ShardedSnapshot {
        match &self.repr {
            Repr::Single(store) => ShardedSnapshot {
                repr: SnapRepr::Single(store.snapshot()),
            },
            Repr::Multi(core) => {
                let _guard = core.xlock.read();
                ShardedSnapshot {
                    repr: SnapRepr::Multi(core.shards.iter().map(|s| s.snapshot()).collect()),
                }
            }
        }
    }

    /// Read `cid` as of `snap`.
    pub fn read_at_snapshot(&self, snap: &ShardedSnapshot, cid: ChunkId) -> Result<Vec<u8>> {
        match (&self.repr, &snap.repr) {
            (Repr::Single(store), SnapRepr::Single(s)) => store.read_at_snapshot(s, cid),
            (Repr::Multi(core), SnapRepr::Multi(snaps)) if snaps.len() == core.n() => {
                let (s, local) = route(core.n(), cid);
                core.shards[s].read_at_snapshot(&snaps[s], local)
            }
            _ => Err(ChunkStoreError::ConfigMismatch(
                "snapshot belongs to a store with a different shard layout".into(),
            )),
        }
    }

    // ---- proof-carrying reads ---------------------------------------

    /// Read `cid` as of `snap` with a deferred proof (see
    /// [`ChunkStore::proven_at_snapshot`]). On a sharded store the chunk
    /// routes to its shard, and the bookmark's later
    /// [`Proven::prove`](crate::proof::Proven::prove) splices the
    /// shard-local path into a root-of-roots epoch record minted under
    /// the combiner's state at that moment: the shard attestation carries
    /// the virtual counter pinned with the snapshot, and the epoch record
    /// proves the root-of-roots issued (at least) that virtual counter
    /// under a fresh hardware counter.
    pub fn proven_at_snapshot(
        &self,
        snap: &ShardedSnapshot,
        cid: ChunkId,
    ) -> Result<Proven<Option<Vec<u8>>>> {
        match (&self.repr, &snap.repr) {
            (Repr::Single(store), SnapRepr::Single(s)) => store.proven_at_snapshot(s, cid),
            (Repr::Multi(core), SnapRepr::Multi(snaps)) if snaps.len() == core.n() => {
                let n = core.n();
                let (s, local) = route(n, cid);
                let mut proven = core.shards[s].proven_at_snapshot(&snaps[s], local)?;
                proven.bookmark.proof_id = cid.0;
                let combiner = core.combiner.clone();
                proven.bookmark.shard = Some(Arc::new(move || {
                    let st = combiner.state.lock();
                    Ok(tdb_proof::ShardBinding {
                        shard: s as u32,
                        shards: n as u32,
                        epoch: tdb_proof::EpochRecord {
                            hw_counter: st.expected_hw,
                            epoch: st.epoch,
                            counters: st.counters.clone(),
                            tag: tdb_proof::tree::epoch_tag(
                                combiner.ctx.proof_mac_key(),
                                st.expected_hw,
                                st.epoch,
                                &st.counters,
                            ),
                        },
                    })
                }));
                Ok(proven)
            }
            _ => Err(ChunkStoreError::ConfigMismatch(
                "snapshot belongs to a store with a different shard layout".into(),
            )),
        }
    }

    /// Proven read of the last committed state of `cid`; takes a fresh
    /// consistent snapshot internally. See
    /// [`proven_at_snapshot`](Self::proven_at_snapshot).
    pub fn read_proven(&self, cid: ChunkId) -> Result<Proven<Option<Vec<u8>>>> {
        let snap = self.snapshot();
        self.proven_at_snapshot(&snap, cid)
    }

    /// The trust anchor a client verifies this store's proofs against:
    /// the current hardware-counter binding, the root-of-roots key, and
    /// one attestation key per shard ([`tdb_proof::TrustKeys::Sharded`]).
    /// At shard count 1 this is the wrapped store's
    /// [`ChunkStore::trust_anchor`] unchanged.
    pub fn trust_anchor(&self) -> Result<tdb_proof::TrustAnchor> {
        match &self.repr {
            Repr::Single(store) => store.trust_anchor(),
            Repr::Multi(core) => {
                if core.combiner.mode != SecurityMode::Full {
                    return Err(ChunkStoreError::ConfigMismatch(
                        "proof-carrying reads require SecurityMode::Full \
                         (a store created with SecurityMode::Off has no MAC keys to attest under)"
                            .into(),
                    ));
                }
                let counter_value = core.combiner.state.lock().expected_hw;
                Ok(tdb_proof::TrustAnchor {
                    counter_value,
                    keys: tdb_proof::TrustKeys::Sharded {
                        rr_mac_key: *core.combiner.ctx.proof_mac_key(),
                        shard_mac_keys: core.shards.iter().map(|s| s.proof_mac_key()).collect(),
                    },
                })
            }
        }
    }

    /// Mint a keyed (index-level) attestation. Sharded stores attest
    /// keyed roots under the root-of-roots key with the current hardware
    /// counter binding (the keyed tree spans objects from every shard, so
    /// no single shard's virtual counter covers it); unsharded stores
    /// bind the snapshot-pinned counter. See
    /// [`ChunkStore::keyed_attest_at`].
    pub fn keyed_attest_at(
        &self,
        snap: &ShardedSnapshot,
        scope: &str,
        total: u64,
        root: &Digest,
    ) -> Result<tdb_proof::KeyedAttestation> {
        match (&self.repr, &snap.repr) {
            (Repr::Single(store), SnapRepr::Single(s)) => {
                store.keyed_attest_at(s, scope, total, root)
            }
            (Repr::Multi(core), SnapRepr::Multi(_)) => {
                if core.combiner.mode != SecurityMode::Full {
                    return Err(ChunkStoreError::ConfigMismatch(
                        "proof-carrying reads require SecurityMode::Full \
                         (a store created with SecurityMode::Off has no MAC keys to attest under)"
                            .into(),
                    ));
                }
                let counter_value = core.combiner.state.lock().expected_hw;
                let commit_seq = snap.commit_seq();
                Ok(tdb_proof::KeyedAttestation {
                    counter_value,
                    commit_seq,
                    tag: tdb_proof::keyed::keyed_tag(
                        core.combiner.ctx.proof_mac_key(),
                        counter_value,
                        commit_seq,
                        scope,
                        total,
                        root,
                    ),
                })
            }
            _ => Err(ChunkStoreError::ConfigMismatch(
                "snapshot belongs to a store with a different shard layout".into(),
            )),
        }
    }

    // ---- maintenance & lifecycle ------------------------------------

    /// Checkpoint every shard's location map.
    pub fn checkpoint(&self) -> Result<()> {
        match &self.repr {
            Repr::Single(store) => store.checkpoint(),
            Repr::Multi(core) => {
                for s in &core.shards {
                    s.checkpoint()?;
                }
                Ok(())
            }
        }
    }

    /// Run one cleaning pass on every shard; returns segments freed.
    pub fn clean(&self) -> Result<usize> {
        match &self.repr {
            Repr::Single(store) => store.clean(),
            Repr::Multi(core) => {
                let mut freed = 0;
                for s in &core.shards {
                    freed += s.clean()?;
                }
                Ok(freed)
            }
        }
    }

    /// Shut down maintenance threads and flush; further use is an error.
    pub fn close(&self) {
        match &self.repr {
            Repr::Single(store) => store.close(),
            Repr::Multi(core) => {
                for s in &core.shards {
                    s.close();
                }
            }
        }
    }

    /// Return globally-routed ids that were allocated but never written to
    /// the free pools of their shards.
    pub fn release_unwritten_ids(&self, ids: &[ChunkId]) {
        match &self.repr {
            Repr::Single(store) => store.release_unwritten_ids(ids),
            Repr::Multi(core) => {
                let n = core.n();
                let mut per_shard: Vec<Vec<ChunkId>> = vec![Vec::new(); n];
                for id in ids {
                    let (s, local) = route(n, *id);
                    per_shard[s].push(local);
                }
                for (s, locals) in per_shard.iter().enumerate() {
                    if !locals.is_empty() {
                        core.shards[s].release_unwritten_ids(locals);
                    }
                }
            }
        }
    }

    // ---- introspection ----------------------------------------------

    /// Counters summed across shards.
    pub fn stats(&self) -> StatsSnapshot {
        match &self.repr {
            Repr::Single(store) => store.stats(),
            Repr::Multi(core) => core
                .shards
                .iter()
                .fold(StatsSnapshot::default(), |acc, s| acc.merge(&s.stats())),
        }
    }

    /// The store's observability registry.
    ///
    /// Unsharded: the wrapped store's own registry, unchanged. Sharded:
    /// a merged registry in which every shard's instruments appear under
    /// a `shard{k}.` prefix (`shard0.chunk.commits`, …). The merged view
    /// adopts the shards' *handles*, not copies, so per-shard deltas
    /// taken through either view reconcile by construction. Upper layers
    /// (object/collection/backup stores) register their instruments here
    /// too, un-prefixed. Use [`obs_snapshot`](Self::obs_snapshot) for a
    /// view that also folds the shard metrics into aggregate names.
    pub fn obs(&self) -> Arc<tdb_obs::Registry> {
        match &self.repr {
            Repr::Single(store) => store.obs(),
            Repr::Multi(core) => core.merged_obs.clone(),
        }
    }

    /// Snapshot of [`obs`](Self::obs) with every `shard{k}.X` instrument
    /// additionally folded into an aggregate `X` (counters and gauges
    /// sum, histograms merge). Both the per-shard and the aggregate names
    /// coexist in the returned snapshot, so an unsharded consumer reading
    /// `chunk.commits` and a per-shard consumer reading
    /// `shard1.chunk.commits` see consistent numbers from one snapshot.
    pub fn obs_snapshot(&self) -> tdb_obs::RegistrySnapshot {
        let snap = self.obs().snapshot();
        match &self.repr {
            Repr::Single(_) => snap,
            Repr::Multi(core) => fold_shard_metrics(snap, core.n()),
        }
    }

    /// Shard 0's recovery report (per-shard reports via
    /// [`recovery_reports`](Self::recovery_reports)).
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.shard(0).recovery_report()
    }

    /// Recovery report of every shard, in shard order.
    pub fn recovery_reports(&self) -> Vec<Option<RecoveryReport>> {
        (0..self.shards())
            .map(|i| self.shard(i).recovery_report())
            .collect()
    }

    /// Security mode (identical across shards).
    pub fn security(&self) -> SecurityMode {
        self.shard(0).security()
    }

    /// Mean live-data utilization across shards.
    pub fn utilization(&self) -> f64 {
        match &self.repr {
            Repr::Single(store) => store.utilization(),
            Repr::Multi(core) => {
                core.shards.iter().map(|s| s.utilization()).sum::<f64>() / core.n() as f64
            }
        }
    }

    /// Total bytes of segment files across shards.
    pub fn disk_size(&self) -> u64 {
        match &self.repr {
            Repr::Single(store) => store.disk_size(),
            Repr::Multi(core) => core.shards.iter().map(|s| s.disk_size()).sum(),
        }
    }

    /// Live chunks across shards. At N > 1 this includes the N reserved
    /// bookkeeping chunks (directory + witness rings).
    pub fn live_chunks(&self) -> u64 {
        match &self.repr {
            Repr::Single(store) => store.live_chunks(),
            Repr::Multi(core) => core.shards.iter().map(|s| s.live_chunks()).sum(),
        }
    }

    /// Largest storable chunk (identical across shards).
    pub fn max_chunk_size(&self) -> usize {
        self.shard(0).max_chunk_size()
    }

    // ---- restore bridge (unsharded only) ----------------------------

    /// Install a full database image at exact chunk ids (backup restore).
    /// Only supported at shard count 1, where ids map through unchanged.
    pub fn restore_image(&self, chunks: Vec<(ChunkId, Vec<u8>)>) -> Result<()> {
        match &self.repr {
            Repr::Single(store) => store.restore_image(chunks),
            Repr::Multi(core) => Err(ChunkStoreError::ConfigMismatch(format!(
                "restore_image requires an unsharded store, but this database has {} shards; \
                 restore into a store opened with shards = 1 — see DESIGN.md \
                 \"Sharding & the root-of-roots\"",
                core.n()
            ))),
        }
    }

    /// Apply an incremental restore delta at exact chunk ids. Only
    /// supported at shard count 1.
    pub fn apply_restore_delta(
        &self,
        writes: Vec<(ChunkId, Vec<u8>)>,
        removes: Vec<ChunkId>,
    ) -> Result<()> {
        match &self.repr {
            Repr::Single(store) => store.apply_restore_delta(writes, removes),
            Repr::Multi(core) => Err(ChunkStoreError::ConfigMismatch(format!(
                "apply_restore_delta requires an unsharded store, but this database has {} \
                 shards; restore into a store opened with shards = 1 — see DESIGN.md \
                 \"Sharding & the root-of-roots\"",
                core.n()
            ))),
        }
    }
}

impl ShardedWriteBatch {
    /// Allocate an unused global chunk id. Shards are filled round-robin,
    /// so a fresh store hands out 0, 1, 2, … exactly like the unsharded
    /// store.
    pub fn allocate_chunk_id(&mut self) -> Result<ChunkId> {
        match &mut self.repr {
            BatchRepr::Single(b) => b.allocate_chunk_id(),
            BatchRepr::Multi(mb) => {
                let n = mb.core.n();
                let s = mb.core.cursor.fetch_add(1, Ordering::Relaxed) % n;
                let local = mb.ensure(s).allocate_chunk_id()?;
                Ok(unroute(n, s, local))
            }
        }
    }

    /// Stage a write of `cid`.
    pub fn write(&mut self, cid: ChunkId, bytes: &[u8]) -> Result<()> {
        match &mut self.repr {
            BatchRepr::Single(b) => b.write(cid, bytes),
            BatchRepr::Multi(mb) => {
                let (s, local) = route(mb.core.n(), cid);
                mb.ensure(s).write(local, bytes)?;
                mb.mirror[s].insert(local.0, Some(bytes.to_vec()));
                Ok(())
            }
        }
    }

    /// Stage a deallocation of `cid`.
    pub fn deallocate(&mut self, cid: ChunkId) -> Result<()> {
        match &mut self.repr {
            BatchRepr::Single(b) => b.deallocate(cid),
            BatchRepr::Multi(mb) => {
                let (s, local) = route(mb.core.n(), cid);
                mb.ensure(s).deallocate(local)?;
                mb.mirror[s].insert(local.0, None);
                Ok(())
            }
        }
    }

    /// Read through the batch: staged bytes if `cid` is staged here,
    /// otherwise the committed state.
    pub fn read(&self, cid: ChunkId) -> Result<Vec<u8>> {
        match &self.repr {
            BatchRepr::Single(b) => b.read(cid),
            BatchRepr::Multi(mb) => {
                let (s, local) = route(mb.core.n(), cid);
                match &mb.batches[s] {
                    Some(b) => b.read(local),
                    None => mb.core.shards[s].read(local),
                }
            }
        }
    }

    /// Whether no operations are staged.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            BatchRepr::Single(b) => b.is_empty(),
            BatchRepr::Multi(mb) => mb
                .batches
                .iter()
                .all(|b| b.as_ref().is_none_or(|b| b.is_empty())),
        }
    }

    /// Staged operations (writes + deallocations) across shards.
    pub fn staged_ops(&self) -> usize {
        match &self.repr {
            BatchRepr::Single(b) => b.staged_ops(),
            BatchRepr::Multi(mb) => mb
                .batches
                .iter()
                .map(|b| b.as_ref().map_or(0, |b| b.staged_ops()))
                .sum(),
        }
    }

    /// Explicitly discard the batch (equivalent to dropping it).
    pub fn discard(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_platform::{MemSecretStore, MemStore, TamperableCounter, VolatileCounter};

    fn cfg(shards: usize) -> ChunkStoreConfig {
        ChunkStoreConfig {
            shards,
            ..ChunkStoreConfig::small_for_tests()
        }
    }

    fn secret() -> MemSecretStore {
        MemSecretStore::from_label("sharded-test")
    }

    #[test]
    fn routing_roundtrips_and_reserves_local_zero() {
        for n in [2usize, 3, 5, 64] {
            for g in 0..500u64 {
                let (s, local) = route(n, ChunkId(g));
                assert!(s < n);
                assert!(local.0 >= 1, "local 0 must stay reserved");
                assert_eq!(unroute(n, s, local), ChunkId(g));
            }
        }
    }

    /// Byte-identical golden vectors captured from the pre-`tdb-proof`
    /// root-of-roots encoder (fresh context per encode ⇒ deterministic
    /// first IV). A failure here means existing sharded databases no
    /// longer reopen — a compatibility break, not a vector to refresh.
    #[test]
    fn golden_rr_slot_encoding_is_stable() {
        const GOLDEN_FULL: &str = "544442525230303109000000000000000150000000711d78eba76bea3703f2352e6d79db51526df6364e7c7b48f8b91deb7f1e836827cd080e370c5ceea68bab2482226c7ff73e7ececb2639fa8bda510023c9987287eaff864db791470eede8b556e4584b01271089a23e5e9e25b48846a248ff88511389ec2a5d80e174676e15e52273ad";
        const GOLDEN_OFF: &str = "544442525230303109000000000000000030000000090000000000000003000000020000002900000000000000050000000000000000000000000000002400000000000000486b30aec53ca8fd6f5eaf203d5ee8d1840252a85fad89de8fe08e42f0e0c8eb";
        let st = RrState {
            rr_seq: 9,
            shards: 3,
            epoch: 2,
            expected_hw: 41,
            counters: vec![5, 0, 36],
        };
        for (mode, golden) in [
            (SecurityMode::Full, GOLDEN_FULL),
            (SecurityMode::Off, GOLDEN_OFF),
        ] {
            let ctx = CryptoCtx::with_domain(mode, &secret(), 7, RR_DOMAIN).unwrap();
            let bytes = st.encode(&ctx);
            let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
            assert_eq!(hex, golden, "{mode:?} root-of-roots slot bytes drifted");
            let golden_bytes: Vec<u8> = (0..golden.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&golden[i..i + 2], 16).unwrap())
                .collect();
            let fresh = CryptoCtx::with_domain(mode, &secret(), 7, RR_DOMAIN).unwrap();
            assert_eq!(RrState::decode(&fresh, &golden_bytes).unwrap().unwrap(), st);
        }
    }

    #[test]
    fn rr_state_roundtrips_and_detects_tamper() {
        for mode in [SecurityMode::Full, SecurityMode::Off] {
            let ctx = CryptoCtx::with_domain(mode, &secret(), 7, RR_DOMAIN).unwrap();
            let st = RrState {
                rr_seq: 9,
                shards: 3,
                epoch: 2,
                expected_hw: 41,
                counters: vec![5, 0, 36],
            };
            let bytes = st.encode(&ctx);
            assert_eq!(RrState::decode(&ctx, &bytes).unwrap().unwrap(), st);
            // Any single-byte flip must fail authentication.
            for pos in [0, 9, 16, 25, bytes.len() - 1] {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x40;
                match RrState::decode(&ctx, &bad) {
                    Err(ChunkStoreError::TamperDetected(_)) => {}
                    other => panic!("flip at {pos} in {mode:?} gave {other:?}"),
                }
            }
            // An authentic record written under the other mode is a
            // configuration mismatch, not tampering.
            let other_mode = match mode {
                SecurityMode::Full => SecurityMode::Off,
                SecurityMode::Off => SecurityMode::Full,
            };
            let other_ctx = CryptoCtx::with_domain(other_mode, &secret(), 7, RR_DOMAIN).unwrap();
            match RrState::decode(&other_ctx, &bytes) {
                Err(ChunkStoreError::ConfigMismatch(_)) => {}
                other => panic!("cross-mode decode gave {other:?}"),
            }
        }
    }

    #[test]
    fn sharded_store_basic_cycle() {
        let mem = Arc::new(MemStore::new());
        let counter = Arc::new(VolatileCounter::new());
        let store =
            ShardedChunkStore::create(mem.clone(), &secret(), counter.clone(), cfg(2)).unwrap();
        assert_eq!(store.shards(), 2);

        // Fresh allocations are the sequential global ids 0, 1, 2, …
        let mut b = store.begin_batch();
        let ids: Vec<ChunkId> = (0..6).map(|_| b.allocate_chunk_id().unwrap()).collect();
        assert_eq!(ids, (0..6).map(ChunkId).collect::<Vec<_>>());
        for id in &ids {
            b.write(*id, format!("chunk-{}", id.0).as_bytes()).unwrap();
        }
        // Touches both shards: exercises the cross-shard protocol.
        store.commit_batch(b, Durability::Durable).unwrap();
        for id in &ids {
            assert_eq!(
                store.read(*id).unwrap(),
                format!("chunk-{}", id.0).as_bytes()
            );
        }
        // Per-shard files carry the shard prefix; the root-of-roots sits
        // unprefixed beside them.
        let names = mem.list().unwrap();
        assert!(names.iter().any(|f| f.starts_with("shard0--")));
        assert!(names.iter().any(|f| f.starts_with("shard1--")));
        assert!(names.contains(&"rr.a".to_string()) || names.contains(&"rr.b".to_string()));
        store.close();
        drop(store);

        let store = ShardedChunkStore::open(mem, &secret(), counter, cfg(2)).unwrap();
        for id in &ids {
            assert_eq!(
                store.read(*id).unwrap(),
                format!("chunk-{}", id.0).as_bytes()
            );
        }
        // Snapshot view agrees.
        let snap = store.snapshot();
        for id in &ids {
            assert_eq!(
                store.read_at_snapshot(&snap, *id).unwrap(),
                format!("chunk-{}", id.0).as_bytes()
            );
        }
    }

    #[test]
    fn single_shard_batches_stay_on_their_shard() {
        let mem = Arc::new(MemStore::new());
        let store =
            ShardedChunkStore::create(mem, &secret(), Arc::new(VolatileCounter::new()), cfg(2))
                .unwrap();
        // Write only to the shard of global id 0 (shard 0).
        let mut b = store.begin_batch();
        let id = b.allocate_chunk_id().unwrap();
        b.write(id, b"solo").unwrap();
        let ticket = store.append_batch(b, Durability::Durable).unwrap();
        assert!(matches!(ticket.repr, TicketRepr::Single { .. }));
        store.wait_durable(ticket).unwrap();
        assert_eq!(store.read(id).unwrap(), b"solo");
    }

    #[test]
    fn shard_count_changes_are_rejected() {
        let mem = Arc::new(MemStore::new());
        let counter = Arc::new(VolatileCounter::new());
        let store =
            ShardedChunkStore::create(mem.clone(), &secret(), counter.clone(), cfg(2)).unwrap();
        store.close();
        drop(store);
        for wrong in [1usize, 3] {
            match ShardedChunkStore::open(mem.clone(), &secret(), counter.clone(), cfg(wrong)) {
                Err(ChunkStoreError::ConfigMismatch(_)) => {}
                other => panic!("open with shards={wrong} gave {:?}", other.map(|_| ())),
            }
        }
        // And a legacy unsharded database refuses a sharded open.
        let mem1 = Arc::new(MemStore::new());
        let c1 = Arc::new(VolatileCounter::new());
        let s1 = ShardedChunkStore::create(mem1.clone(), &secret(), c1.clone(), cfg(1)).unwrap();
        s1.close();
        drop(s1);
        match ShardedChunkStore::open(mem1, &secret(), c1, cfg(2)) {
            Err(ChunkStoreError::ConfigMismatch(_)) => {}
            other => panic!("sharded open of unsharded db gave {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn whole_database_rollback_is_replay_detected() {
        let mem = Arc::new(MemStore::new());
        let counter = Arc::new(TamperableCounter::new());
        let store =
            ShardedChunkStore::create(mem.clone(), &secret(), counter.clone(), cfg(2)).unwrap();
        let mut b = store.begin_batch();
        let a = b.allocate_chunk_id().unwrap();
        let c = b.allocate_chunk_id().unwrap();
        b.write(a, b"alpha").unwrap();
        b.write(c, b"beta").unwrap();
        store.commit_batch(b, Durability::Durable).unwrap();
        store.close();
        drop(store);
        // Roll the hardware counter back below what the root-of-roots
        // expects — the signature of a replayed database copy.
        let now = counter.read().unwrap();
        counter.set(now - 2);
        match ShardedChunkStore::open(mem, &secret(), counter, cfg(2)) {
            Err(ChunkStoreError::ReplayDetected { .. }) => {}
            other => panic!("rolled-back counter gave {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn from_single_delegates() {
        let mem = Arc::new(MemStore::new());
        let inner = Arc::new(
            ChunkStore::create(
                mem,
                &secret(),
                Arc::new(VolatileCounter::new()),
                ChunkStoreConfig::small_for_tests(),
            )
            .unwrap(),
        );
        let store = ShardedChunkStore::from_single(inner.clone());
        assert_eq!(store.shards(), 1);
        let mut b = store.begin_batch();
        let id = b.allocate_chunk_id().unwrap();
        b.write(id, b"delegated").unwrap();
        store.commit_batch(b, Durability::Durable).unwrap();
        // Visible through the wrapped store directly: pure delegation.
        assert_eq!(inner.read(id).unwrap(), b"delegated");
        assert_eq!(store.stats().commits, inner.stats().commits);
    }

    #[test]
    fn lazy_cross_shard_commits_are_upgraded_to_durable() {
        let mem = Arc::new(MemStore::new());
        let counter = Arc::new(VolatileCounter::new());
        let store =
            ShardedChunkStore::create(mem.clone(), &secret(), counter.clone(), cfg(2)).unwrap();
        let mut b = store.begin_batch();
        let x = b.allocate_chunk_id().unwrap();
        let y = b.allocate_chunk_id().unwrap();
        b.write(x, b"left").unwrap();
        b.write(y, b"right").unwrap();
        // Request Lazy; the cross-shard path must still be fully durable.
        store.commit_batch(b, Durability::Lazy).unwrap();
        store.close();
        drop(store);
        let store = ShardedChunkStore::open(mem, &secret(), counter, cfg(2)).unwrap();
        assert_eq!(store.read(x).unwrap(), b"left");
        assert_eq!(store.read(y).unwrap(), b"right");
    }
}
