//! Chunk store error type.

use crate::ids::ChunkId;
use std::fmt;
use tdb_platform::PlatformError;

/// Result alias for the chunk store.
pub type Result<T> = std::result::Result<T, ChunkStoreError>;

/// Errors surfaced by the chunk store.
#[derive(Debug)]
pub enum ChunkStoreError {
    /// The untrusted store content fails validation: a hash or MAC does not
    /// match, or a structure is malformed in a way crash-atomicity cannot
    /// explain. This is the paper's "signals tamper detection".
    TamperDetected(String),
    /// The database state is internally valid but *older* than the one-way
    /// counter says it should be — someone replayed a saved copy (§3).
    ReplayDetected {
        /// Counter value embedded in the (validly MAC'd) anchor.
        anchor_counter: u64,
        /// Value read from the one-way counter hardware.
        hardware_counter: u64,
    },
    /// Operation on a chunk id that was never allocated or was deallocated.
    NotAllocated(ChunkId),
    /// Read of a chunk id that was allocated but never written.
    NotWritten(ChunkId),
    /// The store needed to grow but the configuration forbids it and
    /// cleaning could not free enough space.
    OutOfSpace {
        /// Bytes the failed operation needed.
        needed: u64,
    },
    /// A single chunk exceeds the maximum size this segment configuration
    /// can store (records never span segments).
    ChunkTooLarge {
        /// Requested chunk size.
        size: usize,
        /// Maximum supported by the configuration.
        max: usize,
    },
    /// An error from the platform substrates (I/O, simulated crash, ...).
    Platform(PlatformError),
    /// The store was opened with a configuration incompatible with the one
    /// it was created with (e.g. different security mode or segment size).
    ConfigMismatch(String),
    /// No database exists in the untrusted store (open of a fresh store).
    NoDatabase,
}

impl fmt::Display for ChunkStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkStoreError::TamperDetected(what) => {
                write!(f, "tamper detected: {what}")
            }
            ChunkStoreError::ReplayDetected { anchor_counter, hardware_counter } => write!(
                f,
                "replay detected: anchor counter {anchor_counter} vs hardware counter {hardware_counter}"
            ),
            ChunkStoreError::NotAllocated(id) => write!(f, "chunk {id:?} is not allocated"),
            ChunkStoreError::NotWritten(id) => write!(f, "chunk {id:?} has never been written"),
            ChunkStoreError::OutOfSpace { needed } => {
                write!(f, "out of space: {needed} more bytes needed and growth is disabled")
            }
            ChunkStoreError::ChunkTooLarge { size, max } => {
                write!(f, "chunk of {size} bytes exceeds the maximum of {max} for this segment size")
            }
            ChunkStoreError::Platform(e) => write!(f, "platform error: {e}"),
            ChunkStoreError::ConfigMismatch(m) => write!(f, "configuration mismatch: {m}"),
            ChunkStoreError::NoDatabase => write!(f, "no database present in the untrusted store"),
        }
    }
}

impl std::error::Error for ChunkStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChunkStoreError::Platform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlatformError> for ChunkStoreError {
    fn from(e: PlatformError) -> Self {
        ChunkStoreError::Platform(e)
    }
}

impl From<tdb_proof::SlotError> for ChunkStoreError {
    fn from(e: tdb_proof::SlotError) -> Self {
        match e {
            tdb_proof::SlotError::Missing => ChunkStoreError::NoDatabase,
            tdb_proof::SlotError::Tamper(m) => ChunkStoreError::TamperDetected(m),
            tdb_proof::SlotError::ModeMismatch => ChunkStoreError::ConfigMismatch(
                "database was created with a different security mode".into(),
            ),
            tdb_proof::SlotError::Platform(p) => ChunkStoreError::Platform(p),
        }
    }
}

impl From<tdb_proof::ProofError> for ChunkStoreError {
    fn from(e: tdb_proof::ProofError) -> Self {
        match e {
            tdb_proof::ProofError::Tamper(m) => ChunkStoreError::TamperDetected(m),
            tdb_proof::ProofError::Replay { trusted, attested } => {
                ChunkStoreError::ReplayDetected {
                    anchor_counter: attested,
                    hardware_counter: trusted,
                }
            }
            tdb_proof::ProofError::Usage(m) => ChunkStoreError::ConfigMismatch(m),
        }
    }
}

impl ChunkStoreError {
    /// Stable, layer-independent classification (see [`tdb_core::ErrorKind`]).
    pub fn kind(&self) -> tdb_core::ErrorKind {
        use tdb_core::ErrorKind;
        match self {
            ChunkStoreError::TamperDetected(_) => ErrorKind::Tamper,
            ChunkStoreError::ReplayDetected { .. } => ErrorKind::Replay,
            ChunkStoreError::NotAllocated(_) | ChunkStoreError::NotWritten(_) => {
                ErrorKind::NotFound
            }
            ChunkStoreError::OutOfSpace { .. } => ErrorKind::OutOfSpace,
            ChunkStoreError::ChunkTooLarge { .. } | ChunkStoreError::ConfigMismatch(_) => {
                ErrorKind::Usage
            }
            ChunkStoreError::Platform(_) => ErrorKind::Io,
            ChunkStoreError::NoDatabase => ErrorKind::NotFound,
        }
    }
}

impl From<ChunkStoreError> for tdb_core::Error {
    fn from(e: ChunkStoreError) -> Self {
        tdb_core::Error::with_source(e.kind(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ChunkStoreError::ReplayDetected {
            anchor_counter: 3,
            hardware_counter: 7,
        };
        assert!(e.to_string().contains("replay"));
        let e = ChunkStoreError::Platform(PlatformError::Crashed);
        assert!(std::error::Error::source(&e).is_some());
        assert!(ChunkStoreError::TamperDetected("x".into())
            .to_string()
            .contains("tamper"));
    }
}
