//! Copy-on-write database snapshots.
//!
//! A snapshot freezes the location map root (`Arc` clone — O(1)) so the
//! backup store can read a consistent database image while commits continue
//! (paper §3.2.1: "the location map can be inexpensively snapshot using
//! copy-on-write, which is used to implement fast backups"). Comparing two
//! snapshots ([`ChunkStore::diff_snapshots`](crate::ChunkStore::diff_snapshots))
//! prunes subtrees whose pages are identical, "which allows creation of
//! incremental backups".
//!
//! While a snapshot is alive the cleaner refuses to reclaim any segment
//! holding chunk versions or map pages the snapshot references.

use crate::ids::ChunkId;
use crate::map::{self, Location, Node};
use std::sync::Arc;

pub use crate::map::MapDiff as SnapshotDiff;

/// Internals shared between the snapshot handle and the store's registry.
pub(crate) struct SnapCore {
    pub(crate) root: Arc<Node>,
    pub(crate) depth: u32,
    pub(crate) fanout: usize,
    /// Commit sequence number the snapshot was taken at.
    pub(crate) seq: u64,
    /// One-way counter value observed when the snapshot was pinned (the
    /// shard's *virtual* counter on a sharded member store). Proof
    /// attestations deferred to [`Proven::prove`](crate::proof::Proven::prove)
    /// are minted over this value, so a proof stays bound to the freshness
    /// the reader actually observed, not to whatever the counter says later.
    pub(crate) counter_value: u64,
}

/// A frozen, consistent view of the whole chunk database.
///
/// Dropping the snapshot releases its cleaning pin automatically.
pub struct Snapshot {
    pub(crate) core: Arc<SnapCore>,
}

impl Snapshot {
    /// The commit sequence number this snapshot captured.
    pub fn commit_seq(&self) -> u64 {
        self.core.seq
    }

    /// Location of a chunk in this snapshot, if present.
    pub(crate) fn location_of(&self, id: ChunkId) -> Option<Location> {
        map::get_in_root(&self.core.root, self.core.depth, self.core.fanout, id)
    }

    /// Visit every chunk in the snapshot in id order.
    pub(crate) fn for_each_location(&self, f: &mut impl FnMut(ChunkId, &Location)) {
        walk(&self.core.root, self.core.fanout, self.core.depth, 0, f);
    }

    /// Ids of all chunks in the snapshot, ascending.
    pub fn chunk_ids(&self) -> Vec<ChunkId> {
        let mut ids = Vec::new();
        self.for_each_location(&mut |id, _| ids.push(id));
        ids
    }

    /// Number of chunks captured.
    pub fn len(&self) -> usize {
        let mut n = 0;
        self.for_each_location(&mut |_, _| n += 1);
        n
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        let mut empty = true;
        self.for_each_location(&mut |_, _| empty = false);
        empty
    }
}

impl SnapCore {
    /// Segments referenced by entries or map pages of this frozen tree.
    pub(crate) fn referenced_segments(&self) -> std::collections::HashSet<crate::ids::SegmentId> {
        let mut segs = std::collections::HashSet::new();
        walk(&self.root, self.fanout, self.depth, 0, &mut |_, loc| {
            segs.insert(loc.seg);
        });
        collect_page_segs(&self.root, &mut segs);
        segs
    }
}

fn walk(
    node: &Arc<Node>,
    fanout: usize,
    level: u32,
    base: u128,
    f: &mut impl FnMut(ChunkId, &Location),
) {
    match &node.kind {
        crate::map::NodeKind::Inner(children) => {
            let stride = (fanout as u128).pow(level - 1);
            for (i, child) in children.iter().enumerate() {
                if let Some(child) = child {
                    walk(child, fanout, level - 1, base + i as u128 * stride, f);
                }
            }
        }
        crate::map::NodeKind::Leaf(slots) => {
            for (i, slot) in slots.iter().enumerate() {
                if let Some(loc) = slot {
                    f(ChunkId((base + i as u128) as u64), loc);
                }
            }
        }
    }
}

fn collect_page_segs(
    node: &Arc<Node>,
    segs: &mut std::collections::HashSet<crate::ids::SegmentId>,
) {
    if let Some(loc) = &node.disk {
        segs.insert(loc.seg);
    }
    if let crate::map::NodeKind::Inner(children) = &node.kind {
        for child in children.iter().flatten() {
            collect_page_segs(child, segs);
        }
    }
}
