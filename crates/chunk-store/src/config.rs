//! Chunk store configuration.

/// Whether the store runs with full DRM protections or as a plain
/// log-structured store.
///
/// The paper evaluates both: **TDB-S** (hashing + encryption + one-way
/// counter) and **TDB** (none of those), Figure 10. `Off` keeps the same
/// on-disk structure but skips encryption, per-chunk hashing, anchor MACs
/// (replaced by a plain hash against accidental corruption), and counter
/// increments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecurityMode {
    /// No crypto: plain storage, accidental-corruption checks only.
    Off,
    /// Full protection: AES-128-CBC encryption, SHA-256 Merkle tree,
    /// HMAC'd anchor bound to the one-way counter.
    Full,
}

impl SecurityMode {
    /// Byte tag persisted in the anchor so an open with the wrong mode is
    /// rejected instead of misinterpreting ciphertext.
    pub(crate) fn tag(self) -> u8 {
        match self {
            SecurityMode::Off => 0,
            SecurityMode::Full => 1,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SecurityMode::Off),
            1 => Some(SecurityMode::Full),
            _ => None,
        }
    }
}

/// Tuning knobs for the chunk store.
#[derive(Clone, Debug)]
pub struct ChunkStoreConfig {
    /// Size of each log segment file in bytes. Smaller segments give the
    /// cleaner finer granularity; larger segments amortize file overhead.
    pub segment_size: u32,
    /// Fanout of the hierarchical location map (entries per map page).
    pub map_fanout: usize,
    /// Security mode (see [`SecurityMode`]).
    pub security: SecurityMode,
    /// Maximum database utilization: the maximal fraction of the log that
    /// may hold live data before the store grows instead of cleaning
    /// (paper §3.2.1 and the Figure 11 sweep). Default 0.60 as in §7.3.
    pub max_utilization: f64,
    /// Checkpoint the location map once the residual log exceeds this many
    /// bytes. Checkpoints are also taken by the cleaner and can be forced
    /// with [`ChunkStore::checkpoint`](crate::ChunkStore::checkpoint).
    pub checkpoint_threshold: u64,
    /// Maximum segments the cleaner relocates per triggered pass; bounds
    /// per-commit cleaning latency (§3.2.1: "bound the per-commit overhead
    /// of cleaning").
    pub cleaner_batch: usize,
    /// Number of segments to allocate when creating a fresh database.
    pub initial_segments: u32,
    /// If false, the store never grows beyond its current segments and
    /// returns `OutOfSpace` when cleaning cannot free enough; used by tests
    /// to exercise the space-pressure paths deterministically.
    pub allow_growth: bool,
    /// Maximum number of free chunk ids remembered across restarts in the
    /// anchor; ids beyond this leak (they are never handed out again),
    /// which only wastes map slots.
    pub free_list_cap: usize,
    /// Keep at most this many free segments around before truncating them
    /// away; bounds on-disk size after bursts (Figure 11's "resulting
    /// database size").
    pub free_segment_reserve: usize,
    /// Run checkpointing and cleaning on a dedicated maintenance thread.
    /// Commits only kick the thread (watermark checks are cheap); the
    /// thread relocates in bounded slices, releasing the store lock
    /// between slices so committers interleave. When false, maintenance
    /// runs inline on the committing thread (the pre-thread behavior,
    /// kept for deterministic tests and the tail-latency baseline).
    pub background_maintenance: bool,
    /// Low watermark: the maintenance thread starts cleaning when the
    /// free-segment count falls below this (and utilization permits).
    pub clean_low_free: usize,
    /// High watermark: cleaning passes continue until the free-segment
    /// count reaches this (or no garbage remains).
    pub clean_high_free: usize,
    /// Chunks relocated per maintenance slice. Bounds how long the store
    /// lock is held by one slice of a background cleaning pass.
    pub maintenance_slice_chunks: usize,
    /// Recompute the proof-tree digests of all dirty root-to-leaf map
    /// paths in one batched bottom-up pass after each durable anchor
    /// round. With the maintenance thread running, the leader hands the
    /// frozen root there (consecutive rounds coalesce, so hot leaves are
    /// hashed once per batch — `maint.rehash`; on a single-CPU host the
    /// warm-up is skipped, since it could only preempt the commit path);
    /// otherwise the pass runs in the leader's round, outside the store
    /// lock, overlapping the next group's appends (`commit.rehash`).
    /// Either way the pass dedups
    /// upper nodes shared across the group's commits and feeds whole
    /// levels through the multi-lane SHA-256 path, so later proof minting
    /// finds the Merkle memos hot instead of hashing lazily per path. No
    /// effect when hashing is off ([`SecurityMode::Off`]).
    pub eager_proof_rehash: bool,
    /// Number of independent chunk-store shards the object space is
    /// partitioned across (see [`ShardedChunkStore`](crate::ShardedChunkStore)).
    /// Each shard gets its own log, location map, and group-commit
    /// coordinator; a root-of-roots record binds the per-shard anchors to
    /// the single one-way counter. 1 (the default) is today's unsharded
    /// layout, bit-for-bit.
    pub shards: usize,
}

impl Default for ChunkStoreConfig {
    fn default() -> Self {
        ChunkStoreConfig {
            segment_size: 256 * 1024,
            map_fanout: 64,
            security: SecurityMode::Full,
            max_utilization: 0.60,
            checkpoint_threshold: 32 * 1024 * 1024,
            cleaner_batch: 32,
            initial_segments: 4,
            allow_growth: true,
            free_list_cap: 4096,
            free_segment_reserve: 4,
            background_maintenance: true,
            clean_low_free: 1,
            clean_high_free: 2,
            maintenance_slice_chunks: 64,
            eager_proof_rehash: true,
            shards: 1,
        }
    }
}

impl ChunkStoreConfig {
    /// A small configuration for unit tests: tiny segments so cleaning,
    /// growth, and checkpointing trigger quickly.
    pub fn small_for_tests() -> Self {
        ChunkStoreConfig {
            segment_size: 4 * 1024,
            map_fanout: 8,
            checkpoint_threshold: 16 * 1024,
            initial_segments: 2,
            cleaner_batch: 4,
            free_segment_reserve: 2,
            // Inline maintenance: unit tests (and the torture sweep) need
            // every checkpoint/clean to happen at a deterministic point.
            background_maintenance: false,
            ..Default::default()
        }
    }

    /// Free segments permanently reserved for maintenance traffic: on a
    /// fixed-size log, ordinary commits may not take the last free segment
    /// (the cleaner needs it to relocate into and the checkpoint to write
    /// map pages into — see `SegmentManager::maintenance_mode`). Zero when
    /// the log can grow, because growth makes the reserve unnecessary.
    pub(crate) fn maintenance_reserve(&self) -> usize {
        usize::from(!self.allow_growth)
    }

    /// [`clean_low_free`](Self::clean_low_free) shifted up by the
    /// maintenance reserve: commits on a fixed-size log block one segment
    /// earlier, so cleaning must also start one segment higher to preserve
    /// the configured headroom.
    pub(crate) fn effective_low_free(&self) -> usize {
        self.clean_low_free + self.maintenance_reserve()
    }

    /// [`clean_high_free`](Self::clean_high_free) shifted up by the
    /// maintenance reserve (see [`effective_low_free`](Self::effective_low_free)).
    pub(crate) fn effective_high_free(&self) -> usize {
        self.clean_high_free + self.maintenance_reserve()
    }

    /// Validate invariants; called by the store constructors.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_size < 4096 {
            return Err("segment_size must be at least 4096 bytes".into());
        }
        if !(2..=4096).contains(&self.map_fanout) {
            return Err("map_fanout must be between 2 and 4096".into());
        }
        if !(0.05..=0.95).contains(&self.max_utilization) {
            return Err("max_utilization must be within [0.05, 0.95]".into());
        }
        if self.initial_segments < 2 {
            return Err("initial_segments must be at least 2".into());
        }
        if self.clean_high_free < self.clean_low_free {
            return Err("clean_high_free must be at least clean_low_free".into());
        }
        if self.maintenance_slice_chunks == 0 {
            return Err("maintenance_slice_chunks must be at least 1".into());
        }
        if !(1..=64).contains(&self.shards) {
            return Err("shards must be between 1 and 64".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ChunkStoreConfig::default().validate().unwrap();
        ChunkStoreConfig::small_for_tests().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = ChunkStoreConfig {
            segment_size: 100,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ChunkStoreConfig {
            map_fanout: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ChunkStoreConfig {
            max_utilization: 0.99,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ChunkStoreConfig {
            initial_segments: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ChunkStoreConfig {
            clean_low_free: 4,
            clean_high_free: 2,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ChunkStoreConfig {
            maintenance_slice_chunks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        for shards in [0usize, 65] {
            let c = ChunkStoreConfig {
                shards,
                ..Default::default()
            };
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn security_mode_tags_roundtrip() {
        for mode in [SecurityMode::Off, SecurityMode::Full] {
            assert_eq!(SecurityMode::from_tag(mode.tag()), Some(mode));
        }
        assert_eq!(SecurityMode::from_tag(9), None);
    }
}
