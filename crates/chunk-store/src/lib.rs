//! The TDB **chunk store** — trusted storage on untrusted media (paper §3).
//!
//! The chunk store keeps a set of named, variable-sized byte sequences
//! (*chunks*) on storage the attacker fully controls, and guarantees:
//!
//! * **secrecy** — every stored byte (chunk payloads, location-map pages,
//!   commit records, the anchor) is encrypted with a key derived from the
//!   platform secret store;
//! * **tamper detection** — the whole database is covered by a Merkle hash
//!   tree embedded in the hierarchical location map; the root hash, together
//!   with the current one-way counter value, is MAC'd into a small *trusted
//!   anchor*. Any modification of the untrusted store is detected on read
//!   ([`ChunkStoreError::TamperDetected`]), and replaying an old copy of the
//!   whole database is detected against the one-way counter
//!   ([`ChunkStoreError::ReplayDetected`]);
//! * **atomicity** — any number of writes/deallocations group into a commit
//!   that is atomic with respect to crashes. Commits may be *durable* or
//!   *nondurable* (§3.2.2): a nondurable commit is guaranteed **not** to
//!   survive a crash until a later durable commit completes;
//! * **log-structured storage** (§3.2.1) — the log is the *only* storage;
//!   committed chunk versions are appended, never updated in place, which
//!   frustrates traffic analysis and makes copy-on-write snapshots (and
//!   therefore incremental backups) cheap. A cleaner reclaims obsolete chunk
//!   versions, bounded by a maximum-utilization knob; if cleaning cannot
//!   free enough space the store grows instead (§3.2.1).
//!
//! ```
//! use chunk_store::{ChunkStore, ChunkStoreConfig, Durability};
//! use tdb_platform::{MemStore, MemSecretStore, VolatileCounter};
//! use std::sync::Arc;
//!
//! let store = ChunkStore::create(
//!     Arc::new(MemStore::new()),
//!     &MemSecretStore::from_label("doc-test"),
//!     Arc::new(VolatileCounter::new()),
//!     ChunkStoreConfig::default(),
//! ).unwrap();
//!
//! let id = store.allocate_chunk_id().unwrap();
//! store.write(id, b"pay-per-view meter: 3").unwrap();
//! store.commit(Durability::Durable).unwrap();
//! assert_eq!(store.read(id).unwrap(), b"pay-per-view meter: 3");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod cleaner;
pub mod config;
pub mod crypto_ctx;
pub mod error;
pub mod ids;
pub mod layout;
pub(crate) mod maintenance;
pub mod map;
pub mod proof;
pub mod recovery;
pub mod segment;
pub mod sharded;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use config::{ChunkStoreConfig, SecurityMode};
pub use error::{ChunkStoreError, Result};
pub use ids::{ChunkId, SegmentId};
pub use map::Location;
pub use proof::{ProofBookmark, Proven};
pub use recovery::RecoveryReport;
pub use sharded::{ShardedChunkStore, ShardedCommitTicket, ShardedSnapshot, ShardedWriteBatch};
pub use snapshot::{Snapshot, SnapshotDiff};
pub use stats::StatsSnapshot;
pub use store::{ChunkStore, CommitTicket, WriteBatch};
pub use tdb_core::Durability;
