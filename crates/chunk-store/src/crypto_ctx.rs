//! Security-mode-aware crypto operations used by the chunk store.
//!
//! Everything the chunk store writes to the untrusted store passes through
//! this context:
//!
//! * [`CryptoCtx::seal`] / [`CryptoCtx::open`] encrypt/decrypt a payload
//!   (AES-128-CBC with a fresh DRBG IV prepended) — or pass it through
//!   unchanged when security is off;
//! * [`CryptoCtx::hash`] computes the per-record SHA-256 digest stored in
//!   the location map (the Merkle tree leaves and internal pointers);
//! * [`CryptoCtx::chain`] extends the commit-record authentication chain
//!   (HMAC when secure, plain SHA-256 when not — the plain variant still
//!   detects *accidental* corruption and torn writes during recovery);
//! * [`CryptoCtx::anchor_tag`] authenticates the trusted anchor.

use crate::config::SecurityMode;
use crate::error::{ChunkStoreError, Result};
use parking_lot::Mutex;
use tdb_crypto::{
    cbc_decrypt, cbc_encrypt, cbc_encrypt_into, derive_key, derive_secret, hmac_sha256, sha256,
    Aes128, Digest, HmacDrbg, DIGEST_LEN,
};
use tdb_platform::SecretStore;

/// Zero digest used where hashing is disabled.
pub const ZERO_DIGEST: Digest = [0u8; DIGEST_LEN];

/// The chunk store's crypto state: derived keys and the IV generator.
pub struct CryptoCtx {
    mode: SecurityMode,
    cipher: Option<Aes128>,
    mac_secret: [u8; 32],
    drbg: Mutex<HmacDrbg>,
}

impl CryptoCtx {
    /// Derive sub-keys from the platform secret. `iv_salt` should differ
    /// across database opens (e.g. the one-way counter value) so the IV
    /// stream never repeats even with a deterministic DRBG.
    pub fn new(mode: SecurityMode, secret_store: &dyn SecretStore, iv_salt: u64) -> Result<Self> {
        Self::with_domain(mode, secret_store, iv_salt, "tdb.chunk")
    }

    /// Like [`new`](Self::new) but with an explicit key-derivation domain,
    /// so other components (e.g. the backup store) get independent keys
    /// from the same platform secret.
    pub fn with_domain(
        mode: SecurityMode,
        secret_store: &dyn SecretStore,
        iv_salt: u64,
        domain: &str,
    ) -> Result<Self> {
        let master = secret_store.master_secret()?;
        let cipher = match mode {
            SecurityMode::Full => Some(Aes128::new(&derive_key(&master, &format!("{domain}.enc")))),
            SecurityMode::Off => None,
        };
        let mac_secret = derive_secret(&master, &format!("{domain}.mac"));
        let mut seed = Vec::with_capacity(40);
        seed.extend_from_slice(&derive_secret(&master, &format!("{domain}.iv")));
        seed.extend_from_slice(&iv_salt.to_le_bytes());
        Ok(CryptoCtx {
            mode,
            cipher,
            mac_secret,
            drbg: Mutex::new(HmacDrbg::new(&seed)),
        })
    }

    /// The mode this context operates in.
    pub fn mode(&self) -> SecurityMode {
        self.mode
    }

    /// Encrypt a payload for storage. In `Full` mode the result is
    /// `IV(16) || AES-CBC ciphertext`; in `Off` mode it is the payload
    /// verbatim.
    pub fn seal(&self, plain: &[u8]) -> Vec<u8> {
        match &self.cipher {
            Some(aes) => {
                let iv = self.drbg.lock().gen_iv();
                let cipher = cbc_encrypt(aes, &iv, plain);
                let mut out = Vec::with_capacity(16 + cipher.len());
                out.extend_from_slice(&iv);
                out.extend_from_slice(&cipher);
                out
            }
            None => plain.to_vec(),
        }
    }

    /// Like [`seal`](Self::seal) but appends the sealed bytes to `out`
    /// instead of allocating a fresh vector, so the commit path can seal a
    /// whole batch of chunks into one arena. Returns the number of bytes
    /// appended (always [`sealed_len`](Self::sealed_len) of the input).
    pub fn seal_into(&self, plain: &[u8], out: &mut Vec<u8>) -> usize {
        match &self.cipher {
            Some(aes) => {
                let iv = self.drbg.lock().gen_iv();
                out.extend_from_slice(&iv);
                16 + cbc_encrypt_into(aes, &iv, plain, out)
            }
            None => {
                out.extend_from_slice(plain);
                plain.len()
            }
        }
    }

    /// Inverse of [`seal`](Self::seal). A structurally invalid ciphertext is
    /// reported as tampering (the hash check normally fires first).
    pub fn open(&self, sealed: &[u8]) -> Result<Vec<u8>> {
        match &self.cipher {
            Some(aes) => {
                if sealed.len() < 16 + 16 {
                    return Err(ChunkStoreError::TamperDetected(
                        "sealed payload shorter than IV + one block".into(),
                    ));
                }
                let iv: [u8; 16] = sealed[..16].try_into().expect("16 bytes");
                cbc_decrypt(aes, &iv, &sealed[16..]).map_err(|_| {
                    ChunkStoreError::TamperDetected("ciphertext padding invalid".into())
                })
            }
            None => Ok(sealed.to_vec()),
        }
    }

    /// Number of stored bytes for a `plain_len`-byte payload.
    pub fn sealed_len(&self, plain_len: usize) -> usize {
        match self.mode {
            SecurityMode::Full => 16 + tdb_crypto::ciphertext_len(plain_len),
            SecurityMode::Off => plain_len,
        }
    }

    /// Digest of stored record bytes, kept in the location map. `Off` mode
    /// stores (and never checks) zeros, mirroring the paper's TDB-without-
    /// security configuration that skips hashing entirely.
    pub fn hash(&self, stored: &[u8]) -> Digest {
        match self.mode {
            SecurityMode::Full => sha256(stored),
            SecurityMode::Off => ZERO_DIGEST,
        }
    }

    /// Whether record hashes are verified on read.
    pub fn verifies_hashes(&self) -> bool {
        self.mode == SecurityMode::Full
    }

    /// Extend the commit chain: `chain' = H(prev || payload)`, keyed in
    /// `Full` mode.
    pub fn chain(&self, prev: &Digest, payload: &[u8]) -> Digest {
        match self.mode {
            SecurityMode::Full => {
                let mut mac = tdb_crypto::HmacSha256::new(&self.mac_secret);
                mac.update(prev);
                mac.update(payload);
                mac.finalize()
            }
            SecurityMode::Off => {
                let mut h = tdb_crypto::Sha256::new();
                h.update(prev);
                h.update(payload);
                h.finalize()
            }
        }
    }

    /// Authentication tag over the anchor bytes.
    pub fn anchor_tag(&self, bytes: &[u8]) -> Digest {
        self.anchor_tag_for_mode(self.mode, bytes)
    }

    /// Anchor tag as a store created in `mode` (with this context's key
    /// material) would have computed it. Lets anchor decoding authenticate a
    /// slot under its *claimed* mode before deciding whether a mode
    /// difference is a genuine configuration mismatch or tampering.
    pub fn anchor_tag_for_mode(&self, mode: SecurityMode, bytes: &[u8]) -> Digest {
        match mode {
            SecurityMode::Full => hmac_sha256(&self.mac_secret, bytes),
            SecurityMode::Off => sha256(bytes),
        }
    }

    /// Constant-time-ish comparison for tags and hashes.
    pub fn tags_equal(a: &Digest, b: &Digest) -> bool {
        tdb_crypto::ct_eq(a, b)
    }

    /// The MAC secret proofs and attestations are minted under. A client
    /// holding this key (via a [`tdb_proof::TrustAnchor`]) can verify
    /// proofs — and also mint them, which is the paper's trust model: the
    /// key holder trusts itself; proofs convince the key holder that the
    /// *untrusted store* behaved.
    pub(crate) fn proof_mac_key(&self) -> &[u8; 32] {
        &self.mac_secret
    }
}

/// The chunk store's crypto context *is* the slot sealer of the extracted
/// trust layer: both the anchor slots and the sharded root-of-roots frame
/// their bodies through this one implementation.
impl tdb_proof::SlotSealer for CryptoCtx {
    fn mode_tag(&self) -> u8 {
        self.mode.tag()
    }

    fn seal_body(&self, plain: &[u8]) -> Vec<u8> {
        self.seal(plain)
    }

    fn open_body(&self, sealed: &[u8]) -> std::result::Result<Vec<u8>, tdb_proof::SlotError> {
        self.open(sealed).map_err(|e| match e {
            ChunkStoreError::TamperDetected(m) => tdb_proof::SlotError::Tamper(m),
            ChunkStoreError::Platform(p) => tdb_proof::SlotError::Platform(p),
            other => tdb_proof::SlotError::Tamper(other.to_string()),
        })
    }

    fn tag_for_mode(&self, mode_tag: u8, bytes: &[u8]) -> Option<Digest> {
        SecurityMode::from_tag(mode_tag).map(|mode| self.anchor_tag_for_mode(mode, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_platform::MemSecretStore;

    fn ctx(mode: SecurityMode) -> CryptoCtx {
        CryptoCtx::new(mode, &MemSecretStore::from_label("ctx-test"), 1).unwrap()
    }

    #[test]
    fn full_mode_seal_roundtrip_and_randomized() {
        let c = ctx(SecurityMode::Full);
        let payload = b"meter=41".to_vec();
        let s1 = c.seal(&payload);
        let s2 = c.seal(&payload);
        assert_ne!(s1, s2, "fresh IV per seal");
        assert_eq!(c.open(&s1).unwrap(), payload);
        assert_eq!(c.open(&s2).unwrap(), payload);
        assert_eq!(s1.len(), c.sealed_len(payload.len()));
        // Ciphertext must not contain the plaintext.
        assert!(!s1.windows(payload.len()).any(|w| w == payload));
    }

    #[test]
    fn seal_into_appends_and_roundtrips() {
        for mode in [SecurityMode::Full, SecurityMode::Off] {
            let c = ctx(mode);
            let payload = b"meter=41 and then some longer payload".to_vec();
            let mut arena = b"existing".to_vec();
            let n = c.seal_into(&payload, &mut arena);
            assert_eq!(n, c.sealed_len(payload.len()));
            assert_eq!(&arena[..8], b"existing");
            assert_eq!(arena.len(), 8 + n);
            assert_eq!(c.open(&arena[8..]).unwrap(), payload);
        }
    }

    #[test]
    fn off_mode_is_passthrough() {
        let c = ctx(SecurityMode::Off);
        let payload = b"meter=41".to_vec();
        assert_eq!(c.seal(&payload), payload);
        assert_eq!(c.open(&payload).unwrap(), payload);
        assert_eq!(c.sealed_len(8), 8);
        assert_eq!(c.hash(&payload), ZERO_DIGEST);
        assert!(!c.verifies_hashes());
    }

    #[test]
    fn full_mode_hash_detects_bit_flip() {
        let c = ctx(SecurityMode::Full);
        let mut stored = c.seal(b"account balance: 100");
        let h = c.hash(&stored);
        stored[20] ^= 1;
        assert_ne!(c.hash(&stored), h);
    }

    #[test]
    fn open_rejects_truncated_ciphertext() {
        let c = ctx(SecurityMode::Full);
        let sealed = c.seal(b"data");
        assert!(matches!(
            c.open(&sealed[..10]),
            Err(ChunkStoreError::TamperDetected(_))
        ));
    }

    #[test]
    fn chain_depends_on_prev_and_payload_and_key() {
        let c = ctx(SecurityMode::Full);
        let c2 =
            CryptoCtx::new(SecurityMode::Full, &MemSecretStore::from_label("other"), 1).unwrap();
        let base = ZERO_DIGEST;
        let a = c.chain(&base, b"commit 1");
        assert_ne!(a, c.chain(&base, b"commit 2"));
        assert_ne!(a, c.chain(&a, b"commit 1"));
        assert_ne!(a, c2.chain(&base, b"commit 1"));
        // Off-mode chain is keyless but still input-sensitive.
        let off = ctx(SecurityMode::Off);
        assert_ne!(off.chain(&base, b"commit 1"), off.chain(&base, b"commit 2"));
    }

    #[test]
    fn different_iv_salt_gives_different_iv_stream() {
        let s = MemSecretStore::from_label("salted");
        let a = CryptoCtx::new(SecurityMode::Full, &s, 1).unwrap();
        let b = CryptoCtx::new(SecurityMode::Full, &s, 2).unwrap();
        assert_ne!(a.seal(b"x"), b.seal(b"x"));
    }

    #[test]
    fn anchor_tag_modes() {
        let full = ctx(SecurityMode::Full);
        let off = ctx(SecurityMode::Off);
        let t_full = full.anchor_tag(b"anchor");
        let t_off = off.anchor_tag(b"anchor");
        // Off mode is a plain hash: reproducible without the key.
        assert_eq!(t_off, sha256(b"anchor"));
        assert_ne!(t_full, t_off);
        assert!(CryptoCtx::tags_equal(&t_full, &full.anchor_tag(b"anchor")));
    }
}
