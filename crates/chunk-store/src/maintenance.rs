//! The background maintenance thread: checkpointing and cleaning off the
//! commit path.
//!
//! Committers never run maintenance when `background_maintenance` is on —
//! the group-commit leader only checks two cheap watermarks after its
//! round and *kicks* this thread:
//!
//! * residual log ≥ `checkpoint_threshold` → checkpoint;
//! * free segments < `clean_low_free` (and utilization ≤ the configured
//!   maximum) → clean until `clean_high_free` free segments exist or no
//!   garbage remains.
//!
//! A cleaning pass runs *incrementally*: victim selection, then bounded
//! relocation slices of `maintenance_slice_chunks` chunks each — the
//! store lock is released between slices so committers interleave — then
//! the closing checkpoint and the frees. Each slice re-checks snapshot
//! pins and chunk locations, so commits and snapshots taken mid-pass are
//! always honored (see `cleaner`). Crash-safety is unchanged from the
//! synchronous cleaner: only the closing checkpoint anchors the
//! relocations, so an abandoned pass is just dead log tail.
//!
//! Backpressure: a committer that hits `OutOfSpace` kicks the thread and
//! blocks on [`MaintShared`]'s progress condvar until segments are freed
//! or a maintenance round completes (see `StoreCore::stall_for_space`),
//! then retries its append. The stall protocol is epoch-based to rule out
//! lost wakeups: the waiter snapshots the `(rounds, free_epoch)` pair
//! *under the handshake lock* before checking for free segments, and every
//! notification advances one of the epochs under that same lock — so
//! progress that lands between the waiter's check and its sleep makes the
//! wait return immediately instead of being missed. Crucially,
//! [`MaintShared::note_freed`] re-notifies after *every* segment free
//! (mid-round, from the pass's closing checkpoint), not just at round end —
//! the round-granular notify was the 1-CPU release hang: a waiter could
//! sleep a full timeout (and, bounded at 8 tries, surface a spurious
//! `OutOfSpace`) while free segments already existed.
//!
//! The thread also polls the [`tdb_obs::watchdog`] between kicks: when any
//! registered operation (commit, stall, cross-shard commit) exceeds the
//! `TDB_WATCHDOG_MS` threshold it assembles a diagnostic dump — flight
//! recorder window, per-thread last events, every registered store's
//! anchor/counter/free-segment state — and writes it to `TDB_DIAG_DIR`.
//!
//! Shutdown (`ChunkStore::close` or drop) sets the shutdown flag and
//! joins: an in-flight pass notices between slices and abandons.

use crate::cleaner::{self, CleanPlan};
use crate::error::Result;
use crate::stats::add;
use crate::store::StoreCore;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdb_obs::{trace, watchdog, TraceKind, TraceLayer};

/// Handshake state between committers, the maintenance thread, and
/// shutdown. A leaf lock: never held while taking the store lock.
pub(crate) struct MaintShared {
    state: Mutex<MaintState>,
    /// Wakes the maintenance thread (kick or shutdown).
    wake: Condvar,
    /// Wakes committers stalled for space (progress or shutdown).
    progress: Condvar,
}

#[derive(Default)]
struct MaintState {
    kicked: bool,
    /// A group-commit leader parked a frozen root in `rehash_pending`.
    /// Separate from `kicked` on purpose: draining the rehash slot never
    /// takes the store lock, so it must not schedule a full maintenance
    /// round (one store-lock round per commit would put contention right
    /// back on the commit path the deferral took it off of).
    rehash_kick: bool,
    shutdown: bool,
    thread_running: bool,
    /// Completed maintenance rounds (bumped even for fruitless ones, so
    /// stalled committers re-check instead of sleeping forever).
    rounds: u64,
    /// Bumped (with a notify) every time segments are freed — including
    /// mid-round — so stalled committers wake at the first free, not at
    /// round end.
    free_epoch: u64,
    /// Segments freed by the most recently completed round. Stalled
    /// committers use it to tell "round ran and reclaimed nothing" (give
    /// up: true out-of-space) from "round still pending".
    last_round_freed: u64,
}

/// A stalled committer's view of maintenance progress (see
/// [`MaintShared::observe_and_kick`] / [`MaintShared::wait_progress`]).
#[derive(Clone, Copy)]
pub(crate) struct StallProgress {
    /// Completed rounds at observation time.
    pub(crate) rounds: u64,
    /// Free epoch at observation time.
    pub(crate) free_epoch: u64,
    /// Whether the maintenance thread was alive.
    pub(crate) thread_running: bool,
}

impl MaintShared {
    pub(crate) fn new() -> MaintShared {
        MaintShared {
            state: Mutex::new(MaintState::default()),
            wake: Condvar::new(),
            progress: Condvar::new(),
        }
    }

    /// Mark the thread as live. Called before spawning it so a commit
    /// racing store construction kicks instead of maintaining inline.
    pub(crate) fn set_thread_running(&self) {
        self.state.lock().thread_running = true;
    }

    pub(crate) fn thread_running(&self) -> bool {
        self.state.lock().thread_running
    }

    /// Request a maintenance round (idempotent while one is pending).
    pub(crate) fn kick(&self) {
        let mut st = self.state.lock();
        if !st.kicked {
            st.kicked = true;
            self.wake.notify_one();
        }
    }

    /// Wake the thread to drain the deferred-rehash slot only — no
    /// maintenance round is scheduled (see [`MaintState::rehash_kick`]).
    pub(crate) fn kick_rehash(&self) {
        let mut st = self.state.lock();
        if !st.rehash_kick {
            st.rehash_kick = true;
            self.wake.notify_one();
        }
    }

    /// Ask the thread to exit (it abandons an in-flight pass between
    /// slices) and wake everyone so nothing sleeps through the shutdown.
    pub(crate) fn request_shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.wake.notify_all();
        self.progress.notify_all();
    }

    fn shutdown_requested(&self) -> bool {
        self.state.lock().shutdown
    }

    /// Segments were freed: advance the free epoch and wake every stalled
    /// committer. The notify happens under the handshake lock — the same
    /// lock a staller's epoch snapshot and sleep use — so it can never
    /// land in the gap between a staller's check and its wait.
    pub(crate) fn note_freed(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut st = self.state.lock();
        st.free_epoch += 1;
        self.progress.notify_all();
    }

    /// Snapshot the progress epochs and (re-)kick the thread. The epochs
    /// are read under the handshake lock *before* the caller checks the
    /// store's free count, so any progress that lands after this call is
    /// guaranteed to make the next [`Self::wait_progress`] return
    /// immediately.
    pub(crate) fn observe_and_kick(&self) -> StallProgress {
        let mut st = self.state.lock();
        if st.thread_running && !st.kicked {
            st.kicked = true;
            self.wake.notify_one();
        }
        StallProgress {
            rounds: st.rounds,
            free_epoch: st.free_epoch,
            thread_running: st.thread_running,
        }
    }

    /// Block until progress advances past `seen` (a segment free or a
    /// completed round), or `timeout` passes, or the thread goes away.
    /// Returns the latest view; the caller compares epochs against `seen`.
    pub(crate) fn wait_progress(&self, seen: StallProgress, timeout: Duration) -> StallProgress {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while st.rounds == seen.rounds
            && st.free_epoch == seen.free_epoch
            && st.thread_running
            && !st.shutdown
        {
            if self.progress.wait_until(&mut st, deadline).timed_out() {
                break;
            }
        }
        StallProgress {
            rounds: st.rounds,
            free_epoch: st.free_epoch,
            thread_running: st.thread_running,
        }
    }

    /// Handshake state for diagnostic dumps. Non-blocking: reports
    /// `{"locked": true}` if the state lock is held (the dump path must
    /// never wedge on the locks it is diagnosing).
    pub(crate) fn diag_json(&self) -> tdb_obs::Json {
        match self.state.try_lock() {
            Some(st) => {
                let mut j = tdb_obs::Json::obj();
                j.push("thread_running", st.thread_running);
                j.push("kicked", st.kicked);
                j.push("rehash_kick", st.rehash_kick);
                j.push("shutdown", st.shutdown);
                j.push("rounds", st.rounds);
                j.push("free_epoch", st.free_epoch);
                j.push("last_round_freed", st.last_round_freed);
                j
            }
            None => tdb_obs::Json::object([("locked", tdb_obs::Json::from(true))]),
        }
    }
}

/// Whether waking the maintenance thread for a deferred rehash pass can
/// overlap with the committer at all. On a single-CPU host the "background"
/// pass just preempts the committer mid-anchor (one context switch per
/// group), so the root stays parked until a natural wakeup instead — the
/// passes coalesce harder and the commit path never pays for the hashing.
pub(crate) fn rehash_overlap_pays() -> bool {
    static MULTI: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MULTI.get_or_init(|| std::thread::available_parallelism().is_ok_and(|n| n.get() > 1))
}

/// How long the thread sleeps between watchdog polls when idle. Tight
/// thresholds poll proportionally faster so a stall is caught within
/// ~1.25× the threshold.
fn watchdog_poll_interval() -> Duration {
    let thr = watchdog::threshold_ms();
    if thr == 0 {
        return Duration::from_secs(60); // watchdog off: just re-check config
    }
    Duration::from_millis((thr / 4).clamp(25, 1000))
}

/// Scan the watchdog's in-flight op table and emit a diagnostic dump if
/// anything exceeded the threshold. Rate-limited process-wide by
/// [`watchdog::claim_dump`], so N stores' maintenance threads do not
/// write N copies.
fn watchdog_poll(core: &StoreCore) {
    let thr_ms = watchdog::threshold_ms();
    if thr_ms == 0 {
        return;
    }
    let stalled = watchdog::stalled_ops(thr_ms.saturating_mul(1_000_000));
    if stalled.is_empty() || !watchdog::claim_dump() {
        return;
    }
    add(&core.stats.watchdog_dumps, 1);
    let worst = &stalled[0];
    trace::emit(
        TraceLayer::Maint,
        TraceKind::WatchdogDump,
        worst.xid,
        stalled.len() as u64,
        worst.age_ns / 1_000_000,
    );
    let reason = format!(
        "watchdog: {} on t{} in flight {:.0}ms (threshold {}ms); {} op(s) stalled",
        worst.kind.name(),
        worst.tid,
        worst.age_ns as f64 / 1e6,
        thr_ms,
        stalled.len()
    );
    let dump = tdb_obs::diag::collect_with(&reason, &stalled);
    match tdb_obs::diag::write_dump(&dump, worst.kind.name()) {
        Ok(Some(path)) => eprintln!("tdb-diag: {reason} -> {}", path.display()),
        Ok(None) => eprintln!("tdb-diag: {reason} (set TDB_DIAG_DIR to persist dumps)"),
        Err(e) => eprintln!("tdb-diag: {reason} (failed to write dump: {e})"),
    }
}

/// Thread body. Holds an `Arc<StoreCore>` (not the `ChunkStore` handle),
/// so dropping the store still reaches `ChunkStore::close`'s join.
pub(crate) fn run(core: Arc<StoreCore>) {
    loop {
        let kicked = {
            let mut st = core.maint.state.lock();
            let deadline = Instant::now() + watchdog_poll_interval();
            while !st.kicked && !st.rehash_kick && !st.shutdown {
                if core.maint.wake.wait_until(&mut st, deadline).timed_out() {
                    break;
                }
            }
            if st.shutdown {
                st.thread_running = false;
                core.maint.progress.notify_all();
                return;
            }
            let kicked = st.kicked;
            st.kicked = false;
            st.rehash_kick = false;
            kicked
        };
        // Drain the deferred-rehash slot on every wakeup — explicit kicks
        // and timer polls alike — so parked roots coalesce instead of
        // rotting. Taking only the latest root is enough: its pass covers
        // every earlier round's dirty paths too (the nodes are shared),
        // which is exactly how consecutive rounds coalesce. No store lock
        // is taken anywhere on this path — the root is a frozen Arc.
        let pending = core.rehash_pending.lock().take();
        if let Some(root) = pending {
            let mut sw = tdb_obs::Stopwatch::start();
            crate::map::rehash_root_batched(&root);
            if sw.running() {
                core.stats.phases.maint_rehash.record(sw.lap());
            }
        }
        if kicked {
            add(&core.stats.maintenance_wakeups, 1);
            let round = core.maint.state.lock().rounds;
            trace::emit(TraceLayer::Maint, TraceKind::MaintRound, 0, round, 0);
            // A store failure here (the untrusted store erroring) is not
            // fatal to the thread: the round's work stays retryable (the
            // closing checkpoint is the only anchored truth), committers
            // see the same error on their own operations, and the
            // backpressure path surfaces persistent out-of-space as an
            // error.
            let freed = match one_round(&core) {
                Ok(n) => n,
                Err(e) => {
                    // Not fatal to the thread (see the comment above), but
                    // it must not be invisible either: record it in the
                    // flight recorder and, when asked, on stderr.
                    let free = core.inner.lock().segs.free_count();
                    trace::emit(
                        TraceLayer::Maint,
                        TraceKind::MaintError,
                        0,
                        round,
                        free as u64,
                    );
                    if std::env::var_os("TDB_MAINT_DEBUG").is_some() {
                        eprintln!("tdb-maint: round {round} failed (free={free}): {e}");
                    }
                    0
                }
            };
            trace::emit(TraceLayer::Maint, TraceKind::MaintRoundEnd, 0, round, freed);
            {
                let mut st = core.maint.state.lock();
                st.rounds += 1;
                st.last_round_freed = freed;
                core.maint.progress.notify_all();
            }
        }
        // Poll the stall watchdog on every wakeup (kick or timer): commits
        // and stalls register in the global in-flight table, and this
        // thread is the one actor guaranteed to stay responsive.
        watchdog_poll(&core);
    }
}

/// One maintenance round: checkpoint if the residual log is long, then
/// clean up to the high watermark, one incremental pass at a time.
/// Returns the number of segments freed.
fn one_round(core: &StoreCore) -> Result<u64> {
    let mut total_freed = 0u64;
    let covered = {
        let mut inner = core.inner.lock();
        if inner.residual_bytes >= inner.cfg.checkpoint_threshold {
            match inner.do_checkpoint() {
                Ok(()) => Some(inner.commit_seq),
                // A full fixed-size log can refuse the threshold
                // checkpoint; that is space pressure, not a reason to skip
                // the round — cleaning below may free dead segments whose
                // smaller closing checkpoint still fits.
                Err(e) if e.kind() == tdb_core::ErrorKind::OutOfSpace => None,
                Err(e) => return Err(e),
            }
        } else {
            None
        }
    };
    if let Some(covered) = covered {
        core.publish_durable(covered);
    }
    let mut forced_checkpoint = false;
    loop {
        if core.maint.shutdown_requested() {
            return Ok(total_freed);
        }
        {
            let inner = core.inner.lock();
            if inner.segs.free_count() >= inner.cfg.effective_high_free()
                || inner.segs.utilization() > inner.cfg.max_utilization
            {
                return Ok(total_freed);
            }
        }
        match incremental_pass(core, &mut |_| !core.maint.shutdown_requested())? {
            PassResult::NoGarbage => {
                // The garbage may all sit in still-residual segments (no
                // checkpoint since it was made), which the cleaner skips.
                // Below the low watermark that is space pressure, not
                // cleanliness: shrink the residual set once and retry.
                let covered = {
                    let mut inner = core.inner.lock();
                    if forced_checkpoint
                        || inner.residual_segments.len() <= 1
                        || inner.segs.free_count() >= inner.cfg.effective_low_free()
                    {
                        return Ok(total_freed);
                    }
                    forced_checkpoint = true;
                    inner.do_checkpoint()?;
                    inner.commit_seq
                };
                core.publish_durable(covered);
            }
            PassResult::Abandoned => return Ok(total_freed),
            PassResult::Freed(0) => {
                // Victims existed but none could be freed (pinned, or
                // re-used by the pass's own checkpoint); retrying
                // immediately would spin. The next kick retries.
                add(&core.stats.maintenance_gave_up, 1);
                return Ok(total_freed);
            }
            PassResult::Freed(n) => total_freed += n as u64,
        }
    }
}

/// How an incremental pass ended.
pub(crate) enum PassResult {
    /// Nothing to clean (or another pass is already in flight).
    NoGarbage,
    /// The pass completed; this many segments were freed.
    Freed(usize),
    /// `keep_going` said stop (shutdown); the relocations already
    /// appended are dead log tail until a later pass redoes them.
    Abandoned,
}

/// Drive one cleaning pass slice by slice, releasing the store lock
/// between slices. `keep_going` is consulted before each slice with its
/// index; returning `false` abandons the pass (also the test hook for
/// mid-pass snapshots — it runs with the store unlocked).
pub(crate) fn incremental_pass(
    core: &StoreCore,
    keep_going: &mut dyn FnMut(usize) -> bool,
) -> Result<PassResult> {
    let mut sw = tdb_obs::Stopwatch::start();
    let slice_cap;
    let mut plan = {
        let mut inner = core.inner.lock();
        if inner.pass_active {
            // A concurrent pass (manual `clean()` racing the thread) is
            // already doing this work; don't double-free its victims.
            return Ok(PassResult::NoGarbage);
        }
        slice_cap = inner.cfg.maintenance_slice_chunks;
        match cleaner::select_victims(&mut inner)? {
            None => return Ok(PassResult::NoGarbage),
            Some(plan) => {
                inner.pass_active = true;
                plan
            }
        }
    };
    let result = drive_slices(core, &mut plan, slice_cap, keep_going);
    core.inner.lock().pass_active = false;
    if sw.running() {
        core.stats.phases.cleaner_pass.record(sw.lap());
    }
    result
}

fn drive_slices(
    core: &StoreCore,
    plan: &mut CleanPlan,
    slice_cap: usize,
    keep_going: &mut dyn FnMut(usize) -> bool,
) -> Result<PassResult> {
    let mut slice = 0usize;
    loop {
        if !keep_going(slice) {
            return Ok(PassResult::Abandoned);
        }
        let mut inner = core.inner.lock();
        let done = cleaner::relocate_slice(&mut inner, plan, slice_cap)?;
        if done {
            let freed = cleaner::finish_pass(&mut inner, plan)?;
            let covered = inner.commit_seq;
            drop(inner);
            // The closing checkpoint anchored everything appended so far;
            // wake followers it covered — and, before anything else, wake
            // committers stalled for space: each freed segment must
            // re-notify so a staller never sleeps through available space.
            core.maint.note_freed(freed as u64);
            core.publish_durable(covered);
            return Ok(PassResult::Freed(freed));
        }
        drop(inner);
        // Give committers the lock between slices.
        std::thread::yield_now();
        slice += 1;
    }
}
