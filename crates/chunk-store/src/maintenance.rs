//! The background maintenance thread: checkpointing and cleaning off the
//! commit path.
//!
//! Committers never run maintenance when `background_maintenance` is on —
//! the group-commit leader only checks two cheap watermarks after its
//! round and *kicks* this thread:
//!
//! * residual log ≥ `checkpoint_threshold` → checkpoint;
//! * free segments < `clean_low_free` (and utilization ≤ the configured
//!   maximum) → clean until `clean_high_free` free segments exist or no
//!   garbage remains.
//!
//! A cleaning pass runs *incrementally*: victim selection, then bounded
//! relocation slices of `maintenance_slice_chunks` chunks each — the
//! store lock is released between slices so committers interleave — then
//! the closing checkpoint and the frees. Each slice re-checks snapshot
//! pins and chunk locations, so commits and snapshots taken mid-pass are
//! always honored (see `cleaner`). Crash-safety is unchanged from the
//! synchronous cleaner: only the closing checkpoint anchors the
//! relocations, so an abandoned pass is just dead log tail.
//!
//! Backpressure: a committer that hits `OutOfSpace` kicks the thread and
//! blocks on [`MaintShared`]'s progress condvar until a maintenance round
//! completes (bounded; see `StoreCore::stall_for_space`), then retries
//! its append. Shutdown (`ChunkStore::close` or drop) sets the shutdown
//! flag and joins: an in-flight pass notices between slices and abandons.

use crate::cleaner::{self, CleanPlan};
use crate::error::Result;
use crate::stats::add;
use crate::store::StoreCore;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Handshake state between committers, the maintenance thread, and
/// shutdown. A leaf lock: never held while taking the store lock.
pub(crate) struct MaintShared {
    state: Mutex<MaintState>,
    /// Wakes the maintenance thread (kick or shutdown).
    wake: Condvar,
    /// Wakes committers stalled for space (progress or shutdown).
    progress: Condvar,
}

#[derive(Default)]
struct MaintState {
    kicked: bool,
    shutdown: bool,
    thread_running: bool,
    /// Completed maintenance rounds (bumped even for fruitless ones, so
    /// stalled committers re-check instead of sleeping forever).
    rounds: u64,
}

impl MaintShared {
    pub(crate) fn new() -> MaintShared {
        MaintShared {
            state: Mutex::new(MaintState::default()),
            wake: Condvar::new(),
            progress: Condvar::new(),
        }
    }

    /// Mark the thread as live. Called before spawning it so a commit
    /// racing store construction kicks instead of maintaining inline.
    pub(crate) fn set_thread_running(&self) {
        self.state.lock().thread_running = true;
    }

    pub(crate) fn thread_running(&self) -> bool {
        self.state.lock().thread_running
    }

    /// Request a maintenance round (idempotent while one is pending).
    pub(crate) fn kick(&self) {
        let mut st = self.state.lock();
        if !st.kicked {
            st.kicked = true;
            self.wake.notify_one();
        }
    }

    /// Ask the thread to exit (it abandons an in-flight pass between
    /// slices) and wake everyone so nothing sleeps through the shutdown.
    pub(crate) fn request_shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.wake.notify_all();
        self.progress.notify_all();
    }

    fn shutdown_requested(&self) -> bool {
        self.state.lock().shutdown
    }

    /// Kick the thread and block until one maintenance round completes
    /// (or `timeout` passes, or the thread goes away). Returns `false` if
    /// no thread was running — the caller must maintain inline.
    pub(crate) fn kick_and_wait_round(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        if !st.thread_running {
            return false;
        }
        let before = st.rounds;
        if !st.kicked {
            st.kicked = true;
            self.wake.notify_one();
        }
        while st.rounds == before && st.thread_running && !st.shutdown {
            if self.progress.wait_until(&mut st, deadline).timed_out() {
                break;
            }
        }
        true
    }
}

/// Thread body. Holds an `Arc<StoreCore>` (not the `ChunkStore` handle),
/// so dropping the store still reaches `ChunkStore::close`'s join.
pub(crate) fn run(core: Arc<StoreCore>) {
    loop {
        {
            let mut st = core.maint.state.lock();
            while !st.kicked && !st.shutdown {
                core.maint.wake.wait(&mut st);
            }
            if st.shutdown {
                st.thread_running = false;
                core.maint.progress.notify_all();
                return;
            }
            st.kicked = false;
        }
        add(&core.stats.maintenance_wakeups, 1);
        // A store failure here (the untrusted store erroring) is not
        // fatal to the thread: the round's work stays retryable (the
        // closing checkpoint is the only anchored truth), committers see
        // the same error on their own operations, and the backpressure
        // path surfaces persistent out-of-space as an error.
        let _ = one_round(&core);
        {
            let mut st = core.maint.state.lock();
            st.rounds += 1;
            core.maint.progress.notify_all();
        }
    }
}

/// One maintenance round: checkpoint if the residual log is long, then
/// clean up to the high watermark, one incremental pass at a time.
fn one_round(core: &StoreCore) -> Result<()> {
    let covered = {
        let mut inner = core.inner.lock();
        if inner.residual_bytes >= inner.cfg.checkpoint_threshold {
            inner.do_checkpoint()?;
            Some(inner.commit_seq)
        } else {
            None
        }
    };
    if let Some(covered) = covered {
        core.publish_durable(covered);
    }
    let mut forced_checkpoint = false;
    loop {
        if core.maint.shutdown_requested() {
            return Ok(());
        }
        {
            let inner = core.inner.lock();
            if inner.segs.free_count() >= inner.cfg.clean_high_free
                || inner.segs.utilization() > inner.cfg.max_utilization
            {
                return Ok(());
            }
        }
        match incremental_pass(core, &mut |_| !core.maint.shutdown_requested())? {
            PassResult::NoGarbage => {
                // The garbage may all sit in still-residual segments (no
                // checkpoint since it was made), which the cleaner skips.
                // Below the low watermark that is space pressure, not
                // cleanliness: shrink the residual set once and retry.
                let covered = {
                    let mut inner = core.inner.lock();
                    if forced_checkpoint
                        || inner.residual_segments.len() <= 1
                        || inner.segs.free_count() >= inner.cfg.clean_low_free
                    {
                        return Ok(());
                    }
                    forced_checkpoint = true;
                    inner.do_checkpoint()?;
                    inner.commit_seq
                };
                core.publish_durable(covered);
            }
            PassResult::Abandoned => return Ok(()),
            PassResult::Freed(0) => {
                // Victims existed but none could be freed (pinned, or
                // re-used by the pass's own checkpoint); retrying
                // immediately would spin. The next kick retries.
                add(&core.stats.maintenance_gave_up, 1);
                return Ok(());
            }
            PassResult::Freed(_) => {}
        }
    }
}

/// How an incremental pass ended.
pub(crate) enum PassResult {
    /// Nothing to clean (or another pass is already in flight).
    NoGarbage,
    /// The pass completed; this many segments were freed.
    Freed(usize),
    /// `keep_going` said stop (shutdown); the relocations already
    /// appended are dead log tail until a later pass redoes them.
    Abandoned,
}

/// Drive one cleaning pass slice by slice, releasing the store lock
/// between slices. `keep_going` is consulted before each slice with its
/// index; returning `false` abandons the pass (also the test hook for
/// mid-pass snapshots — it runs with the store unlocked).
pub(crate) fn incremental_pass(
    core: &StoreCore,
    keep_going: &mut dyn FnMut(usize) -> bool,
) -> Result<PassResult> {
    let mut sw = tdb_obs::Stopwatch::start();
    let slice_cap;
    let mut plan = {
        let mut inner = core.inner.lock();
        if inner.pass_active {
            // A concurrent pass (manual `clean()` racing the thread) is
            // already doing this work; don't double-free its victims.
            return Ok(PassResult::NoGarbage);
        }
        slice_cap = inner.cfg.maintenance_slice_chunks;
        match cleaner::select_victims(&mut inner)? {
            None => return Ok(PassResult::NoGarbage),
            Some(plan) => {
                inner.pass_active = true;
                plan
            }
        }
    };
    let result = drive_slices(core, &mut plan, slice_cap, keep_going);
    core.inner.lock().pass_active = false;
    if sw.running() {
        core.stats.phases.cleaner_pass.record(sw.lap());
    }
    result
}

fn drive_slices(
    core: &StoreCore,
    plan: &mut CleanPlan,
    slice_cap: usize,
    keep_going: &mut dyn FnMut(usize) -> bool,
) -> Result<PassResult> {
    let mut slice = 0usize;
    loop {
        if !keep_going(slice) {
            return Ok(PassResult::Abandoned);
        }
        let mut inner = core.inner.lock();
        let done = cleaner::relocate_slice(&mut inner, plan, slice_cap)?;
        if done {
            let freed = cleaner::finish_pass(&mut inner, plan)?;
            let covered = inner.commit_seq;
            drop(inner);
            // The closing checkpoint anchored everything appended so far;
            // wake followers it covered.
            core.publish_durable(covered);
            return Ok(PassResult::Freed(freed));
        }
        drop(inner);
        // Give committers the lock between slices.
        std::thread::yield_now();
        slice += 1;
    }
}
