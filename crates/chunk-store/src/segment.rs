//! Log segments over the untrusted store.
//!
//! The log is a chain of fixed-size segment files (`seg.000000`, ...). New
//! records are appended to the *tail* segment through a write buffer that is
//! flushed at every commit; when a record would overflow the tail, a
//! `NextSegment` record closes it and the log continues in a segment taken
//! from the free list (or newly allocated — the store "can increase or
//! decrease the space allocated for storage", §3.2.1).
//!
//! The manager also owns per-segment **live-byte accounting**, which is what
//! the cleaner's victim selection and the utilization computation (Figure
//! 11) are based on.

use crate::error::{ChunkStoreError, Result};
use crate::ids::SegmentId;
use crate::layout::{
    decode_record_header, decode_segment_header, encode_next_segment, encode_record_header,
    encode_segment_header, RecordKind, NEXT_SEGMENT_RECORD_LEN, RECORD_HEADER_LEN,
    SEGMENT_HEADER_LEN,
};
use crate::map::Location;
use crate::stats::{add, SharedStats};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use tdb_platform::{RandomAccessFile, UntrustedStore};

/// A record payload handed out by the read path: a shared view into a
/// reference-counted byte buffer. Reads served from the tail write buffer
/// (or the in-flight double-buffered flush) alias the live buffer instead
/// of copying it; file reads own their freshly read vector. Dereferences
/// to `&[u8]`.
#[derive(Clone)]
pub struct RecordBytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl RecordBytes {
    fn shared(buf: Arc<Vec<u8>>, start: usize, len: usize) -> Self {
        debug_assert!(start + len <= buf.len());
        RecordBytes { buf, start, len }
    }

    /// Wrap an owned vector (no extra copy).
    pub fn from_vec(v: Vec<u8>) -> Self {
        let len = v.len();
        RecordBytes {
            buf: Arc::new(v),
            start: 0,
            len,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.start + self.len]
    }

    /// Copy out to an owned vector (for callers that must own the bytes).
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Drop the first `n` bytes of the view.
    fn advance(mut self, n: usize) -> Self {
        debug_assert!(n <= self.len);
        self.start += n;
        self.len -= n;
        self
    }
}

impl std::ops::Deref for RecordBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for RecordBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Where an out-of-lock record read gets its bytes: a shared slice of the
/// tail write buffer (taken while the store lock was held), or a file
/// handle to read from after the lock is released.
pub enum ReadSource {
    /// Shared view of the record bytes still sitting in the unflushed (or
    /// in-flight) tail buffer — no copy taken.
    Buffered(RecordBytes),
    /// File holding the record.
    File(Arc<dyn RandomAccessFile>),
}

/// Second half of an out-of-lock record read: fetch the bytes and check
/// the record framing. A free function on purpose — it must not touch the
/// `SegmentManager` (the store lock may have been released since
/// [`SegmentManager::prepare_read`]).
pub fn complete_read(src: ReadSource, loc: &Location, expect: RecordKind) -> Result<RecordBytes> {
    let tampered =
        |what: String| ChunkStoreError::TamperDetected(format!("record at {loc:?}: {what}"));
    let buf = match src {
        ReadSource::Buffered(bytes) => bytes,
        ReadSource::File(file) => {
            let mut buf = vec![0u8; loc.len as usize];
            file.read_at(loc.off as u64, &mut buf)
                .map_err(|e| match e {
                    tdb_platform::PlatformError::ShortRead { .. } => {
                        tampered("extends past segment end".into())
                    }
                    other => ChunkStoreError::Platform(other),
                })?;
            RecordBytes::from_vec(buf)
        }
    };
    let (kind, len) = decode_record_header(&buf).map_err(|m| tampered(m.0))?;
    if kind != expect {
        return Err(tampered(format!("kind {kind:?}, expected {expect:?}")));
    }
    if len != loc.len - RECORD_HEADER_LEN {
        return Err(tampered("payload length mismatch".into()));
    }
    Ok(buf.advance(RECORD_HEADER_LEN as usize))
}

/// A flushed-but-unwritten tail range the group-commit leader writes and
/// syncs *outside* the store lock, so followers keep sealing and appending
/// into a fresh tail buffer while the previous one is on its way to disk
/// (seal(n+1) overlaps sync(n)). The manager keeps its own copy: any
/// in-lock [`SegmentManager::flush`] writes it first (a duplicate write of
/// identical bytes at the same offset is harmless — same rule as
/// `sync_inflight` double-syncs), so no anchor can cover unwritten bytes.
#[derive(Clone)]
pub struct TailFlush {
    /// Segment the range belongs to.
    pub seg: SegmentId,
    /// Offset of `bytes[0]` within the segment.
    pub start: u32,
    /// The buffered bytes (shared with concurrent tail readers).
    pub bytes: Arc<Vec<u8>>,
    /// Open handle to write through.
    pub file: Arc<dyn RandomAccessFile>,
}

/// Lifecycle state of a segment slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegStatus {
    /// Holds log records (possibly all obsolete).
    InUse,
    /// Truncated to zero, ready for reuse.
    Free,
    /// File deleted to shrink the database; the id may be reallocated.
    Dropped,
}

struct SegState {
    status: SegStatus,
    /// Bytes of live records (current chunk versions + checkpointed map
    /// pages) in this segment.
    live: u64,
}

/// Manages segment files, the append tail, and live-byte accounting.
pub struct SegmentManager {
    store: Arc<dyn UntrustedStore>,
    seg_size: u32,
    allow_growth: bool,
    states: Vec<SegState>,
    free: BTreeSet<u32>,
    tail: SegmentId,
    /// Next logical append offset in the tail segment.
    tail_off: u32,
    /// Buffered, not-yet-written bytes of the tail segment. Behind an
    /// `Arc` so buffered reads alias it instead of copying; mutation goes
    /// through [`Self::pending_mut`], which clones only if a reader still
    /// holds the buffer.
    pending: Arc<Vec<u8>>,
    /// Tail-segment offset of `pending[0]`.
    pending_start: u32,
    /// Previous tail buffer, handed to the group-commit leader for an
    /// out-of-lock write+sync (see [`TailFlush`]). Cleared when the leader
    /// confirms the write, or by the next in-lock flush.
    inflight: Option<TailFlush>,
    /// Open file handles (interior mutability so reads take `&self`).
    files: Mutex<HashMap<u32, Arc<dyn RandomAccessFile>>>,
    /// Segments written to since the last `sync_touched`.
    touched: BTreeSet<u32>,
    /// Segments the tail entered since the last drain (residual tracking).
    entered: Vec<SegmentId>,
    /// While a *checkpoint* drives the log it may roll into the last free
    /// segment. Nothing else on a fixed-size log may — not ordinary
    /// commits and not the cleaner's relocation appends: that segment is
    /// reserved for the checkpoint that turns relocations into freed
    /// segments. Relocations become reclaimable only through a checkpoint
    /// that itself needs log space, so letting anything else consume the
    /// final segment wedges the store in out-of-space with the log almost
    /// empty (the cleaner runs forever, frees nothing).
    maintenance_mode: bool,
    stats: SharedStats,
}

impl SegmentManager {
    /// Create a fresh log: `initial` segments, tail in segment 0.
    pub fn create(
        store: Arc<dyn UntrustedStore>,
        seg_size: u32,
        initial: u32,
        allow_growth: bool,
        stats: SharedStats,
    ) -> Result<Self> {
        let mut mgr = SegmentManager {
            store,
            seg_size,
            allow_growth,
            states: Vec::new(),
            free: BTreeSet::new(),
            tail: SegmentId(0),
            tail_off: SEGMENT_HEADER_LEN,
            pending: Arc::new(encode_segment_header(SegmentId(0)).to_vec()),
            pending_start: 0,
            inflight: None,
            files: Mutex::new(HashMap::new()),
            touched: BTreeSet::new(),
            entered: vec![SegmentId(0)],
            maintenance_mode: false,
            stats,
        };
        for i in 0..initial {
            mgr.states.push(SegState {
                status: SegStatus::Free,
                live: 0,
            });
            mgr.free.insert(i);
        }
        mgr.free.remove(&0);
        mgr.states[0].status = SegStatus::InUse;
        // Materialize the files so the database footprint is visible.
        for i in 0..initial {
            mgr.store.open(&SegmentId(i).file_name(), true)?;
        }
        mgr.touched.insert(0);
        Ok(mgr)
    }

    /// Attach to an existing log. Live accounting and the tail position are
    /// unknown until recovery calls [`set_tail`](Self::set_tail) and
    /// [`add_live`](Self::add_live).
    pub fn open_existing(
        store: Arc<dyn UntrustedStore>,
        seg_size: u32,
        allow_growth: bool,
        stats: SharedStats,
    ) -> Result<Self> {
        let mut max_id: Option<u32> = None;
        let mut present: HashMap<u32, u64> = HashMap::new();
        for name in store.list()? {
            if let Some(idx) = name
                .strip_prefix("seg.")
                .and_then(|s| s.parse::<u32>().ok())
            {
                let len = store.open(&name, false)?.len()?;
                present.insert(idx, len);
                max_id = Some(max_id.map_or(idx, |m| m.max(idx)));
            }
        }
        let count = max_id.map_or(0, |m| m + 1);
        let mut states = Vec::with_capacity(count as usize);
        let mut free = BTreeSet::new();
        for i in 0..count {
            match present.get(&i) {
                Some(0) => {
                    free.insert(i);
                    states.push(SegState {
                        status: SegStatus::Free,
                        live: 0,
                    });
                }
                Some(_) => states.push(SegState {
                    status: SegStatus::InUse,
                    live: 0,
                }),
                None => states.push(SegState {
                    status: SegStatus::Dropped,
                    live: 0,
                }),
            }
        }
        Ok(SegmentManager {
            store,
            seg_size,
            allow_growth,
            states,
            free,
            tail: SegmentId(0),
            tail_off: SEGMENT_HEADER_LEN,
            pending: Arc::new(Vec::new()),
            pending_start: 0,
            inflight: None,
            files: Mutex::new(HashMap::new()),
            touched: BTreeSet::new(),
            entered: Vec::new(),
            maintenance_mode: false,
            stats,
        })
    }

    /// Mutable access to the tail buffer; clones it only when a concurrent
    /// buffered reader still holds the `Arc`.
    fn pending_mut(&mut self) -> &mut Vec<u8> {
        Arc::make_mut(&mut self.pending)
    }

    /// Empty the tail buffer without copying its contents when a reader
    /// still aliases it (`make_mut` would clone the bytes being discarded).
    fn pending_clear(&mut self) {
        match Arc::get_mut(&mut self.pending) {
            Some(v) => v.clear(),
            None => self.pending = Arc::new(Vec::new()),
        }
    }

    /// Position recovery determined the tail to be at.
    pub fn set_tail(&mut self, seg: SegmentId, off: u32) {
        self.tail = seg;
        self.tail_off = off;
        self.pending_clear();
        self.pending_start = off;
        self.states[seg.0 as usize].status = SegStatus::InUse;
        self.free.remove(&seg.0);
    }

    /// Current tail position (the next record lands here).
    pub fn tail_pos(&self) -> (SegmentId, u32) {
        (self.tail, self.tail_off)
    }

    fn file(&self, seg: SegmentId) -> Result<Arc<dyn RandomAccessFile>> {
        let mut files = self.files.lock();
        if let Some(f) = files.get(&seg.0) {
            return Ok(f.clone());
        }
        let f: Arc<dyn RandomAccessFile> = Arc::from(self.store.open(&seg.file_name(), true)?);
        files.insert(seg.0, f.clone());
        Ok(f)
    }

    /// Append a record, returning its location fields (hash is the
    /// caller's concern). The payload must fit in a fresh segment.
    pub fn append_record(
        &mut self,
        kind: RecordKind,
        payload: &[u8],
    ) -> Result<(SegmentId, u32, u32)> {
        self.append_record_parts(kind, &[payload])
    }

    /// Append a record whose payload is the concatenation of `parts`,
    /// framed once up front — the parts are copied straight into the tail
    /// buffer with no intermediate concatenation vector (the zero-copy
    /// path for sealed chunks from the seal arena and for commit records'
    /// `payload || chain` pairs).
    pub fn append_record_parts(
        &mut self,
        kind: RecordKind,
        parts: &[&[u8]],
    ) -> Result<(SegmentId, u32, u32)> {
        let payload_len: usize = parts.iter().map(|p| p.len()).sum();
        let total = RECORD_HEADER_LEN + payload_len as u32;
        let capacity = self.seg_size - SEGMENT_HEADER_LEN - NEXT_SEGMENT_RECORD_LEN;
        assert!(
            total <= capacity,
            "record of {total} bytes exceeds segment capacity {capacity}; \
             the store must enforce max chunk size"
        );
        if self.tail_off + total + NEXT_SEGMENT_RECORD_LEN > self.seg_size {
            self.roll_segment()?;
        }
        let off = self.tail_off;
        let pending = self.pending_mut();
        pending.reserve(total as usize);
        pending.extend_from_slice(&encode_record_header(kind, payload_len as u32));
        for part in parts {
            pending.extend_from_slice(part);
        }
        self.tail_off += total;
        // Only chunk data and map pages are "live" (reclaimable state).
        // Commit records matter only while inside the residual log, which
        // is excluded from cleaning wholesale, so counting them live would
        // keep fully-dead segments from ever being reclaimed.
        if matches!(kind, RecordKind::ChunkData | RecordKind::MapPage) {
            self.states[self.tail.0 as usize].live += total as u64;
        }
        add(&self.stats.bytes_appended, total as u64);
        add(&self.stats.records_appended, 1);
        match kind {
            RecordKind::ChunkData => add(&self.stats.chunk_bytes_appended, total as u64),
            RecordKind::MapPage => add(&self.stats.map_bytes_appended, total as u64),
            RecordKind::Commit => add(&self.stats.commit_bytes_appended, total as u64),
            RecordKind::NextSegment => {}
        }
        Ok((self.tail, off, total))
    }

    /// Close the tail with a `NextSegment` record and continue in a free
    /// (or newly grown) segment. Failure-atomic: if the flush fails (e.g.
    /// the store is down mid-commit), the pointer record is removed from
    /// the write buffer and `next` returns to the free pool, so the tail
    /// stays open and a later append can retry the roll.
    fn roll_segment(&mut self) -> Result<()> {
        // On a fixed-size log the last free segment is reserved for
        // checkpoints (see `maintenance_mode`): an ordinary commit or a
        // cleaner relocation that needs it stops instead, keeping the
        // closing checkpoint — the step that actually frees segments —
        // able to make progress.
        if !self.allow_growth && !self.maintenance_mode && self.free.len() <= 1 {
            return Err(ChunkStoreError::OutOfSpace {
                needed: self.seg_size as u64,
            });
        }
        let next = match self.free.pop_first() {
            Some(i) => SegmentId(i),
            None => self.grow()?,
        };
        let nxt = encode_next_segment(next);
        let mark = self.pending.len();
        let pending = self.pending_mut();
        pending.extend_from_slice(&encode_record_header(
            RecordKind::NextSegment,
            nxt.len() as u32,
        ));
        pending.extend_from_slice(&nxt);
        if let Err(e) = self.flush() {
            self.pending_mut().truncate(mark);
            self.free.insert(next.0);
            return Err(e);
        }
        add(&self.stats.bytes_appended, NEXT_SEGMENT_RECORD_LEN as u64);

        self.states[next.0 as usize].status = SegStatus::InUse;
        self.tail = next;
        self.tail_off = SEGMENT_HEADER_LEN;
        self.pending = Arc::new(encode_segment_header(next).to_vec());
        self.pending_start = 0;
        self.entered.push(next);
        Ok(())
    }

    /// Allocate a brand-new segment slot (or resurrect a dropped one).
    fn grow(&mut self) -> Result<SegmentId> {
        if !self.allow_growth {
            return Err(ChunkStoreError::OutOfSpace {
                needed: self.seg_size as u64,
            });
        }
        add(&self.stats.segments_grown, 1);
        if let Some(i) = self
            .states
            .iter()
            .position(|s| s.status == SegStatus::Dropped)
        {
            self.states[i] = SegState {
                status: SegStatus::Free,
                live: 0,
            };
            self.store.open(&SegmentId(i as u32).file_name(), true)?;
            return Ok(SegmentId(i as u32));
        }
        let id = SegmentId(self.states.len() as u32);
        self.states.push(SegState {
            status: SegStatus::Free,
            live: 0,
        });
        self.store.open(&id.file_name(), true)?;
        Ok(id)
    }

    /// Write the in-flight double-buffered range, if any (in-lock paths
    /// cannot assume the leader's out-of-lock write has happened yet; the
    /// leader writing the same bytes again afterwards is harmless).
    fn write_inflight(&mut self) -> Result<()> {
        if let Some(tf) = &self.inflight {
            tf.file.write_at(tf.start as u64, &tf.bytes)?;
            self.inflight = None;
        }
        Ok(())
    }

    /// Write buffered tail bytes out (no sync).
    pub fn flush(&mut self) -> Result<()> {
        self.write_inflight()?;
        if self.pending.is_empty() {
            return Ok(());
        }
        let file = self.file(self.tail)?;
        file.write_at(self.pending_start as u64, &self.pending)?;
        self.pending_start += self.pending.len() as u32;
        self.pending_clear();
        self.touched.insert(self.tail.0);
        Ok(())
    }

    /// Sync every segment written since the last call. On error the
    /// not-yet-synced segments stay in the touched set, so a later anchor
    /// cannot cover data that never reached disk (re-syncing the ones
    /// that did succeed would be harmless; skipping one is not).
    pub fn sync_touched(&mut self) -> Result<()> {
        self.flush()?;
        let ids: Vec<u32> = self.touched.iter().copied().collect();
        for seg in ids {
            self.file(SegmentId(seg))?.sync()?;
            self.touched.remove(&seg);
            add(&self.stats.syncs, 1);
        }
        Ok(())
    }

    /// Flush the tail and hand the touched segments' file handles to the
    /// caller for an out-of-lock sync (the group-commit leader's overlap:
    /// appenders keep the manager while the leader syncs). The touched set
    /// transfers with the handles — on a failed sync the caller must give
    /// the ids back via [`SegmentManager::restore_touched`].
    pub fn take_touched(&mut self) -> Result<Vec<(u32, Arc<dyn RandomAccessFile>)>> {
        self.flush()?;
        let ids: Vec<u32> = std::mem::take(&mut self.touched).into_iter().collect();
        let mut out = Vec::with_capacity(ids.len());
        for seg in &ids {
            match self.file(SegmentId(*seg)) {
                Ok(f) => out.push((*seg, f)),
                Err(e) => {
                    self.touched.extend(ids);
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Like [`take_touched`](Self::take_touched), but instead of writing
    /// the tail buffer in-lock, the buffer is handed back as a
    /// [`TailFlush`] for the leader to write *and* sync outside the store
    /// lock — the double-buffered append: a fresh tail buffer starts
    /// filling immediately, so seal/append of commit n+1 overlaps the
    /// write+sync of commit n. Any previously outstanding in-flight range
    /// is written in-lock first (it may belong to a failed leader round).
    /// On a failed sync the caller gives the ids back via
    /// [`restore_touched`](Self::restore_touched); the manager retains the
    /// in-flight copy either way, so the bytes cannot be lost.
    #[allow(clippy::type_complexity)]
    pub fn take_touched_deferred(
        &mut self,
    ) -> Result<(Vec<(u32, Arc<dyn RandomAccessFile>)>, Option<TailFlush>)> {
        self.write_inflight()?;
        let tail_flush = if self.pending.is_empty() {
            None
        } else {
            let file = self.file(self.tail)?;
            let bytes = std::mem::replace(&mut self.pending, Arc::new(Vec::new()));
            let tf = TailFlush {
                seg: self.tail,
                start: self.pending_start,
                bytes,
                file,
            };
            self.pending_start += tf.bytes.len() as u32;
            self.touched.insert(self.tail.0);
            self.inflight = Some(tf.clone());
            Some(tf)
        };
        let ids: Vec<u32> = std::mem::take(&mut self.touched).into_iter().collect();
        let mut out = Vec::with_capacity(ids.len());
        for seg in &ids {
            match self.file(SegmentId(*seg)) {
                Ok(f) => out.push((*seg, f)),
                Err(e) => {
                    self.touched.extend(ids);
                    return Err(e);
                }
            }
        }
        Ok((out, tail_flush))
    }

    /// The leader confirms its out-of-lock write of `tf` reached the file:
    /// drop the manager's in-flight copy (unless an in-lock flush already
    /// wrote and dropped it, or a newer range replaced it).
    pub fn finish_tail_flush(&mut self, tf: &TailFlush) {
        if let Some(cur) = &self.inflight {
            if Arc::ptr_eq(&cur.bytes, &tf.bytes) {
                self.inflight = None;
            }
        }
    }

    /// Re-mark segments dirty after a failed out-of-lock sync.
    pub fn restore_touched(&mut self, ids: impl IntoIterator<Item = u32>) {
        self.touched.extend(ids);
    }

    /// Sync specific segments without touching the dirty bookkeeping (used
    /// to cover another thread's in-flight out-of-lock sync: syncing a
    /// segment twice is harmless, skipping one is not).
    pub fn sync_ids<'a>(&self, ids: impl IntoIterator<Item = &'a u32>) -> Result<()> {
        for seg in ids {
            self.file(SegmentId(*seg))?.sync()?;
            add(&self.stats.syncs, 1);
        }
        Ok(())
    }

    /// Read a record's stored payload. Verifies the header's kind and
    /// length against the expected location. The payload hash is checked by
    /// the caller (who knows the expected digest). Bytes still sitting in
    /// the tail write buffer are served from memory.
    pub fn read_record(&self, loc: &Location, expect: RecordKind) -> Result<RecordBytes> {
        let src = self.prepare_read(loc)?;
        let out = complete_read(src, loc, expect)?;
        add(&self.stats.bytes_read, loc.len as u64);
        Ok(out)
    }

    /// First half of an out-of-lock record read (call with the store lock
    /// held): resolve `loc` to a [`ReadSource`]. Bytes still in the tail
    /// write buffer are copied out now; everything else yields a clonable
    /// file handle so the I/O, hash check, and decryption can run after
    /// the lock is released ([`complete_read`]). The caller must keep the
    /// segment from being freed meanwhile (snapshot readers do: the
    /// snapshot pins its segments against the cleaner).
    pub fn prepare_read(&self, loc: &Location) -> Result<ReadSource> {
        let tampered =
            |what: String| ChunkStoreError::TamperDetected(format!("record at {loc:?}: {what}"));
        if loc.len < RECORD_HEADER_LEN {
            return Err(tampered("impossible length".into()));
        }
        if loc.seg == self.tail && loc.off >= self.pending_start && !self.pending.is_empty() {
            // Unflushed tail bytes: records are appended whole, so the
            // record lies entirely within `pending`. Hand out a shared
            // view — no copy per buffered read.
            let start = (loc.off - self.pending_start) as usize;
            let end = start + loc.len as usize;
            if end > self.pending.len() {
                return Err(tampered("extends past the write buffer".into()));
            }
            return Ok(ReadSource::Buffered(RecordBytes::shared(
                self.pending.clone(),
                start,
                loc.len as usize,
            )));
        }
        if let Some(tf) = &self.inflight {
            // The double-buffered range: flushed from the tail buffer but
            // possibly not yet written by the leader — the file may not
            // have the bytes, so serve them from memory.
            if loc.seg == tf.seg && loc.off >= tf.start {
                let start = (loc.off - tf.start) as usize;
                let end = start + loc.len as usize;
                if end <= tf.bytes.len() {
                    return Ok(ReadSource::Buffered(RecordBytes::shared(
                        tf.bytes.clone(),
                        start,
                        loc.len as usize,
                    )));
                }
            }
        }
        Ok(ReadSource::File(self.file(loc.seg)?))
    }

    /// Raw read used by recovery's sequential scan: `(kind, payload)` at an
    /// arbitrary position, `None` when the bytes cannot be a record (end of
    /// usable log).
    pub fn read_record_at(
        &self,
        seg: SegmentId,
        off: u32,
    ) -> Result<Option<(RecordKind, Vec<u8>)>> {
        if off + RECORD_HEADER_LEN > self.seg_size {
            return Ok(None);
        }
        let file = self.file(seg)?;
        let mut header = [0u8; RECORD_HEADER_LEN as usize];
        if file.read_at(off as u64, &mut header).is_err() {
            return Ok(None);
        }
        let Ok((kind, len)) = decode_record_header(&header) else {
            return Ok(None);
        };
        if off + RECORD_HEADER_LEN + len > self.seg_size {
            return Ok(None);
        }
        let mut payload = vec![0u8; len as usize];
        if file
            .read_at((off + RECORD_HEADER_LEN) as u64, &mut payload)
            .is_err()
        {
            return Ok(None);
        }
        Ok(Some((kind, payload)))
    }

    /// Whether `seg` is a known, non-dropped segment slot.
    pub fn is_valid_segment(&self, seg: SegmentId) -> bool {
        (seg.0 as usize) < self.states.len()
            && self.states[seg.0 as usize].status != SegStatus::Dropped
    }

    /// Validate a segment's on-disk header (recovery sanity check).
    pub fn check_segment_header(&self, seg: SegmentId) -> Result<bool> {
        let file = self.file(seg)?;
        let mut header = [0u8; SEGMENT_HEADER_LEN as usize];
        if file.read_at(0, &mut header).is_err() {
            return Ok(false);
        }
        Ok(matches!(decode_segment_header(&header), Ok(s) if s == seg))
    }

    // -- live accounting ------------------------------------------------

    /// Credit live bytes to a segment (recovery rebuild / new appends are
    /// credited automatically by `append_record`).
    pub fn add_live(&mut self, seg: SegmentId, bytes: u64) {
        self.states[seg.0 as usize].live += bytes;
    }

    /// Remove live bytes (a version became obsolete and reclaimable).
    pub fn sub_live(&mut self, seg: SegmentId, bytes: u64) {
        let live = &mut self.states[seg.0 as usize].live;
        debug_assert!(*live >= bytes, "live-byte underflow on {seg:?}");
        *live = live.saturating_sub(bytes);
    }

    /// Live bytes in a segment.
    pub fn live_of(&self, seg: SegmentId) -> u64 {
        self.states[seg.0 as usize].live
    }

    /// Sum of live bytes.
    pub fn total_live(&self) -> u64 {
        self.states.iter().map(|s| s.live).sum()
    }

    /// Segments currently holding data (tail included).
    pub fn in_use_segments(&self) -> Vec<SegmentId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.status == SegStatus::InUse)
            .map(|(i, _)| SegmentId(i as u32))
            .collect()
    }

    /// Number of free segments ready for reuse.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Enter/leave checkpoint mode (see the `maintenance_mode` field);
    /// returns the previous value so nested sections restore correctly.
    /// Only `Inner::do_checkpoint` should set this.
    pub fn set_maintenance(&mut self, on: bool) -> bool {
        std::mem::replace(&mut self.maintenance_mode, on)
    }

    /// Whether `seg` currently holds data (a cleaning pass re-checks this
    /// before freeing a victim: another pass may have freed it meanwhile).
    pub fn is_in_use(&self, seg: SegmentId) -> bool {
        self.states[seg.0 as usize].status == SegStatus::InUse
    }

    /// live bytes / in-use capacity — the paper's database utilization.
    pub fn utilization(&self) -> f64 {
        let in_use = self
            .states
            .iter()
            .filter(|s| s.status == SegStatus::InUse)
            .count();
        if in_use == 0 {
            return 0.0;
        }
        self.total_live() as f64 / (in_use as f64 * self.seg_size as f64)
    }

    /// Total bytes the database occupies on the untrusted store (segments
    /// only; the anchor adds a constant). This is Figure 11's "database
    /// size" metric.
    pub fn disk_size(&self) -> u64 {
        let in_use = self
            .states
            .iter()
            .filter(|s| s.status == SegStatus::InUse)
            .count();
        in_use as u64 * self.seg_size as u64
    }

    /// Mark a fully dead segment reusable and truncate its file.
    pub fn free_segment(&mut self, seg: SegmentId) -> Result<()> {
        assert_ne!(seg, self.tail, "cannot free the tail segment");
        let state = &mut self.states[seg.0 as usize];
        assert_eq!(state.live, 0, "freeing segment with live bytes");
        assert_eq!(state.status, SegStatus::InUse);
        state.status = SegStatus::Free;
        self.free.insert(seg.0);
        self.files.lock().remove(&seg.0);
        self.store.open(&seg.file_name(), true)?.set_len(0)?;
        Ok(())
    }

    /// Delete free segment files beyond `reserve`, shrinking the on-disk
    /// footprint. Returns how many were dropped.
    pub fn drop_excess_free(&mut self, reserve: usize) -> Result<usize> {
        // Shrinking is only sound when the log can grow back: `grow`
        // refuses to resurrect dropped slots on a fixed-size log, so
        // dropping here would permanently lose capacity — eventually
        // leaving the cleaner no free segment to relocate into and
        // wedging the store in out-of-space at low utilization.
        if !self.allow_growth {
            return Ok(0);
        }
        let mut dropped = 0;
        while self.free.len() > reserve {
            let idx = *self.free.iter().next_back().expect("non-empty");
            self.free.remove(&idx);
            self.states[idx as usize].status = SegStatus::Dropped;
            self.files.lock().remove(&idx);
            self.store.remove(&SegmentId(idx).file_name())?;
            dropped += 1;
            add(&self.stats.segments_dropped, 1);
        }
        Ok(dropped)
    }

    /// Drain segments the tail entered since the last call (the store adds
    /// them to the residual set).
    pub fn drain_entered(&mut self) -> Vec<SegmentId> {
        std::mem::take(&mut self.entered)
    }

    /// Segment size in bytes.
    pub fn segment_size(&self) -> u32 {
        self.seg_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;
    use tdb_platform::MemStore;

    fn mgr(seg_size: u32, initial: u32) -> (SegmentManager, MemStore) {
        let mem = MemStore::new();
        let stats = Arc::new(Stats::default());
        let m =
            SegmentManager::create(Arc::new(mem.clone()), seg_size, initial, true, stats).unwrap();
        (m, mem)
    }

    fn mk_loc(pos: (SegmentId, u32, u32)) -> Location {
        Location {
            seg: pos.0,
            off: pos.1,
            len: pos.2,
            hash: [0; 32],
        }
    }

    #[test]
    fn append_and_read_back() {
        let (mut m, _) = mgr(4096, 2);
        let pos = m
            .append_record(RecordKind::ChunkData, b"hello chunk")
            .unwrap();
        m.flush().unwrap();
        let payload = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&payload[..], b"hello chunk");
        // Wrong expected kind is tamper.
        assert!(matches!(
            m.read_record(&mk_loc(pos), RecordKind::Commit),
            Err(ChunkStoreError::TamperDetected(_))
        ));
    }

    #[test]
    fn read_from_unflushed_tail_flushes_first() {
        let (mut m, _) = mgr(4096, 2);
        let pos = m.append_record(RecordKind::ChunkData, b"buffered").unwrap();
        // No explicit flush.
        let payload = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&payload[..], b"buffered");
    }

    #[test]
    fn buffered_reads_share_the_tail_buffer() {
        // Regression (hot tail re-reads used to `to_vec` the pending
        // range): two buffered reads of the same record must alias the
        // same underlying buffer, not copy it.
        let (mut m, _) = mgr(4096, 2);
        let pos = m.append_record(RecordKind::ChunkData, b"aliased").unwrap();
        let a = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        let b = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&a[..], b"aliased");
        assert_eq!(
            a.as_slice().as_ptr(),
            b.as_slice().as_ptr(),
            "buffered reads must return shared slices, not copies"
        );
        // The view survives (and stays correct) after the manager flushes
        // and the buffer is cleared/replaced.
        m.flush().unwrap();
        assert_eq!(&a[..], b"aliased");
        // Post-flush reads come from the file: still the same bytes.
        let c = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&c[..], b"aliased");
    }

    #[test]
    fn deferred_flush_serves_reads_and_survives_inlock_flush() {
        let (mut m, _) = mgr(4096, 2);
        let pos = m.append_record(RecordKind::ChunkData, b"deferred").unwrap();
        let (files, tf) = m.take_touched_deferred().unwrap();
        let tf = tf.expect("tail buffer was non-empty");
        assert!(files.iter().any(|(id, _)| *id == m.tail_pos().0 .0));
        // The bytes are NOT on disk yet, but a read must still see them
        // (served from the in-flight buffer).
        let payload = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&payload[..], b"deferred");
        // New appends land in a fresh buffer while the old one is in
        // flight (the double-buffer overlap).
        let pos2 = m.append_record(RecordKind::ChunkData, b"next").unwrap();
        assert!(pos2.1 > pos.1);
        // An in-lock flush writes the in-flight range first; the leader's
        // later duplicate write is harmless.
        m.flush().unwrap();
        let payload = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&payload[..], b"deferred");
        let payload2 = m.read_record(&mk_loc(pos2), RecordKind::ChunkData).unwrap();
        assert_eq!(&payload2[..], b"next");
        // The leader's confirmation after the in-lock flush is a no-op.
        tf.file.write_at(tf.start as u64, &tf.bytes).unwrap();
        m.finish_tail_flush(&tf);
    }

    #[test]
    fn deferred_flush_leader_write_then_finish() {
        let (mut m, _) = mgr(4096, 2);
        let pos = m
            .append_record(RecordKind::ChunkData, b"leader path")
            .unwrap();
        let (_files, tf) = m.take_touched_deferred().unwrap();
        let tf = tf.unwrap();
        // Leader writes + syncs outside the lock, then confirms.
        tf.file.write_at(tf.start as u64, &tf.bytes).unwrap();
        tf.file.sync().unwrap();
        m.finish_tail_flush(&tf);
        let payload = m.read_record(&mk_loc(pos), RecordKind::ChunkData).unwrap();
        assert_eq!(&payload[..], b"leader path");
        // A second deferred take with an empty tail hands back nothing.
        let (_files, tf2) = m.take_touched_deferred().unwrap();
        assert!(tf2.is_none());
    }

    #[test]
    fn append_record_parts_concatenates() {
        let (mut m, _) = mgr(4096, 2);
        let pos = m
            .append_record_parts(RecordKind::Commit, &[b"abc", b"", b"defg"])
            .unwrap();
        let whole = m.append_record(RecordKind::Commit, b"abcdefg").unwrap();
        assert_eq!(pos.2, whole.2, "identical framing for identical payload");
        let payload = m.read_record(&mk_loc(pos), RecordKind::Commit).unwrap();
        assert_eq!(&payload[..], b"abcdefg");
    }

    #[test]
    fn rolls_to_next_segment_when_full() {
        let (mut m, mem) = mgr(4096, 3);
        let mut segs_seen = BTreeSet::new();
        for _ in 0..40 {
            let (seg, _, _) = m.append_record(RecordKind::ChunkData, &[7u8; 200]).unwrap();
            segs_seen.insert(seg.0);
        }
        assert!(segs_seen.len() >= 2, "should have rolled");
        m.flush().unwrap();
        // The closed segment ends with a NextSegment record readable by scan.
        let raw = mem.raw("seg.000000").unwrap();
        assert!(raw.len() <= 4096);
        let entered = m.drain_entered();
        assert!(entered.contains(&SegmentId(0)));
        assert!(entered.len() >= 2);
    }

    #[test]
    fn grows_when_free_list_empty() {
        let (mut m, _) = mgr(4096, 2);
        for _ in 0..100 {
            m.append_record(RecordKind::ChunkData, &[1u8; 300]).unwrap();
        }
        assert!(m.states.len() > 2);
        assert!(m.stats.snapshot().segments_grown > 0);
    }

    #[test]
    fn growth_disabled_returns_out_of_space() {
        let mem = MemStore::new();
        let stats = Arc::new(Stats::default());
        let mut m = SegmentManager::create(Arc::new(mem), 4096, 2, false, stats).unwrap();
        let mut saw_oos = false;
        for _ in 0..100 {
            match m.append_record(RecordKind::ChunkData, &[1u8; 300]) {
                Ok(_) => {}
                Err(ChunkStoreError::OutOfSpace { .. }) => {
                    saw_oos = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_oos);
    }

    #[test]
    fn live_accounting_and_free() {
        let (mut m, mem) = mgr(4096, 3);
        let pos = m.append_record(RecordKind::ChunkData, &[1u8; 100]).unwrap();
        assert_eq!(m.live_of(pos.0), pos.2 as u64);
        m.sub_live(pos.0, pos.2 as u64);
        assert_eq!(m.live_of(pos.0), 0);
        // Roll off segment 0 so it is not the tail, then free it.
        while m.tail_pos().0 == SegmentId(0) {
            m.append_record(RecordKind::ChunkData, &[1u8; 300]).unwrap();
        }
        m.sub_live(SegmentId(0), m.live_of(SegmentId(0)));
        m.free_segment(SegmentId(0)).unwrap();
        assert_eq!(mem.raw("seg.000000").unwrap().len(), 0);
        assert!(m.free_count() >= 1);
    }

    #[test]
    fn drop_excess_free_shrinks_disk() {
        let (mut m, mem) = mgr(4096, 6);
        assert_eq!(m.free_count(), 5);
        let dropped = m.drop_excess_free(2).unwrap();
        assert_eq!(dropped, 3);
        assert_eq!(m.free_count(), 2);
        let files = mem.list().unwrap();
        assert_eq!(files.iter().filter(|n| n.starts_with("seg.")).count(), 3);
        // Growth resurrects dropped slots before inventing new ids.
        for _ in 0..200 {
            m.append_record(RecordKind::ChunkData, &[1u8; 300]).unwrap();
        }
        assert!(m.states.len() == 6 || m.states.len() > 6);
    }

    #[test]
    fn utilization_math() {
        let (mut m, _) = mgr(4096, 2);
        assert_eq!(m.utilization(), 0.0);
        m.append_record(RecordKind::ChunkData, &[0u8; 1000])
            .unwrap();
        let u = m.utilization();
        assert!(u > 0.2 && u < 0.3, "one in-use 4k segment, ~1k live: {u}");
        assert_eq!(m.disk_size(), 4096);
    }

    #[test]
    fn reopen_classifies_segments() {
        let (mut m, mem) = mgr(4096, 3);
        m.append_record(RecordKind::ChunkData, &[1u8; 100]).unwrap();
        m.flush().unwrap();
        // seg0 in use (has bytes), seg1/2 free (zero length).
        let stats = Arc::new(Stats::default());
        let m2 = SegmentManager::open_existing(Arc::new(mem), 4096, true, stats).unwrap();
        assert_eq!(m2.free_count(), 2);
        assert_eq!(m2.in_use_segments(), vec![SegmentId(0)]);
    }

    #[test]
    fn scan_read_stops_at_garbage() {
        let (mut m, _) = mgr(4096, 2);
        let pos = m.append_record(RecordKind::Commit, b"payload").unwrap();
        m.flush().unwrap();
        let got = m.read_record_at(pos.0, pos.1).unwrap().unwrap();
        assert_eq!(got.0, RecordKind::Commit);
        assert_eq!(got.1, b"payload");
        // Past the end: zero kind byte -> None.
        assert!(m.read_record_at(pos.0, pos.1 + pos.2).unwrap().is_none());
        // Out of bounds offset -> None.
        assert!(m.read_record_at(pos.0, 4095).unwrap().is_none());
    }

    #[test]
    fn segment_header_check() {
        let (mut m, mem) = mgr(4096, 2);
        m.append_record(RecordKind::ChunkData, b"x").unwrap();
        m.flush().unwrap();
        assert!(m.check_segment_header(SegmentId(0)).unwrap());
        mem.corrupt("seg.000000", 0, 1).unwrap();
        assert!(!m.check_segment_header(SegmentId(0)).unwrap());
    }

    #[test]
    fn sync_touched_counts() {
        let (mut m, _) = mgr(4096, 2);
        m.append_record(RecordKind::ChunkData, b"x").unwrap();
        m.sync_touched().unwrap();
        assert_eq!(m.stats.snapshot().syncs, 1);
        // Nothing touched -> no extra syncs.
        m.sync_touched().unwrap();
        assert_eq!(m.stats.snapshot().syncs, 1);
    }
}
