//! The extracted trust layer of TDB (paper §3.2.1).
//!
//! Everything that lets one party convince another that a read came from
//! the authentic database lives here, with **no** dependency on the chunk
//! store: the chunk store is a *consumer* of this crate, and so is any
//! client that wants to check a proof offline.
//!
//! * [`slot`] — the authenticated double-buffered slot format shared by
//!   the single-store anchor (`anchor.a`/`anchor.b`) and the sharded
//!   root-of-roots (`rr.a`/`rr.b`): magic, plaintext sequence, mode tag,
//!   sealed body, MAC. One implementation instead of the two copies that
//!   used to live in `anchor.rs` and `sharded.rs`.
//! * [`tree`] — canonical hashing for the proof tree that mirrors the
//!   radix location map, inclusion/non-membership paths, and the HMAC
//!   attestations binding a tree root to a one-way counter value.
//! * [`keyed`] — a keyed hash tree over the *sorted keys of an index*
//!   (Bauer's non-membership construction): "no such entry" is proven by
//!   exhibiting the two adjacent keys that bracket the miss.
//! * [`verify`] — the pure [`Verifier`]: checks any proof against nothing
//!   but a [`TrustAnchor`] — a trusted `(counter_value, root_mac_key)`
//!   pair (plus per-shard keys when the database is sharded).
//! * [`wire`] — a stable serialization of proofs and anchors so they can
//!   be dumped to disk and checked offline (`tdb-doctor verify-proof`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod keyed;
pub mod slot;
pub mod tree;
pub mod verify;
pub mod wire;

pub use keyed::{
    key_successor, KeyedAttestation, KeyedCase, KeyedEntry, KeyedPath, KeyedProof, KeyedTree,
};
pub use slot::{decode_slot, encode_slot, SlotError, SlotPair, SlotSealer};
pub use tree::{Attestation, ChunkOutcome, ChunkProof, EpochRecord, PathNode, ShardBinding};
pub use verify::{ProofError, TrustAnchor, TrustKeys, Verifier};

pub use tdb_crypto::Digest;

/// Route a global chunk id onto `shards` partitions: shard `g % N`, local
/// id `g / N + 1` (local id 0 is reserved for shard-internal metadata).
/// This is *the* routing function — the sharded store and the verifier
/// must agree on it, so it lives in the trust layer.
pub fn route(shards: usize, global: u64) -> (usize, u64) {
    (
        (global % shards as u64) as usize,
        global / shards as u64 + 1,
    )
}

/// Inverse of [`route`].
pub fn unroute(shards: usize, shard: usize, local: u64) -> u64 {
    (local - 1) * shards as u64 + shard as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_roundtrips() {
        for n in [1usize, 2, 3, 5, 64] {
            for g in 0..300u64 {
                let (s, l) = route(n, g);
                assert!(s < n && l >= 1);
                assert_eq!(unroute(n, s, l), g);
            }
        }
    }
}
