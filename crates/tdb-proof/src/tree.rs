//! Canonical proof-tree hashing and chunk proofs.
//!
//! The chunk store's location map *is* the paper's Merkle tree: a radix
//! tree of fanout-`F` nodes whose leaves hold the SHA-256 digest of each
//! chunk's sealed record bytes. This module defines a **canonical,
//! store-independent hashing** of that tree — over `(slot, digest)` pairs
//! only, with no locations, disk layout, or encryption involved — so a
//! verifier can recompute it from a proof path alone:
//!
//! * leaf node: `H("tdb.proof.leaf" || n || (slot_le || digest)*)`
//! * inner node: `H("tdb.proof.inner" || n || (slot_le || child_digest)*)`
//!
//! entries sorted by slot, absent slots skipped. A chunk id's path from
//! root to leaf is fixed by the radix decomposition ([`slot_at`]), so
//! binding each node's slot indices binds the id.
//!
//! The root is bound to the trusted one-way counter by an HMAC
//! [`Attestation`] minted by the engine (the key holder) at proof
//! construction time; sharded stores additionally splice the shard-local
//! root into the root-of-roots [`EpochRecord`]. An [`ChunkOutcome::Included`]
//! proof finally binds the *plaintext* the reader saw to the sealed leaf
//! digest via a content tag (the storage holds only ciphertext, so the
//! verifier cannot recompute the sealed hash from the value itself).

use tdb_crypto::{Digest, HmacSha256, Sha256};

/// Child-slot index of `id` at `level` (level 0 = leaf) in a fanout-`F`
/// radix tree. Mirrors the location map's decomposition exactly.
pub fn slot_at(fanout: u32, id: u64, level: u32) -> u32 {
    let f = fanout as u64;
    ((id / f.pow(level)) % f) as u32
}

/// Number of chunk ids addressable by a tree of `depth` levels (ids at or
/// beyond this are absent by construction).
pub fn capacity(fanout: u32, depth: u32) -> u128 {
    (fanout as u128).saturating_pow(depth)
}

/// One node on a proof path: every present `(slot, digest)` entry, sorted
/// by slot. For the deepest node of an inclusion proof the digest at the
/// chunk's slot is its sealed-record hash; everywhere else the digest at
/// the path slot must equal the canonical hash of the node below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathNode {
    /// Whether this node is a leaf (hashed under the leaf domain).
    pub is_leaf: bool,
    /// Present entries, strictly ascending by slot.
    pub entries: Vec<(u32, Digest)>,
}

impl PathNode {
    /// Canonical hash of this node.
    pub fn hash(&self) -> Digest {
        hash_node(self.is_leaf, self.entries.iter().map(|(s, d)| (*s, d)))
    }

    /// Digest stored at `slot`, if present.
    pub fn digest_at(&self, slot: u32) -> Option<&Digest> {
        self.entries
            .binary_search_by_key(&slot, |(s, _)| *s)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Whether entries are strictly ascending by slot (canonical form).
    pub fn is_canonical(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].0 < w[1].0)
    }
}

/// Canonical hash over `(slot, digest)` entries (must be sorted).
pub fn hash_node<'a>(is_leaf: bool, entries: impl Iterator<Item = (u32, &'a Digest)>) -> Digest {
    let mut h = Sha256::new();
    h.update(&node_preimage(is_leaf, entries));
    h.finalize()
}

/// The exact byte string [`hash_node`] hashes: domain tag, entry count,
/// then the sorted `(slot_le || digest)` pairs. Materializing preimages
/// lets a batched tree pass feed whole node levels through the multi-lane
/// SHA-256 path ([`tdb_crypto::sha256_batch`]) and still produce roots
/// bit-identical to the incremental per-node hashing.
pub fn node_preimage<'a>(
    is_leaf: bool,
    entries: impl Iterator<Item = (u32, &'a Digest)>,
) -> Vec<u8> {
    let domain: &[u8] = if is_leaf {
        b"tdb.proof.leaf"
    } else {
        b"tdb.proof.inner"
    };
    let mut n: u32 = 0;
    let mut body = Vec::new();
    for (slot, d) in entries {
        body.extend_from_slice(&slot.to_le_bytes());
        body.extend_from_slice(d);
        n += 1;
    }
    let mut out = Vec::with_capacity(domain.len() + 4 + body.len());
    out.extend_from_slice(domain);
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// What the proof claims about the chunk id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// The chunk exists; the proof path carries its sealed-record hash and
    /// the content tag binds the plaintext the reader saw to it.
    Included {
        /// SHA-256 of the stored (sealed) record bytes — the leaf digest.
        sealed_hash: Digest,
        /// SHA-256 of the plaintext chunk value.
        plain_hash: Digest,
        /// `HMAC(key, "tdb.proof.content" || id || sealed_hash || plain_hash)`.
        content_tag: Digest,
    },
    /// The chunk does not exist as of the proven snapshot.
    Absent,
}

/// Engine attestation binding a proof root to the trusted counter:
/// `HMAC(key, "tdb.proof.att" || counter || commit_seq || depth || fanout || root)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attestation {
    /// One-way counter value observed when the snapshot was pinned (the
    /// shard's *virtual* counter on a sharded store).
    pub counter_value: u64,
    /// Commit sequence of the pinned snapshot.
    pub commit_seq: u64,
    /// Depth of the attested tree.
    pub depth: u32,
    /// Fanout of the attested tree.
    pub fanout: u32,
    /// The HMAC tag.
    pub tag: Digest,
}

/// The root-of-roots record a sharded proof splices its shard-local path
/// into: the per-shard virtual counter vector bound to the hardware
/// counter under the root-of-roots key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Hardware one-way counter value the record was minted under.
    pub hw_counter: u64,
    /// Open generation of the sharded store.
    pub epoch: u32,
    /// Virtual counter value per shard.
    pub counters: Vec<u64>,
    /// `HMAC(rr_key, "tdb.proof.epoch" || hw || epoch || counters)`.
    pub tag: Digest,
}

/// Shard context of a proof from a sharded store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardBinding {
    /// Shard the chunk routes to.
    pub shard: u32,
    /// Total shard count (fixes the routing function).
    pub shards: u32,
    /// The root-of-roots epoch record minted at proof time.
    pub epoch: EpochRecord,
}

/// A self-contained inclusion or non-membership proof for one chunk id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkProof {
    /// The (global) chunk id the proof speaks about.
    pub chunk_id: u64,
    /// Inclusion with value binding, or absence.
    pub outcome: ChunkOutcome,
    /// Root-first path; `path[0]` is the tree root. An absence proof may
    /// stop early at the node where the id's slot is empty; an
    /// out-of-capacity id carries the bare root.
    pub path: Vec<PathNode>,
    /// Root-to-counter binding.
    pub attestation: Attestation,
    /// Present iff the proof comes from a sharded (N > 1) store.
    pub shard: Option<ShardBinding>,
}

impl ChunkProof {
    /// Serialized size in bytes (what a client would transfer).
    pub fn encoded_len(&self) -> usize {
        crate::wire::encode_chunk_proof(self).len()
    }
}

/// Mint the attestation tag over a proof root.
pub fn attestation_tag(
    mac_key: &[u8; 32],
    counter_value: u64,
    commit_seq: u64,
    depth: u32,
    fanout: u32,
    root: &Digest,
) -> Digest {
    let mut m = HmacSha256::new(mac_key);
    m.update(b"tdb.proof.att");
    m.update(&counter_value.to_le_bytes());
    m.update(&commit_seq.to_le_bytes());
    m.update(&depth.to_le_bytes());
    m.update(&fanout.to_le_bytes());
    m.update(root);
    m.finalize()
}

/// Mint the content tag binding a plaintext to its sealed leaf digest.
pub fn content_tag(
    mac_key: &[u8; 32],
    chunk_id: u64,
    sealed_hash: &Digest,
    plain_hash: &Digest,
) -> Digest {
    let mut m = HmacSha256::new(mac_key);
    m.update(b"tdb.proof.content");
    m.update(&chunk_id.to_le_bytes());
    m.update(sealed_hash);
    m.update(plain_hash);
    m.finalize()
}

/// Mint the epoch-record tag binding virtual counters to the hardware one.
pub fn epoch_tag(rr_key: &[u8; 32], hw_counter: u64, epoch: u32, counters: &[u64]) -> Digest {
    let mut m = HmacSha256::new(rr_key);
    m.update(b"tdb.proof.epoch");
    m.update(&hw_counter.to_le_bytes());
    m.update(&epoch.to_le_bytes());
    m.update(&(counters.len() as u32).to_le_bytes());
    for c in counters {
        m.update(&c.to_le_bytes());
    }
    m.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_decomposition_matches_radix() {
        // id 123 in fanout 10: digits 3, 2, 1.
        assert_eq!(slot_at(10, 123, 0), 3);
        assert_eq!(slot_at(10, 123, 1), 2);
        assert_eq!(slot_at(10, 123, 2), 1);
        assert_eq!(slot_at(10, 123, 3), 0);
        assert_eq!(capacity(10, 3), 1000);
        assert_eq!(capacity(64, 0), 1);
    }

    #[test]
    fn node_hash_binds_structure() {
        let d1 = [1u8; 32];
        let d2 = [2u8; 32];
        let leaf = PathNode {
            is_leaf: true,
            entries: vec![(0, d1), (5, d2)],
        };
        let inner = PathNode {
            is_leaf: false,
            entries: vec![(0, d1), (5, d2)],
        };
        assert_ne!(leaf.hash(), inner.hash(), "domain separation");
        let moved = PathNode {
            is_leaf: true,
            entries: vec![(0, d1), (6, d2)],
        };
        assert_ne!(leaf.hash(), moved.hash(), "slots bound");
        let dropped = PathNode {
            is_leaf: true,
            entries: vec![(0, d1)],
        };
        assert_ne!(leaf.hash(), dropped.hash(), "presence bound");
        assert_eq!(leaf.digest_at(5), Some(&d2));
        assert_eq!(leaf.digest_at(3), None);
        assert!(leaf.is_canonical());
        assert!(!PathNode {
            is_leaf: true,
            entries: vec![(5, d1), (0, d2)],
        }
        .is_canonical());
    }

    #[test]
    fn preimage_hash_equals_hash_node() {
        let d1 = [1u8; 32];
        let d2 = [2u8; 32];
        for is_leaf in [true, false] {
            let entries = [(0u32, d1), (5, d2)];
            let via_preimage = tdb_crypto::sha256(&node_preimage(
                is_leaf,
                entries.iter().map(|(s, d)| (*s, d)),
            ));
            let direct = hash_node(is_leaf, entries.iter().map(|(s, d)| (*s, d)));
            assert_eq!(via_preimage, direct);
        }
        // Batched hashing of preimages matches too — the contract the
        // batched Merkle rehash relies on.
        let p1 = node_preimage(true, [(3u32, d1)].iter().map(|(s, d)| (*s, d)));
        let p2 = node_preimage(false, [(7u32, d2)].iter().map(|(s, d)| (*s, d)));
        let batch = tdb_crypto::sha256_batch(&[&p1, &p2]);
        assert_eq!(
            batch[0],
            hash_node(true, [(3u32, d1)].iter().map(|(s, d)| (*s, d)))
        );
        assert_eq!(
            batch[1],
            hash_node(false, [(7u32, d2)].iter().map(|(s, d)| (*s, d)))
        );
    }

    #[test]
    fn tags_are_input_sensitive() {
        let key = [9u8; 32];
        let root = [3u8; 32];
        let t = attestation_tag(&key, 7, 11, 2, 64, &root);
        assert_ne!(t, attestation_tag(&key, 8, 11, 2, 64, &root));
        assert_ne!(t, attestation_tag(&key, 7, 12, 2, 64, &root));
        assert_ne!(t, attestation_tag(&key, 7, 11, 3, 64, &root));
        assert_ne!(t, attestation_tag(&[8u8; 32], 7, 11, 2, 64, &root));
        let c = content_tag(&key, 1, &root, &root);
        assert_ne!(c, content_tag(&key, 2, &root, &root));
        let e = epoch_tag(&key, 5, 1, &[1, 2]);
        assert_ne!(e, epoch_tag(&key, 5, 1, &[2, 1]));
        assert_ne!(e, epoch_tag(&key, 5, 2, &[1, 2]));
    }
}
