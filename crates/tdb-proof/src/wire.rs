//! Stable serialization of proofs and trust anchors.
//!
//! Proofs are useful beyond the process that minted them: a client stores
//! one next to a downloaded value, a support engineer attaches one to a
//! ticket, `tdb-doctor verify-proof` checks one offline. This module
//! defines a small, versioned, little-endian binary encoding for
//! [`ChunkProof`], [`KeyedProof`], and [`TrustAnchor`], plus a minimal
//! JSON *dump* format (hex blobs under fixed keys) so dumps remain
//! greppable and diffable without a JSON dependency.
//!
//! Decoding is strict: unknown tags, truncated input, implausible lengths,
//! and trailing bytes are all [`WireError`]s — a dump that decodes is
//! structurally well-formed, and whether it *verifies* is then solely the
//! [`crate::Verifier`]'s judgement.

use crate::keyed::{KeyedAttestation, KeyedCase, KeyedEntry, KeyedPath, KeyedProof};
use crate::tree::{Attestation, ChunkOutcome, ChunkProof, EpochRecord, PathNode, ShardBinding};
use crate::verify::{TrustAnchor, TrustKeys};
use tdb_crypto::{Digest, DIGEST_LEN};

/// Leading type/version byte of each encoded object.
const TAG_CHUNK_PROOF_V1: u8 = 0x01;
const TAG_ANCHOR_V1: u8 = 0x02;
const TAG_KEYED_PROOF_V1: u8 = 0x03;

/// Hard sanity caps so a corrupt length prefix cannot ask for gigabytes.
const MAX_VEC: usize = 1 << 20;

/// A malformed encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed proof encoding: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(m: impl Into<String>) -> WireError {
    WireError(m.into())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or_else(|| err("overflow"))?;
        if end > self.buf.len() {
            return Err(err("truncated"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn digest(&mut self) -> Result<Digest, WireError> {
        Ok(self.take(DIGEST_LEN)?.try_into().unwrap())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_VEC {
            return Err(err("implausible byte-string length"));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn count(&mut self, what: &str) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_VEC {
            return Err(err(format!("implausible {what} count")));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(err("trailing bytes"));
        }
        Ok(())
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

// ---- chunk proofs ----------------------------------------------------

fn put_attestation(out: &mut Vec<u8>, a: &Attestation) {
    out.extend_from_slice(&a.counter_value.to_le_bytes());
    out.extend_from_slice(&a.commit_seq.to_le_bytes());
    out.extend_from_slice(&a.depth.to_le_bytes());
    out.extend_from_slice(&a.fanout.to_le_bytes());
    out.extend_from_slice(&a.tag);
}

fn get_attestation(r: &mut Reader) -> Result<Attestation, WireError> {
    Ok(Attestation {
        counter_value: r.u64()?,
        commit_seq: r.u64()?,
        depth: r.u32()?,
        fanout: r.u32()?,
        tag: r.digest()?,
    })
}

/// Encode a chunk proof.
pub fn encode_chunk_proof(p: &ChunkProof) -> Vec<u8> {
    let mut out = vec![TAG_CHUNK_PROOF_V1];
    out.extend_from_slice(&p.chunk_id.to_le_bytes());
    match &p.outcome {
        ChunkOutcome::Absent => out.push(0),
        ChunkOutcome::Included {
            sealed_hash,
            plain_hash,
            content_tag,
        } => {
            out.push(1);
            out.extend_from_slice(sealed_hash);
            out.extend_from_slice(plain_hash);
            out.extend_from_slice(content_tag);
        }
    }
    out.extend_from_slice(&(p.path.len() as u32).to_le_bytes());
    for node in &p.path {
        out.push(node.is_leaf as u8);
        out.extend_from_slice(&(node.entries.len() as u32).to_le_bytes());
        for (slot, d) in &node.entries {
            out.extend_from_slice(&slot.to_le_bytes());
            out.extend_from_slice(d);
        }
    }
    put_attestation(&mut out, &p.attestation);
    match &p.shard {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            out.extend_from_slice(&b.shard.to_le_bytes());
            out.extend_from_slice(&b.shards.to_le_bytes());
            out.extend_from_slice(&b.epoch.hw_counter.to_le_bytes());
            out.extend_from_slice(&b.epoch.epoch.to_le_bytes());
            out.extend_from_slice(&(b.epoch.counters.len() as u32).to_le_bytes());
            for c in &b.epoch.counters {
                out.extend_from_slice(&c.to_le_bytes());
            }
            out.extend_from_slice(&b.epoch.tag);
        }
    }
    out
}

/// Decode a chunk proof (strict: rejects trailing bytes).
pub fn decode_chunk_proof(bytes: &[u8]) -> Result<ChunkProof, WireError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != TAG_CHUNK_PROOF_V1 {
        return Err(err("not a v1 chunk proof"));
    }
    let chunk_id = r.u64()?;
    let outcome = match r.u8()? {
        0 => ChunkOutcome::Absent,
        1 => ChunkOutcome::Included {
            sealed_hash: r.digest()?,
            plain_hash: r.digest()?,
            content_tag: r.digest()?,
        },
        t => return Err(err(format!("unknown outcome tag {t}"))),
    };
    let n_nodes = r.count("path node")?;
    let mut path = Vec::with_capacity(n_nodes.min(64));
    for _ in 0..n_nodes {
        let is_leaf = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(err(format!("unknown node kind {t}"))),
        };
        let n_entries = r.count("node entry")?;
        let mut entries = Vec::with_capacity(n_entries.min(1024));
        for _ in 0..n_entries {
            entries.push((r.u32()?, r.digest()?));
        }
        path.push(PathNode { is_leaf, entries });
    }
    let attestation = get_attestation(&mut r)?;
    let shard = match r.u8()? {
        0 => None,
        1 => {
            let shard = r.u32()?;
            let shards = r.u32()?;
            let hw_counter = r.u64()?;
            let epoch = r.u32()?;
            let n = r.count("shard counter")?;
            let mut counters = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                counters.push(r.u64()?);
            }
            let tag = r.digest()?;
            Some(ShardBinding {
                shard,
                shards,
                epoch: EpochRecord {
                    hw_counter,
                    epoch,
                    counters,
                    tag,
                },
            })
        }
        t => return Err(err(format!("unknown shard tag {t}"))),
    };
    r.finish()?;
    Ok(ChunkProof {
        chunk_id,
        outcome,
        path,
        attestation,
        shard,
    })
}

// ---- trust anchors ---------------------------------------------------

/// Encode a trust anchor. **Contains key material** — dump only what the
/// recipient is entitled to hold.
pub fn encode_trust_anchor(a: &TrustAnchor) -> Vec<u8> {
    let mut out = vec![TAG_ANCHOR_V1];
    out.extend_from_slice(&a.counter_value.to_le_bytes());
    match &a.keys {
        TrustKeys::Single { root_mac_key } => {
            out.push(0);
            out.extend_from_slice(root_mac_key);
        }
        TrustKeys::Sharded {
            rr_mac_key,
            shard_mac_keys,
        } => {
            out.push(1);
            out.extend_from_slice(rr_mac_key);
            out.extend_from_slice(&(shard_mac_keys.len() as u32).to_le_bytes());
            for k in shard_mac_keys {
                out.extend_from_slice(k);
            }
        }
    }
    out
}

/// Decode a trust anchor.
pub fn decode_trust_anchor(bytes: &[u8]) -> Result<TrustAnchor, WireError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != TAG_ANCHOR_V1 {
        return Err(err("not a v1 trust anchor"));
    }
    let counter_value = r.u64()?;
    let keys = match r.u8()? {
        0 => TrustKeys::Single {
            root_mac_key: r.digest()?,
        },
        1 => {
            let rr_mac_key = r.digest()?;
            let n = r.count("shard key")?;
            if n == 0 || n > 64 {
                return Err(err("implausible shard key count"));
            }
            let mut shard_mac_keys = Vec::with_capacity(n);
            for _ in 0..n {
                shard_mac_keys.push(r.digest()?);
            }
            TrustKeys::Sharded {
                rr_mac_key,
                shard_mac_keys,
            }
        }
        t => return Err(err(format!("unknown key-shape tag {t}"))),
    };
    r.finish()?;
    Ok(TrustAnchor {
        counter_value,
        keys,
    })
}

// ---- keyed proofs ----------------------------------------------------

fn put_keyed_path(out: &mut Vec<u8>, p: &KeyedPath) {
    out.extend_from_slice(&p.index.to_le_bytes());
    put_bytes(out, &p.entry.key);
    out.extend_from_slice(&p.entry.id.to_le_bytes());
    out.extend_from_slice(&(p.siblings.len() as u32).to_le_bytes());
    for s in &p.siblings {
        match s {
            None => out.push(0),
            Some(d) => {
                out.push(1);
                out.extend_from_slice(d);
            }
        }
    }
}

fn get_keyed_path(r: &mut Reader) -> Result<KeyedPath, WireError> {
    let index = r.u64()?;
    let key = r.bytes()?;
    let id = r.u64()?;
    let n = r.count("sibling")?;
    let mut siblings = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        siblings.push(match r.u8()? {
            0 => None,
            1 => Some(r.digest()?),
            t => return Err(err(format!("unknown sibling tag {t}"))),
        });
    }
    Ok(KeyedPath {
        index,
        entry: KeyedEntry { key, id },
        siblings,
    })
}

fn put_opt_path(out: &mut Vec<u8>, p: &Option<KeyedPath>) {
    match p {
        None => out.push(0),
        Some(p) => {
            out.push(1);
            put_keyed_path(out, p);
        }
    }
}

fn get_opt_path(r: &mut Reader) -> Result<Option<KeyedPath>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_keyed_path(r)?)),
        t => Err(err(format!("unknown option tag {t}"))),
    }
}

/// Encode a keyed (index-level) proof.
pub fn encode_keyed_proof(p: &KeyedProof) -> Vec<u8> {
    let mut out = vec![TAG_KEYED_PROOF_V1];
    put_bytes(&mut out, p.scope.as_bytes());
    out.extend_from_slice(&p.total.to_le_bytes());
    out.extend_from_slice(&p.root);
    put_bytes(&mut out, &p.lo);
    match &p.hi {
        None => out.push(0),
        Some(hi) => {
            out.push(1);
            put_bytes(&mut out, hi);
        }
    }
    match &p.case {
        KeyedCase::Present {
            matches,
            left,
            right,
        } => {
            out.push(1);
            out.extend_from_slice(&(matches.len() as u32).to_le_bytes());
            for m in matches {
                put_keyed_path(&mut out, m);
            }
            put_opt_path(&mut out, left);
            put_opt_path(&mut out, right);
        }
        KeyedCase::Absent { left, right } => {
            out.push(0);
            put_opt_path(&mut out, left);
            put_opt_path(&mut out, right);
        }
    }
    out.extend_from_slice(&p.attestation.counter_value.to_le_bytes());
    out.extend_from_slice(&p.attestation.commit_seq.to_le_bytes());
    out.extend_from_slice(&p.attestation.tag);
    out
}

/// Decode a keyed proof.
pub fn decode_keyed_proof(bytes: &[u8]) -> Result<KeyedProof, WireError> {
    let mut r = Reader::new(bytes);
    if r.u8()? != TAG_KEYED_PROOF_V1 {
        return Err(err("not a v1 keyed proof"));
    }
    let scope = String::from_utf8(r.bytes()?).map_err(|_| err("scope is not UTF-8"))?;
    let total = r.u64()?;
    let root = r.digest()?;
    let lo = r.bytes()?;
    let hi = match r.u8()? {
        0 => None,
        1 => Some(r.bytes()?),
        t => return Err(err(format!("unknown upper-bound tag {t}"))),
    };
    let case = match r.u8()? {
        1 => {
            let n = r.count("match")?;
            let mut matches = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                matches.push(get_keyed_path(&mut r)?);
            }
            KeyedCase::Present {
                matches,
                left: get_opt_path(&mut r)?,
                right: get_opt_path(&mut r)?,
            }
        }
        0 => KeyedCase::Absent {
            left: get_opt_path(&mut r)?,
            right: get_opt_path(&mut r)?,
        },
        t => return Err(err(format!("unknown case tag {t}"))),
    };
    let attestation = KeyedAttestation {
        counter_value: r.u64()?,
        commit_seq: r.u64()?,
        tag: r.digest()?,
    };
    r.finish()?;
    Ok(KeyedProof {
        scope,
        total,
        root,
        lo,
        hi,
        case,
        attestation,
    })
}

// ---- hex + JSON dumps ------------------------------------------------

/// Lowercase hex of `bytes`.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parse lowercase/uppercase hex.
pub fn from_hex(s: &str) -> Result<Vec<u8>, WireError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(err("odd-length hex string"));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|_| err("invalid hex digit")))
        .collect()
}

/// Serialize a proof + anchor (+ plaintext value for inclusion proofs)
/// into the offline dump checked by `tdb-doctor verify-proof`.
pub fn dump_json(proof: &ChunkProof, anchor: &TrustAnchor, value: Option<&[u8]>) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"v\": 1,\n");
    s.push_str(&format!(
        "  \"proof\": \"{}\",\n",
        to_hex(&encode_chunk_proof(proof))
    ));
    s.push_str(&format!(
        "  \"anchor\": \"{}\",\n",
        to_hex(&encode_trust_anchor(anchor))
    ));
    s.push_str(&format!(
        "  \"value\": \"{}\"\n",
        to_hex(value.unwrap_or(&[]))
    ));
    s.push('}');
    s
}

/// A parsed proof dump.
pub struct ProofDump {
    /// The chunk proof.
    pub proof: ChunkProof,
    /// The verifier's trust anchor.
    pub anchor: TrustAnchor,
    /// The plaintext value (`None` for non-membership dumps).
    pub value: Option<Vec<u8>>,
}

/// Minimal extraction of the dump's fixed keys — tolerant of whitespace
/// and key order, intolerant of anything structurally surprising.
fn json_str_field(doc: &str, key: &str) -> Result<String, WireError> {
    let needle = format!("\"{key}\"");
    let at = doc
        .find(&needle)
        .ok_or_else(|| err(format!("dump missing \"{key}\"")))?;
    let rest = &doc[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| err(format!("no ':' after \"{key}\"")))?
        .trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| err(format!("\"{key}\" is not a string")))?;
    let end = rest
        .find('"')
        .ok_or_else(|| err(format!("unterminated \"{key}\"")))?;
    Ok(rest[..end].to_string())
}

/// Parse [`dump_json`] output.
pub fn parse_dump_json(doc: &str) -> Result<ProofDump, WireError> {
    let proof = decode_chunk_proof(&from_hex(&json_str_field(doc, "proof")?)?)?;
    let anchor = decode_trust_anchor(&from_hex(&json_str_field(doc, "anchor")?)?)?;
    let value = from_hex(&json_str_field(doc, "value")?)?;
    let value = match (&proof.outcome, value) {
        (ChunkOutcome::Absent, v) if v.is_empty() => None,
        (_, v) => Some(v),
    };
    Ok(ProofDump {
        proof,
        anchor,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_proof() -> ChunkProof {
        ChunkProof {
            chunk_id: 12345,
            outcome: ChunkOutcome::Included {
                sealed_hash: [1u8; 32],
                plain_hash: [2u8; 32],
                content_tag: [3u8; 32],
            },
            path: vec![
                PathNode {
                    is_leaf: false,
                    entries: vec![(0, [4u8; 32]), (9, [5u8; 32])],
                },
                PathNode {
                    is_leaf: true,
                    entries: vec![(57, [6u8; 32])],
                },
            ],
            attestation: Attestation {
                counter_value: 42,
                commit_seq: 7,
                depth: 2,
                fanout: 64,
                tag: [7u8; 32],
            },
            shard: Some(ShardBinding {
                shard: 1,
                shards: 3,
                epoch: EpochRecord {
                    hw_counter: 99,
                    epoch: 4,
                    counters: vec![10, 20, 30],
                    tag: [8u8; 32],
                },
            }),
        }
    }

    fn sample_anchor() -> TrustAnchor {
        TrustAnchor {
            counter_value: 42,
            keys: TrustKeys::Sharded {
                rr_mac_key: [9u8; 32],
                shard_mac_keys: vec![[10u8; 32], [11u8; 32], [12u8; 32]],
            },
        }
    }

    #[test]
    fn chunk_proof_roundtrips_and_rejects_damage() {
        let p = sample_proof();
        let enc = encode_chunk_proof(&p);
        assert_eq!(decode_chunk_proof(&enc).unwrap(), p);
        assert_eq!(p.encoded_len(), enc.len());
        // Truncations never panic and never decode.
        for cut in 0..enc.len() {
            assert!(decode_chunk_proof(&enc[..cut]).is_err(), "cut={cut}");
        }
        // Trailing bytes rejected.
        let mut long = enc.clone();
        long.push(0);
        assert!(decode_chunk_proof(&long).is_err());
    }

    #[test]
    fn anchor_and_keyed_roundtrip() {
        let a = sample_anchor();
        assert_eq!(decode_trust_anchor(&encode_trust_anchor(&a)).unwrap(), a);
        let single = TrustAnchor {
            counter_value: 1,
            keys: TrustKeys::Single {
                root_mac_key: [13u8; 32],
            },
        };
        assert_eq!(
            decode_trust_anchor(&encode_trust_anchor(&single)).unwrap(),
            single
        );

        let tree = crate::keyed::KeyedTree::build(
            (0..9)
                .map(|i| KeyedEntry {
                    key: format!("k{i}").into_bytes(),
                    id: i,
                })
                .collect(),
        );
        for (lo, hi) in [
            (&b"k3"[..], Some(&b"k5"[..])),
            (b"a", Some(b"ab")),
            (b"z", None),
        ] {
            let p = tree.prove_range("c/i", lo, hi);
            let enc = encode_keyed_proof(&p);
            assert_eq!(decode_keyed_proof(&enc).unwrap(), p);
            for cut in 0..enc.len() {
                assert!(decode_keyed_proof(&enc[..cut]).is_err());
            }
        }
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let p = sample_proof();
        let a = sample_anchor();
        let doc = dump_json(&p, &a, Some(b"hello"));
        let d = parse_dump_json(&doc).unwrap();
        assert_eq!(d.proof, p);
        assert_eq!(d.anchor, a);
        assert_eq!(d.value.as_deref(), Some(&b"hello"[..]));

        let absent = ChunkProof {
            outcome: ChunkOutcome::Absent,
            ..p
        };
        let doc = dump_json(&absent, &a, None);
        let d = parse_dump_json(&doc).unwrap();
        assert_eq!(d.proof.outcome, ChunkOutcome::Absent);
        assert!(d.value.is_none());

        assert!(parse_dump_json("{}").is_err());
        assert!(parse_dump_json("{\"proof\": \"zz\"}").is_err());
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(to_hex(&[0xde, 0xad, 0x01]), "dead01");
        assert_eq!(from_hex("dead01").unwrap(), vec![0xde, 0xad, 0x01]);
        assert_eq!(from_hex(" DEAD01 ").unwrap(), vec![0xde, 0xad, 0x01]);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
