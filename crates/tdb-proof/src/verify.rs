//! The pure, store-independent proof verifier.
//!
//! A [`Verifier`] owns nothing but a [`TrustAnchor`] — the one-way counter
//! value the client trusts (obtained out of band, e.g. at provisioning or
//! from a previous verified interaction) and the MAC key material shared
//! with the engine. From that alone it checks:
//!
//! * **inclusion**: a [`ChunkProof`] whose path hashes chain from the
//!   sealed leaf digest to an attested root, whose attestation is bound to
//!   a counter value at least as fresh as the trusted one, and whose
//!   content tag binds the plaintext the reader saw to the sealed leaf;
//! * **non-membership**: the same path machinery ending at an empty slot
//!   (or an id beyond the attested tree's capacity), and for indexes a
//!   [`KeyedProof`] bracketing the missing key between adjacent leaves;
//! * **sharded splicing**: the shard-local root is accepted only through
//!   a root-of-roots [`EpochRecord`] whose hardware counter is fresh and
//!   whose virtual counter vector covers the shard attestation.
//!
//! Every failure is classified: forged or inconsistent bytes are
//! [`ProofError::Tamper`], stale counters/epochs are
//! [`ProofError::Replay`], and shape misuse (e.g. verifying an inclusion
//! proof without the value) is [`ProofError::Usage`].

use crate::keyed::{keyed_tag, KeyedCase, KeyedProof};
use crate::route;
use crate::tree::{
    attestation_tag, capacity, content_tag, epoch_tag, slot_at, ChunkOutcome, ChunkProof,
};
use tdb_crypto::sha256;

/// What a client must hold to verify proofs: the freshest counter value it
/// trusts plus the MAC key(s) the engine attests under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrustAnchor {
    /// The one-way counter value the client trusts (hardware counter; a
    /// proof attesting an older value is a replay).
    pub counter_value: u64,
    /// Key material matching the store's shape.
    pub keys: TrustKeys,
}

/// MAC keys by store shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrustKeys {
    /// Unsharded store: the single root MAC key.
    Single {
        /// MAC key proofs and attestations are minted under.
        root_mac_key: [u8; 32],
    },
    /// Sharded store: the root-of-roots key plus one key per shard.
    Sharded {
        /// Key of the root-of-roots epoch record.
        rr_mac_key: [u8; 32],
        /// Per-shard attestation keys, indexed by shard.
        shard_mac_keys: Vec<[u8; 32]>,
    },
}

impl TrustKeys {
    /// The key keyed (index-level) proofs are attested under: the single
    /// root key, or the root-of-roots key when sharded.
    pub fn keyed_mac_key(&self) -> &[u8; 32] {
        match self {
            TrustKeys::Single { root_mac_key } => root_mac_key,
            TrustKeys::Sharded { rr_mac_key, .. } => rr_mac_key,
        }
    }
}

/// Why a proof was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The proof is forged, corrupted, or internally inconsistent.
    Tamper(String),
    /// The proof attests a counter value older than the trusted one.
    Replay {
        /// The client's trusted counter value.
        trusted: u64,
        /// The (older) value the proof attests.
        attested: u64,
    },
    /// The verification call itself is malformed (wrong anchor shape,
    /// missing value, ...).
    Usage(String),
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::Tamper(m) => write!(f, "proof tampered: {m}"),
            ProofError::Replay { trusted, attested } => write!(
                f,
                "proof replay: attests counter {attested}, but {trusted} is already trusted"
            ),
            ProofError::Usage(m) => write!(f, "proof usage error: {m}"),
        }
    }
}

impl std::error::Error for ProofError {}

fn tamper(m: impl Into<String>) -> ProofError {
    ProofError::Tamper(m.into())
}

/// The standalone verifier; see the [module docs](self).
pub struct Verifier {
    anchor: TrustAnchor,
}

impl Verifier {
    /// Build a verifier around the client's trust anchor.
    pub fn new(anchor: TrustAnchor) -> Verifier {
        Verifier { anchor }
    }

    /// The anchor this verifier trusts.
    pub fn anchor(&self) -> &TrustAnchor {
        &self.anchor
    }

    /// Verify a chunk proof. `value` must be `Some(plaintext)` for an
    /// inclusion proof and `None` for a non-membership proof.
    pub fn verify_chunk(&self, proof: &ChunkProof, value: Option<&[u8]>) -> Result<(), ProofError> {
        let att = &proof.attestation;
        // Resolve the attesting key, the local id, and counter freshness
        // by store shape.
        let (mac_key, local_id) = match (&self.anchor.keys, &proof.shard) {
            (TrustKeys::Single { root_mac_key }, None) => {
                if att.counter_value < self.anchor.counter_value {
                    return Err(ProofError::Replay {
                        trusted: self.anchor.counter_value,
                        attested: att.counter_value,
                    });
                }
                (root_mac_key, proof.chunk_id)
            }
            (
                TrustKeys::Sharded {
                    rr_mac_key,
                    shard_mac_keys,
                },
                Some(binding),
            ) => {
                let shards = binding.shards as usize;
                if shards != shard_mac_keys.len() || shards == 0 {
                    return Err(tamper("shard count does not match trust anchor"));
                }
                let e = &binding.epoch;
                if e.counters.len() != shards {
                    return Err(tamper("epoch counter vector length mismatch"));
                }
                if !tdb_crypto::ct_eq(
                    &epoch_tag(rr_mac_key, e.hw_counter, e.epoch, &e.counters),
                    &e.tag,
                ) {
                    return Err(tamper("epoch record authentication failed"));
                }
                if e.hw_counter < self.anchor.counter_value {
                    return Err(ProofError::Replay {
                        trusted: self.anchor.counter_value,
                        attested: e.hw_counter,
                    });
                }
                let (idx, local) = route(shards, proof.chunk_id);
                if idx != binding.shard as usize {
                    return Err(tamper("chunk id routes to a different shard"));
                }
                // The shard attestation was minted at snapshot pin; the
                // epoch record (minted at prove time) must cover it. A
                // shard proof claiming a virtual counter the root-of-roots
                // never issued is spliced from elsewhere.
                if att.counter_value > e.counters[idx] {
                    return Err(tamper(
                        "shard attestation exceeds the epoch's counter vector",
                    ));
                }
                (&shard_mac_keys[idx], local)
            }
            _ => {
                return Err(ProofError::Usage(
                    "trust anchor shape does not match proof shape".into(),
                ))
            }
        };

        // Structural checks, then chain the path root-down.
        if proof.path.is_empty() {
            return Err(tamper("empty proof path"));
        }
        if att.fanout < 2 || att.depth == 0 {
            return Err(tamper("implausible tree geometry"));
        }
        if proof.path.len() > att.depth as usize {
            return Err(tamper("path longer than attested depth"));
        }
        for node in &proof.path {
            if !node.is_canonical() {
                return Err(tamper("path node entries not in canonical order"));
            }
        }
        let root_hash = proof.path[0].hash();
        if !tdb_crypto::ct_eq(
            &attestation_tag(
                mac_key,
                att.counter_value,
                att.commit_seq,
                att.depth,
                att.fanout,
                &root_hash,
            ),
            &att.tag,
        ) {
            return Err(tamper("root attestation failed"));
        }

        if (local_id as u128) >= capacity(att.fanout, att.depth) {
            // Beyond the attested tree's capacity: absent by construction,
            // the bare attested root suffices.
            return match (&proof.outcome, value) {
                (ChunkOutcome::Absent, None) => Ok(()),
                (ChunkOutcome::Absent, Some(_)) => Err(ProofError::Usage(
                    "value supplied for a non-membership proof".into(),
                )),
                _ => Err(tamper("inclusion claimed beyond tree capacity")),
            };
        }

        for (i, node) in proof.path.iter().enumerate() {
            let is_last = i + 1 == proof.path.len();
            let expect_leaf = i as u32 == att.depth - 1;
            if node.is_leaf != expect_leaf {
                return Err(tamper("node kind does not match its depth"));
            }
            let slot = slot_at(att.fanout, local_id, att.depth - 1 - i as u32);
            match (node.digest_at(slot), is_last) {
                (Some(d), false) => {
                    if !tdb_crypto::ct_eq(d, &proof.path[i + 1].hash()) {
                        return Err(tamper("path link hash mismatch"));
                    }
                }
                (Some(d), true) => {
                    if !node.is_leaf {
                        return Err(tamper("path stops at a present inner slot"));
                    }
                    match &proof.outcome {
                        ChunkOutcome::Included { sealed_hash, .. } => {
                            if !tdb_crypto::ct_eq(d, sealed_hash) {
                                return Err(tamper("leaf digest does not match sealed hash"));
                            }
                        }
                        ChunkOutcome::Absent => {
                            return Err(tamper("absence claimed but the leaf slot is occupied"))
                        }
                    }
                }
                (None, true) => {
                    if let ChunkOutcome::Included { .. } = proof.outcome {
                        return Err(tamper("inclusion claimed but the path slot is empty"));
                    }
                }
                (None, false) => return Err(tamper("path continues past an empty slot")),
            }
        }

        // Bind the plaintext.
        match (&proof.outcome, value) {
            (
                ChunkOutcome::Included {
                    sealed_hash,
                    plain_hash,
                    content_tag: tag,
                },
                Some(v),
            ) => {
                if !tdb_crypto::ct_eq(&sha256(v), plain_hash) {
                    return Err(tamper("value does not match the proven plaintext hash"));
                }
                if !tdb_crypto::ct_eq(
                    &content_tag(mac_key, proof.chunk_id, sealed_hash, plain_hash),
                    tag,
                ) {
                    return Err(tamper("content tag authentication failed"));
                }
                Ok(())
            }
            (ChunkOutcome::Absent, None) => Ok(()),
            (ChunkOutcome::Included { .. }, None) => Err(ProofError::Usage(
                "inclusion proof verified without its value".into(),
            )),
            (ChunkOutcome::Absent, Some(_)) => Err(ProofError::Usage(
                "value supplied for a non-membership proof".into(),
            )),
        }
    }

    /// Verify a keyed (index-level) proof. Returns the proven object ids
    /// for the queried range — empty for a verified non-membership proof.
    pub fn verify_keyed(&self, proof: &KeyedProof) -> Result<Vec<u64>, ProofError> {
        let key = self.anchor.keys.keyed_mac_key();
        let att = &proof.attestation;
        if !tdb_crypto::ct_eq(
            &keyed_tag(
                key,
                att.counter_value,
                att.commit_seq,
                &proof.scope,
                proof.total,
                &proof.root,
            ),
            &att.tag,
        ) {
            return Err(tamper("keyed root attestation failed"));
        }
        if att.counter_value < self.anchor.counter_value {
            return Err(ProofError::Replay {
                trusted: self.anchor.counter_value,
                attested: att.counter_value,
            });
        }
        if let Some(hi) = &proof.hi {
            if *hi < proof.lo {
                return Err(ProofError::Usage("inverted key range".into()));
            }
        }
        // Half-open range membership: `lo <= k < hi`, unbounded when
        // `hi` is `None`.
        let below_hi = |k: &[u8]| match &proof.hi {
            Some(hi) => k < hi.as_slice(),
            None => true,
        };
        let n = proof.total;
        let check_path = |p: &crate::keyed::KeyedPath| -> Result<(), ProofError> {
            match p.recompute_root(n) {
                Some(r) if tdb_crypto::ct_eq(&r, &proof.root) => Ok(()),
                _ => Err(tamper("keyed path does not reach the committed root")),
            }
        };
        match &proof.case {
            KeyedCase::Present {
                matches,
                left,
                right,
            } => {
                if matches.is_empty() {
                    return Err(tamper("present claim with no matches"));
                }
                for (k, p) in matches.iter().enumerate() {
                    check_path(p)?;
                    if k > 0 && p.index != matches[k - 1].index + 1 {
                        return Err(tamper("match indices are not consecutive"));
                    }
                    if p.entry.key < proof.lo || !below_hi(&p.entry.key) {
                        return Err(tamper("claimed match is outside the queried range"));
                    }
                }
                let first = matches[0].index;
                let last = matches[matches.len() - 1].index;
                match (first, left) {
                    (0, None) => {}
                    (f, Some(l)) if f > 0 => {
                        check_path(l)?;
                        if l.index != f - 1 {
                            return Err(tamper("left bracket is not adjacent"));
                        }
                        if l.entry.key >= proof.lo {
                            return Err(tamper("left bracket key inside the range"));
                        }
                    }
                    _ => return Err(tamper("missing or spurious left bracket")),
                }
                match (last, right) {
                    (l, None) if l + 1 == n => {}
                    (l, Some(r)) if l + 1 < n => {
                        check_path(r)?;
                        if r.index != l + 1 {
                            return Err(tamper("right bracket is not adjacent"));
                        }
                        if below_hi(&r.entry.key) {
                            return Err(tamper("right bracket key inside the range"));
                        }
                    }
                    _ => return Err(tamper("missing or spurious right bracket")),
                }
                Ok(matches.iter().map(|p| p.entry.id).collect())
            }
            KeyedCase::Absent { left, right } => {
                match (left, right) {
                    (None, None) => {
                        if n != 0 || !tdb_crypto::ct_eq(&proof.root, &crate::keyed::empty_root()) {
                            return Err(tamper("bare absence claim over a non-empty index"));
                        }
                    }
                    (Some(l), None) => {
                        check_path(l)?;
                        if l.index + 1 != n {
                            return Err(tamper("left bracket is not the last entry"));
                        }
                        if l.entry.key >= proof.lo {
                            return Err(tamper("left bracket key inside the range"));
                        }
                    }
                    (None, Some(r)) => {
                        check_path(r)?;
                        if r.index != 0 {
                            return Err(tamper("right bracket is not the first entry"));
                        }
                        if below_hi(&r.entry.key) {
                            return Err(tamper("right bracket key inside the range"));
                        }
                    }
                    (Some(l), Some(r)) => {
                        check_path(l)?;
                        check_path(r)?;
                        if r.index != l.index + 1 {
                            return Err(tamper("brackets are not adjacent"));
                        }
                        if l.entry.key >= proof.lo || below_hi(&r.entry.key) {
                            return Err(tamper("bracket keys do not exclude the range"));
                        }
                    }
                }
                Ok(Vec::new())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyed::{KeyedAttestation, KeyedEntry, KeyedTree};
    use crate::tree::{Attestation, PathNode};

    const KEY: [u8; 32] = [5u8; 32];

    fn anchor(counter: u64) -> TrustAnchor {
        TrustAnchor {
            counter_value: counter,
            keys: TrustKeys::Single { root_mac_key: KEY },
        }
    }

    /// Hand-build a depth-2 fanout-4 tree holding ids 1 and 6 and produce
    /// proofs straight from the definition.
    fn tiny_proof(id: u64, value: &[u8], counter: u64) -> ChunkProof {
        let sealed = |v: &[u8]| sha256(&[v, b"!sealed"].concat());
        let leaf0 = PathNode {
            is_leaf: true,
            entries: vec![(1, sealed(b"one"))],
        };
        let leaf1 = PathNode {
            is_leaf: true,
            entries: vec![(2, sealed(b"six"))],
        };
        let root = PathNode {
            is_leaf: false,
            entries: vec![(0, leaf0.hash()), (1, leaf1.hash())],
        };
        let (path, outcome) = match id {
            1 => (
                vec![root, leaf0],
                ChunkOutcome::Included {
                    sealed_hash: sealed(b"one"),
                    plain_hash: sha256(value),
                    content_tag: content_tag(&KEY, 1, &sealed(b"one"), &sha256(value)),
                },
            ),
            6 => (
                vec![root, leaf1],
                ChunkOutcome::Included {
                    sealed_hash: sealed(b"six"),
                    plain_hash: sha256(value),
                    content_tag: content_tag(&KEY, 6, &sealed(b"six"), &sha256(value)),
                },
            ),
            // id 5 = slot 1 of leaf1 (5/4=1, 5%4=1): empty slot in leaf.
            5 => (vec![root, leaf1], ChunkOutcome::Absent),
            // id 8 routes to child 2 of the root: absent subtree.
            8 => (vec![root], ChunkOutcome::Absent),
            // id 99 is beyond capacity 16.
            99 => (vec![root], ChunkOutcome::Absent),
            _ => panic!("unscripted id"),
        };
        let tag = attestation_tag(&KEY, counter, 9, 2, 4, &path[0].hash());
        ChunkProof {
            chunk_id: id,
            outcome,
            path,
            attestation: Attestation {
                counter_value: counter,
                commit_seq: 9,
                depth: 2,
                fanout: 4,
                tag,
            },
            shard: None,
        }
    }

    #[test]
    fn inclusion_and_absence_verify() {
        let v = Verifier::new(anchor(7));
        v.verify_chunk(&tiny_proof(1, b"one-value", 7), Some(b"one-value"))
            .unwrap();
        v.verify_chunk(&tiny_proof(6, b"six-value", 8), Some(b"six-value"))
            .unwrap();
        v.verify_chunk(&tiny_proof(5, b"", 7), None).unwrap();
        v.verify_chunk(&tiny_proof(8, b"", 7), None).unwrap();
        v.verify_chunk(&tiny_proof(99, b"", 7), None).unwrap();
    }

    #[test]
    fn wrong_value_stale_counter_and_shape_misuse() {
        let v = Verifier::new(anchor(7));
        assert!(matches!(
            v.verify_chunk(&tiny_proof(1, b"one-value", 7), Some(b"forged")),
            Err(ProofError::Tamper(_))
        ));
        assert!(matches!(
            v.verify_chunk(&tiny_proof(1, b"one-value", 6), Some(b"one-value")),
            Err(ProofError::Replay {
                trusted: 7,
                attested: 6
            })
        ));
        assert!(matches!(
            v.verify_chunk(&tiny_proof(1, b"one-value", 7), None),
            Err(ProofError::Usage(_))
        ));
        assert!(matches!(
            v.verify_chunk(&tiny_proof(5, b"", 7), Some(b"x")),
            Err(ProofError::Usage(_))
        ));
    }

    #[test]
    fn any_flipped_byte_is_rejected() {
        let v = Verifier::new(anchor(3));
        let base = tiny_proof(1, b"one-value", 5);
        let wire = crate::wire::encode_chunk_proof(&base);
        let mut accepted_mutations = 0;
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x01;
            match crate::wire::decode_chunk_proof(&bad) {
                Err(_) => {}
                Ok(p) => {
                    if v.verify_chunk(&p, Some(b"one-value")).is_ok() {
                        accepted_mutations += 1;
                    }
                }
            }
        }
        assert_eq!(accepted_mutations, 0, "a flipped proof byte verified");
    }

    #[test]
    fn keyed_proofs_verify_and_reject() {
        let tree = KeyedTree::build(
            ["ant", "bee", "bee", "cat", "dog"]
                .iter()
                .enumerate()
                .map(|(i, k)| KeyedEntry {
                    key: k.as_bytes().to_vec(),
                    id: i as u64,
                })
                .collect(),
        );
        let attest = |p: &mut KeyedProof, counter: u64| {
            p.attestation = KeyedAttestation {
                counter_value: counter,
                commit_seq: 4,
                tag: keyed_tag(&KEY, counter, 4, &p.scope, p.total, &p.root),
            };
        };
        let v = Verifier::new(anchor(2));
        let exact = |k: &[u8]| crate::keyed::key_successor(k);

        let mut hit = tree.prove_range("c/i", b"bee", Some(&exact(b"bee")));
        attest(&mut hit, 2);
        assert_eq!(v.verify_keyed(&hit).unwrap(), vec![1, 2]);

        let mut miss = tree.prove_range("c/i", b"cow", Some(&exact(b"cow")));
        attest(&mut miss, 3);
        assert_eq!(v.verify_keyed(&miss).unwrap(), Vec::<u64>::new());

        // Range miss.
        let mut rmiss = tree.prove_range("c/i", b"cata", Some(b"cz"));
        attest(&mut rmiss, 2);
        assert_eq!(v.verify_keyed(&rmiss).unwrap(), Vec::<u64>::new());

        // Unbounded-above range hit.
        let mut open = tree.prove_range("c/i", b"cat", None);
        attest(&mut open, 2);
        assert_eq!(v.verify_keyed(&open).unwrap(), vec![3, 4]);

        // Stale counter.
        let mut stale = tree.prove_range("c/i", b"bee", Some(&exact(b"bee")));
        attest(&mut stale, 1);
        assert!(matches!(
            v.verify_keyed(&stale),
            Err(ProofError::Replay { .. })
        ));

        // Dropped match: brackets stop being adjacent.
        let mut dropped = hit.clone();
        if let KeyedCase::Present { matches, .. } = &mut dropped.case {
            matches.pop();
        }
        assert!(matches!(
            v.verify_keyed(&dropped),
            Err(ProofError::Tamper(_))
        ));

        // Forged root.
        let mut forged = hit.clone();
        forged.root[0] ^= 1;
        assert!(matches!(
            v.verify_keyed(&forged),
            Err(ProofError::Tamper(_))
        ));

        // Absence claimed for a present key: the honest prover would emit
        // Present; forging Absent needs non-adjacent brackets.
        let mut lie = tree.prove_range("c/i", b"bee", Some(&exact(b"bee")));
        lie.case = KeyedCase::Absent {
            left: Some(tree.path(0)),
            right: Some(tree.path(3)),
        };
        attest(&mut lie, 2);
        assert!(matches!(v.verify_keyed(&lie), Err(ProofError::Tamper(_))));
    }
}
