//! Keyed hash tree over an ordered index: membership *and* non-membership.
//!
//! A plain Merkle tree proves what *is* in a set; proving what is *not*
//! needs order. Following Bauer's construction, the prover commits to the
//! index's entries **sorted by key**: a miss for key `k` is then proven by
//! exhibiting the two *adjacent* leaves that bracket `k` — adjacency
//! (consecutive leaf indices) shows nothing was omitted between them, and
//! the bracket keys show `k` would have to sit exactly there.
//!
//! The tree is a binary Merkle tree over the sorted `(key, id)` leaves;
//! an odd node at any level is promoted unchanged (no padding digests to
//! get wrong). The root is bound to the database state by a
//! [`KeyedAttestation`] minted by the engine over the collection/index
//! scope, the snapshot's commit sequence, and the pinned counter value.

use tdb_crypto::{Digest, HmacSha256, Sha256};

/// One `(key, object id)` entry of the committed index.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyedEntry {
    /// The index key, in its order-preserving encoded form.
    pub key: Vec<u8>,
    /// The object id the entry maps to.
    pub id: u64,
}

fn leaf_hash(e: &KeyedEntry) -> Digest {
    let mut h = Sha256::new();
    h.update(b"tdb.keyed.leaf");
    h.update(&(e.key.len() as u32).to_le_bytes());
    h.update(&e.key);
    h.update(&e.id.to_le_bytes());
    h.finalize()
}

fn inner_hash(l: &Digest, r: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(b"tdb.keyed.inner");
    h.update(l);
    h.update(r);
    h.finalize()
}

/// Root of a tree with no entries.
pub fn empty_root() -> Digest {
    tdb_crypto::sha256(b"tdb.keyed.empty")
}

/// The prover-side tree: all levels materialized.
pub struct KeyedTree {
    entries: Vec<KeyedEntry>,
    /// `levels[0]` = leaf hashes, each next level half the size (odd last
    /// node promoted), `levels.last()` = `[root]`.
    levels: Vec<Vec<Digest>>,
}

impl KeyedTree {
    /// Build over `entries`; sorts them into canonical `(key, id)` order.
    pub fn build(mut entries: Vec<KeyedEntry>) -> KeyedTree {
        entries.sort();
        let mut levels = Vec::new();
        let mut level: Vec<Digest> = entries.iter().map(leaf_hash).collect();
        if level.is_empty() {
            return KeyedTree {
                entries,
                levels: vec![],
            };
        }
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(match pair {
                    [l, r] => inner_hash(l, r),
                    [only] => *only,
                    _ => unreachable!(),
                });
            }
            levels.push(level);
            level = next;
        }
        levels.push(level);
        KeyedTree { entries, levels }
    }

    /// Number of entries committed.
    pub fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Whether the tree commits to no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The committed root.
    pub fn root(&self) -> Digest {
        match self.levels.last() {
            Some(top) => top[0],
            None => empty_root(),
        }
    }

    /// The sorted entries (for picking bracket indices).
    pub fn entries(&self) -> &[KeyedEntry] {
        &self.entries
    }

    /// Membership path for the leaf at `index`.
    pub fn path(&self, index: u64) -> KeyedPath {
        let mut siblings = Vec::new();
        let mut i = index as usize;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sib = i ^ 1;
            siblings.push(level.get(sib).copied());
            i /= 2;
        }
        KeyedPath {
            index,
            entry: self.entries[index as usize].clone(),
            siblings,
        }
    }

    /// First index whose key is `>= key` (the insertion point).
    pub fn lower_bound(&self, key: &[u8]) -> u64 {
        self.entries.partition_point(|e| e.key.as_slice() < key) as u64
    }

    /// First index whose key is `> key`.
    pub fn upper_bound(&self, key: &[u8]) -> u64 {
        self.entries.partition_point(|e| e.key.as_slice() <= key) as u64
    }
}

/// A membership path: the leaf entry, its index, and the sibling digest
/// at every level (`None` where the node was promoted unpaired).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedPath {
    /// Leaf index in the sorted order.
    pub index: u64,
    /// The entry itself.
    pub entry: KeyedEntry,
    /// Bottom-up sibling digests.
    pub siblings: Vec<Option<Digest>>,
}

impl KeyedPath {
    /// Recompute the root this path commits to, given the total leaf
    /// count `n`. Returns `None` if the path shape is inconsistent with
    /// `(index, n)` — promotions are fully determined by them.
    pub fn recompute_root(&self, n: u64) -> Option<Digest> {
        if self.index >= n || n == 0 {
            return None;
        }
        let mut acc = leaf_hash(&self.entry);
        let mut i = self.index;
        let mut width = n;
        let mut steps = 0usize;
        while width > 1 {
            let sib = self.siblings.get(steps)?;
            let pair_exists = (i ^ 1) < width;
            match (pair_exists, sib) {
                (true, Some(s)) => {
                    acc = if i.is_multiple_of(2) {
                        inner_hash(&acc, s)
                    } else {
                        inner_hash(s, &acc)
                    };
                }
                (false, None) => {} // promoted unchanged
                _ => return None,
            }
            i /= 2;
            width = width.div_ceil(2);
            steps += 1;
        }
        if steps != self.siblings.len() {
            return None;
        }
        Some(acc)
    }
}

/// Engine attestation over a keyed root:
/// `HMAC(key, "tdb.proof.keyed" || counter || commit_seq || scope || n || root)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedAttestation {
    /// Counter value pinned with the snapshot.
    pub counter_value: u64,
    /// Snapshot commit sequence.
    pub commit_seq: u64,
    /// The HMAC tag.
    pub tag: Digest,
}

/// Mint the keyed-root attestation tag.
pub fn keyed_tag(
    mac_key: &[u8; 32],
    counter_value: u64,
    commit_seq: u64,
    scope: &str,
    n: u64,
    root: &Digest,
) -> Digest {
    let mut m = HmacSha256::new(mac_key);
    m.update(b"tdb.proof.keyed");
    m.update(&counter_value.to_le_bytes());
    m.update(&commit_seq.to_le_bytes());
    m.update(&(scope.len() as u32).to_le_bytes());
    m.update(scope.as_bytes());
    m.update(&n.to_le_bytes());
    m.update(root);
    m.finalize()
}

/// The claim a keyed proof makes about the queried key range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyedCase {
    /// Every entry with key in `[lo, hi)`, plus the adjacent non-matching
    /// brackets proving completeness.
    Present {
        /// Consecutive-index paths of every matching entry.
        matches: Vec<KeyedPath>,
        /// Entry just before the first match (`None` iff it is index 0).
        left: Option<KeyedPath>,
        /// Entry just after the last match (`None` iff it is index n−1).
        right: Option<KeyedPath>,
    },
    /// No entry has a key in `[lo, hi)`: the adjacent pair bracketing the
    /// whole range (either side `None` at the edges of the index).
    Absent {
        /// Greatest entry with key `< lo` (`None` iff the range starts
        /// before every key).
        left: Option<KeyedPath>,
        /// Least entry with key `>= hi` (`None` iff the range ends after
        /// every key).
        right: Option<KeyedPath>,
    },
}

/// A self-contained (non-)membership proof for a key range of one index.
///
/// The queried range is **half-open**: `[lo, hi)` in the encoded key
/// order, with `hi = None` meaning unbounded above. Every `Bound` form a
/// query layer offers maps onto this exactly — an inclusive bound becomes
/// the key's [successor](key_successor), an exclusive one is used as is —
/// whereas a closed `[lo, hi]` range cannot represent "strictly below k"
/// (byte strings have no greatest element below a given one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedProof {
    /// Scope label, `"{collection}/{index}"`.
    pub scope: String,
    /// Total entries committed by the root.
    pub total: u64,
    /// Committed root.
    pub root: Digest,
    /// Inclusive lower bound of the queried key range (encoded form).
    pub lo: Vec<u8>,
    /// Exclusive upper bound; `None` = unbounded above.
    pub hi: Option<Vec<u8>>,
    /// The membership claim.
    pub case: KeyedCase,
    /// Root-to-counter binding.
    pub attestation: KeyedAttestation,
}

/// The smallest byte string strictly greater than `key`: `key || 0x00`.
/// Turns an inclusive bound into the equivalent exclusive one, so an exact
/// lookup for `k` is the half-open range `[k, key_successor(k))`.
pub fn key_successor(key: &[u8]) -> Vec<u8> {
    let mut s = Vec::with_capacity(key.len() + 1);
    s.extend_from_slice(key);
    s.push(0x00);
    s
}

impl KeyedTree {
    /// Build the proof for the half-open key range `[lo, hi)` (`hi = None`
    /// = unbounded); attestation is left zeroed for the engine to fill.
    /// For an exact lookup pass `hi = Some(&key_successor(lo))`.
    pub fn prove_range(&self, scope: &str, lo: &[u8], hi: Option<&[u8]>) -> KeyedProof {
        let n = self.len();
        let start = self.lower_bound(lo);
        // First index beyond the range; an inverted range is just empty.
        let end = hi.map_or(n, |h| self.lower_bound(h)).max(start);
        let case = if start == end {
            KeyedCase::Absent {
                left: start.checked_sub(1).map(|i| self.path(i)),
                right: (start < n).then(|| self.path(start)),
            }
        } else {
            KeyedCase::Present {
                matches: (start..end).map(|i| self.path(i)).collect(),
                left: start.checked_sub(1).map(|i| self.path(i)),
                right: (end < n).then(|| self.path(end)),
            }
        };
        KeyedProof {
            scope: scope.to_string(),
            total: n,
            root: self.root(),
            lo: lo.to_vec(),
            hi: hi.map(|h| h.to_vec()),
            case,
            attestation: KeyedAttestation {
                counter_value: 0,
                commit_seq: 0,
                tag: [0u8; 32],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(k: &str, id: u64) -> KeyedEntry {
        KeyedEntry {
            key: k.as_bytes().to_vec(),
            id,
        }
    }

    #[test]
    fn paths_recompute_root_at_every_size() {
        for n in 1..20u64 {
            let tree = KeyedTree::build((0..n).map(|i| entry(&format!("k{i:03}"), i)).collect());
            for i in 0..n {
                let p = tree.path(i);
                assert_eq!(p.recompute_root(n), Some(tree.root()), "n={n} i={i}");
                // A wrong total is not always distinguishable from the
                // path alone (promotions can coincide) — which is exactly
                // why `n` is bound inside the attestation tag. The path
                // must still reject totals its index cannot exist under.
                assert_eq!(p.recompute_root(0), None);
                assert_eq!(p.recompute_root(i), None, "index must be < n");
            }
        }
    }

    #[test]
    fn tampered_path_fails() {
        let tree = KeyedTree::build((0..7).map(|i| entry(&format!("k{i}"), i)).collect());
        let mut p = tree.path(3);
        p.entry.id = 99;
        assert_ne!(p.recompute_root(7), Some(tree.root()));
        let mut p = tree.path(3);
        if let Some(Some(s)) = p.siblings.first_mut().map(|s| s.as_mut()) {
            s[0] ^= 1;
        }
        assert_ne!(p.recompute_root(7), Some(tree.root()));
    }

    #[test]
    fn range_proofs_cover_hits_and_misses() {
        let tree = KeyedTree::build(vec![
            entry("apple", 1),
            entry("cherry", 2),
            entry("cherry", 3),
            entry("grape", 4),
        ]);
        // Exact hit with duplicates.
        let p = tree.prove_range("t/i", b"cherry", Some(&key_successor(b"cherry")));
        match &p.case {
            KeyedCase::Present {
                matches,
                left,
                right,
            } => {
                assert_eq!(matches.len(), 2);
                assert_eq!(left.as_ref().unwrap().entry.key, b"apple");
                assert_eq!(right.as_ref().unwrap().entry.key, b"grape");
            }
            other => panic!("{other:?}"),
        }
        // Miss strictly inside.
        let p = tree.prove_range("t/i", b"banana", Some(&key_successor(b"banana")));
        match &p.case {
            KeyedCase::Absent { left, right } => {
                assert_eq!(left.as_ref().unwrap().entry.key, b"apple");
                assert_eq!(right.as_ref().unwrap().entry.key, b"cherry");
            }
            other => panic!("{other:?}"),
        }
        // Miss before everything / after everything (unbounded above).
        let p = tree.prove_range("t/i", b"a", Some(b"ab"));
        assert!(matches!(
            &p.case,
            KeyedCase::Absent { left: None, right: Some(r) } if r.entry.key == b"apple"
        ));
        let p = tree.prove_range("t/i", b"zebra", None);
        assert!(matches!(
            &p.case,
            KeyedCase::Absent { left: Some(l), right: None } if l.entry.key == b"grape"
        ));
        // Unbounded-above hit: everything from "grape" on.
        let p = tree.prove_range("t/i", b"grape", None);
        assert!(matches!(
            &p.case,
            KeyedCase::Present { matches, right: None, .. } if matches.len() == 1
        ));
        // Empty range query over an empty tree.
        let empty = KeyedTree::build(vec![]);
        assert_eq!(empty.root(), empty_root());
        let p = empty.prove_range("t/i", b"x", Some(b"y"));
        assert!(matches!(
            &p.case,
            KeyedCase::Absent {
                left: None,
                right: None
            }
        ));
    }
}
