//! The authenticated double-buffered slot format.
//!
//! Both trust roots of a TDB database — the single-store anchor and the
//! sharded root-of-roots — persist as a pair of alternating slot files
//! with the exact same shape:
//!
//! ```text
//! magic(8) || seq_le(8) || mode_tag(1) || body_len_le(4) || sealed_body || mac(32)
//! ```
//!
//! The sequence number is plaintext (slot arbitration must work before
//! decryption), the body is sealed under the writer's mode, and the MAC
//! covers everything before it. Decoding authenticates under the mode the
//! slot *claims* before trusting the claim: a corrupted mode byte fails
//! its MAC and reads as tampering, while an authentic slot written under
//! a different mode is a genuine configuration mismatch.
//!
//! The caller supplies the crypto through [`SlotSealer`] (the chunk
//! store's `CryptoCtx` implements it) and owns the body format; this
//! module owns the framing, arbitration, and write protocol that used to
//! be duplicated between `anchor.rs` and `sharded.rs`.

use tdb_crypto::{Digest, DIGEST_LEN};
use tdb_platform::UntrustedStore;

/// Crypto operations a slot codec needs, mode- and key-aware but opaque
/// to this module.
pub trait SlotSealer {
    /// Mode tag byte written into (and expected from) slots.
    fn mode_tag(&self) -> u8;
    /// Seal a body for storage (encrypt, or pass through when off).
    fn seal_body(&self, plain: &[u8]) -> Vec<u8>;
    /// Inverse of [`seal_body`](Self::seal_body). A structurally invalid
    /// ciphertext is tampering.
    fn open_body(&self, sealed: &[u8]) -> Result<Vec<u8>, SlotError>;
    /// The authentication tag a sealer *in mode `mode_tag`* (with this
    /// key material) computes over `bytes`; `None` if the tag byte names
    /// no known mode.
    fn tag_for_mode(&self, mode_tag: u8, bytes: &[u8]) -> Option<Digest>;
}

/// Errors from slot decoding and slot-pair IO, mapped by the caller onto
/// its own error type.
#[derive(Debug)]
pub enum SlotError {
    /// Neither slot exists — no database was ever created here.
    Missing,
    /// A present slot failed structural or cryptographic validation.
    Tamper(String),
    /// The slot is authentic but was written under a different security
    /// mode than the one configured now.
    ModeMismatch,
    /// The untrusted store itself failed.
    Platform(tdb_platform::PlatformError),
}

impl From<tdb_platform::PlatformError> for SlotError {
    fn from(e: tdb_platform::PlatformError) -> Self {
        SlotError::Platform(e)
    }
}

const HEADER_LEN: usize = 8 + 8 + 1 + 4;

/// Serialize a slot: frame `body` (sealed by `sealer`) under `magic` with
/// the plaintext `seq`, and MAC the whole thing.
pub fn encode_slot(sealer: &dyn SlotSealer, magic: &[u8; 8], seq: u64, body: &[u8]) -> Vec<u8> {
    let sealed = sealer.seal_body(body);
    let mut out = Vec::with_capacity(HEADER_LEN + sealed.len() + DIGEST_LEN);
    out.extend_from_slice(magic);
    out.extend_from_slice(&seq.to_le_bytes());
    out.push(sealer.mode_tag());
    out.extend_from_slice(&(sealed.len() as u32).to_le_bytes());
    out.extend_from_slice(&sealed);
    let tag = sealer
        .tag_for_mode(sealer.mode_tag(), &out)
        .expect("own mode tag is always known");
    out.extend_from_slice(&tag);
    out
}

/// Parse and authenticate a slot. Returns `Ok(None)` for an empty slot
/// (never written) and the plaintext sequence plus opened body otherwise.
/// `what` prefixes error messages ("anchor", "root-of-roots", ...). The
/// caller must cross-check the returned sequence against the one inside
/// its decoded body.
pub fn decode_slot(
    sealer: &dyn SlotSealer,
    magic: &[u8; 8],
    what: &str,
    bytes: &[u8],
) -> Result<Option<(u64, Vec<u8>)>, SlotError> {
    if bytes.is_empty() {
        return Ok(None);
    }
    let tampered = |m: &str| SlotError::Tamper(format!("{what}: {m}"));
    if bytes.len() < HEADER_LEN + DIGEST_LEN {
        return Err(tampered("truncated"));
    }
    if &bytes[..8] != magic {
        return Err(tampered("bad magic"));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let claimed = bytes[16];
    let body_len = u32::from_le_bytes(bytes[17..21].try_into().expect("4 bytes")) as usize;
    if bytes.len() != HEADER_LEN + body_len + DIGEST_LEN {
        return Err(tampered("length mismatch"));
    }
    let (signed, tag_bytes) = bytes.split_at(HEADER_LEN + body_len);
    let tag: Digest = tag_bytes.try_into().expect("32 bytes");
    // Authenticate under the claimed mode before trusting the claim.
    let expected = match sealer.tag_for_mode(claimed, signed) {
        Some(t) => t,
        None => return Err(tampered("bad mode tag")),
    };
    if !tdb_crypto::ct_eq(&expected, &tag) {
        return Err(tampered("authentication tag mismatch"));
    }
    if claimed != sealer.mode_tag() {
        return Err(SlotError::ModeMismatch);
    }
    let body = sealer.open_body(&signed[HEADER_LEN..])?;
    Ok(Some((seq, body)))
}

/// The double-buffered slot pair on an untrusted store: existence checks,
/// newest-valid arbitration, and the alternating write protocol.
pub struct SlotPair<'a> {
    store: &'a dyn UntrustedStore,
    magic: [u8; 8],
    names: [&'static str; 2],
    what: &'static str,
}

impl<'a> SlotPair<'a> {
    /// Bind a slot pair (`names` alternated by sequence parity) on `store`.
    pub fn new(
        store: &'a dyn UntrustedStore,
        magic: [u8; 8],
        names: [&'static str; 2],
        what: &'static str,
    ) -> Self {
        SlotPair {
            store,
            magic,
            names,
            what,
        }
    }

    /// Whether either slot exists (i.e. a database was created here).
    pub fn exists(&self) -> Result<bool, SlotError> {
        Ok(self.store.exists(self.names[0])? || self.store.exists(self.names[1])?)
    }

    fn read_slot(&self, name: &str) -> Result<Vec<u8>, SlotError> {
        if !self.store.exists(name)? {
            return Ok(Vec::new());
        }
        let f = self.store.open(name, false)?;
        let len = f.len()? as usize;
        let mut buf = vec![0u8; len];
        f.read_at(0, &mut buf)?;
        Ok(buf)
    }

    /// Read both slots and return the `(seq, body)` of the valid slot with
    /// the highest sequence. One invalid slot is tolerated **only** as the
    /// *older* write (a torn update); if slots exist but none decodes, the
    /// first decode error is returned. No slot at all is
    /// [`SlotError::Missing`].
    pub fn read_best(&self, sealer: &dyn SlotSealer) -> Result<(u64, Vec<u8>), SlotError> {
        let mut best: Option<(u64, Vec<u8>)> = None;
        let mut first_error: Option<SlotError> = None;
        let mut any_present = false;
        for name in self.names {
            let bytes = self.read_slot(name)?;
            if !bytes.is_empty() {
                any_present = true;
            }
            match decode_slot(sealer, &self.magic, self.what, &bytes) {
                Ok(Some((seq, body))) => {
                    if best.as_ref().is_none_or(|(b, _)| seq > *b) {
                        best = Some((seq, body));
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        match (best, any_present) {
            (Some(found), _) => Ok(found),
            (None, false) => Err(SlotError::Missing),
            (None, true) => Err(first_error
                .unwrap_or_else(|| SlotError::Tamper(format!("{}: no valid slot", self.what)))),
        }
    }

    /// Write a slot for `seq` into the slot selected by sequence parity
    /// (the one *not* holding the current best), then sync.
    pub fn write(&self, sealer: &dyn SlotSealer, seq: u64, body: &[u8]) -> Result<(), SlotError> {
        let name = self.names[(seq % 2) as usize];
        let bytes = encode_slot(sealer, &self.magic, seq, body);
        let f = self.store.open(name, true)?;
        f.set_len(bytes.len() as u64)?;
        f.write_at(0, &bytes)?;
        f.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_platform::MemStore;

    /// A toy sealer: XOR "encryption", keyed-sum MAC — enough to exercise
    /// framing and arbitration without real crypto.
    struct ToySealer {
        mode: u8,
        key: u8,
    }

    impl SlotSealer for ToySealer {
        fn mode_tag(&self) -> u8 {
            self.mode
        }
        fn seal_body(&self, plain: &[u8]) -> Vec<u8> {
            plain.iter().map(|b| b ^ self.key).collect()
        }
        fn open_body(&self, sealed: &[u8]) -> Result<Vec<u8>, SlotError> {
            Ok(sealed.iter().map(|b| b ^ self.key).collect())
        }
        fn tag_for_mode(&self, mode_tag: u8, bytes: &[u8]) -> Option<Digest> {
            if mode_tag > 1 {
                return None;
            }
            let mut d = [0u8; 32];
            let mut acc = self.key.wrapping_add(mode_tag);
            for (i, b) in bytes.iter().enumerate() {
                acc = acc.wrapping_mul(31).wrapping_add(*b).wrapping_add(i as u8);
                d[i % 32] ^= acc;
            }
            Some(d)
        }
    }

    const MAGIC: [u8; 8] = *b"TESTMAGC";

    #[test]
    fn roundtrip_and_tamper() {
        let s = ToySealer { mode: 1, key: 7 };
        let bytes = encode_slot(&s, &MAGIC, 42, b"hello body");
        let (seq, body) = decode_slot(&s, &MAGIC, "test", &bytes).unwrap().unwrap();
        assert_eq!(seq, 42);
        assert_eq!(body, b"hello body");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(
                decode_slot(&s, &MAGIC, "test", &bad).is_err(),
                "flip at {i} accepted"
            );
        }
        assert!(matches!(decode_slot(&s, &MAGIC, "test", &[]), Ok(None)));
    }

    #[test]
    fn mode_mismatch_vs_tamper() {
        let a = ToySealer { mode: 0, key: 7 };
        let b = ToySealer { mode: 1, key: 7 };
        let bytes = encode_slot(&a, &MAGIC, 1, b"x");
        // Authentic other-mode slot: mismatch, not tampering.
        assert!(matches!(
            decode_slot(&b, &MAGIC, "test", &bytes),
            Err(SlotError::ModeMismatch)
        ));
        // Forged mode byte: MAC fails under the claimed mode ⇒ tamper.
        let mut forged = bytes.clone();
        forged[16] = 1;
        assert!(matches!(
            decode_slot(&b, &MAGIC, "test", &forged),
            Err(SlotError::Tamper(_))
        ));
        // Unknown mode byte ⇒ tamper.
        forged[16] = 9;
        assert!(matches!(
            decode_slot(&a, &MAGIC, "test", &forged),
            Err(SlotError::Tamper(_))
        ));
    }

    #[test]
    fn pair_arbitration() {
        let mem = MemStore::new();
        let s = ToySealer { mode: 1, key: 3 };
        let pair = SlotPair::new(&mem, MAGIC, ["t.a", "t.b"], "test");
        assert!(matches!(pair.read_best(&s), Err(SlotError::Missing)));
        assert!(!pair.exists().unwrap());
        pair.write(&s, 1, b"one").unwrap();
        pair.write(&s, 2, b"two").unwrap();
        assert!(pair.exists().unwrap());
        let (seq, body) = pair.read_best(&s).unwrap();
        assert_eq!((seq, body.as_slice()), (2, b"two".as_slice()));
        // Torn newest write falls back to the older slot.
        pair.write(&s, 3, b"three").unwrap();
        mem.corrupt("t.b", 10, 3).unwrap();
        let (seq, body) = pair.read_best(&s).unwrap();
        assert_eq!((seq, body.as_slice()), (2, b"two".as_slice()));
        // Both slots bad: tamper, not missing.
        mem.corrupt("t.a", 10, 3).unwrap();
        assert!(matches!(
            pair.read_best(&s),
            Err(SlotError::Tamper(_) | SlotError::ModeMismatch)
        ));
    }
}
