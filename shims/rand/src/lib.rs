//! Offline shim for the `rand` crate.
//!
//! Implements only what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer ranges
//! (half-open and inclusive). The generator is xoshiro256**, seeded through
//! SplitMix64 — high-quality, deterministic, and dependency-free. It is NOT
//! the same stream as the real `rand::StdRng` (ChaCha12), which only matters
//! if byte-identical workloads across rand versions were required; the
//! benchmarks here only need "same seed ⇒ same stream within this build".

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values a range can be uniformly sampled from (shim-internal).
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Sample uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + Sized> Rng for R {}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-99_999i64..=99_999);
            assert!((-99_999..=99_999).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..10).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..10).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
