//! Offline shim for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, plus strategies for integer
//!   ranges, tuples, [`strategy::Just`], and weighted unions;
//! * [`arbitrary::any`] for the primitive types and [`sample::Index`];
//! * [`collection::vec`] and [`array::uniform16`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`test_runner::Config`] (aliased `ProptestConfig`) with a `cases` knob.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the seed and case number so it can be replayed deterministically), and no
//! persistence of regression files. Generation is deterministic per test:
//! the RNG is seeded from the test's name, so a given build always explores
//! the same cases.

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies of one value type (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        options: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` pairs.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { options, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum covered above")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Marker for [`any`](crate::arbitrary::any)-generatable types.
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::AnyStrategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" generator.
    pub trait Arbitrary {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index(rng.next_u64() as usize)
        }
    }
}

pub mod sample {
    /// A position drawn uniformly once the container length is known.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Resolve against a container of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty container");
            self.0 % len
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)` — as in proptest.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `[T; 16]` from an element strategy.
    pub struct UniformArray16<S>(S);

    /// `uniform16(element)` — as in proptest.
    pub fn uniform16<S: Strategy>(element: S) -> UniformArray16<S> {
        UniformArray16(element)
    }

    impl<S: Strategy> Strategy for UniformArray16<S> {
        type Value = [S::Value; 16];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 16] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }
}

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic generator handed to strategies (xoshiro256**).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a test name; the same name always yields the same
        /// case sequence.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with ($cfg) $($rest)* }
    };
    (@with ($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = || { $body };
                    if let Err(e) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest case {case}/{} of {} failed (deterministic; rerun reproduces it)",
                            config.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Weighted strategy choice: `prop_oneof![3 => a, 1 => b]` (weights
/// optional; bare `prop_oneof![a, b]` weights everything equally).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert within a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 1usize..10, pair in (0u32..5, -3i64..=3)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!((-3..=3).contains(&pair.1));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec((0u8..255).prop_map(|b| b as u16), 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 255));
        }

        #[test]
        fn oneof_covers_all_arms(picks in crate::collection::vec(
            prop_oneof![4 => Just(0u8), 1 => Just(1u8), 1 => 2u8..4], 200..201)) {
            prop_assert!(picks.iter().all(|&p| p < 4));
        }

        #[test]
        fn arrays_and_index(key in crate::array::uniform16(any::<u8>()), ix in any::<crate::sample::Index>()) {
            prop_assert_eq!(key.len(), 16);
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u8..200, 1..50);
        let mut r1 = crate::test_runner::TestRng::from_name("fixed");
        let mut r2 = crate::test_runner::TestRng::from_name("fixed");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
