//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny subset of `parking_lot`'s API it actually uses:
//! [`Mutex`], [`RwLock`], [`Condvar`] (with `wait_until`), and the mapped
//! read/write guards. Semantics match `parking_lot`: guards are returned
//! directly (no poisoning), and `Condvar::wait_until` takes a deadline.
//!
//! Implementation: each lock pairs a `std::sync` lock of `()` (for the
//! blocking protocol) with an `UnsafeCell<T>` holding the data. Guards keep
//! the raw std guard alive and expose the data through a pointer, which is
//! what makes `RwLockReadGuard::map` / `RwLockWriteGuard::map` expressible
//! without parking_lot's raw-lock machinery.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with `parking_lot`-style (non-poisoning) API.
pub struct Mutex<T: ?Sized> {
    raw: StdMutex<()>,
    data: UnsafeCell<T>,
}

// Safety: identical bounds to std::sync::Mutex — the raw lock serializes all
// access to `data`.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            raw: StdMutex::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let raw = match self.raw.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard {
            _raw: Some(raw),
            lock: self,
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.raw.try_lock() {
            Ok(g) => Some(MutexGuard {
                _raw: Some(g),
                lock: self,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                _raw: Some(p.into_inner()),
                lock: self,
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait_until can temporarily hand the raw guard to
    // the std condvar and put the reacquired one back.
    _raw: Option<std::sync::MutexGuard<'a, ()>>,
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: holding the raw guard grants exclusive access to `data`.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.lock.data.get() }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable compatible with this module's [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let raw = guard._raw.take().expect("guard always holds the raw lock");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (raw, result) = match self.inner.wait_timeout(raw, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard._raw = Some(raw);
        WaitTimeoutResult(result.timed_out())
    }

    /// Block until notified.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let raw = guard._raw.take().expect("guard always holds the raw lock");
        let raw = match self.inner.wait(raw) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard._raw = Some(raw);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with `parking_lot`-style (non-poisoning) API.
pub struct RwLock<T: ?Sized> {
    raw: StdRwLock<()>,
    data: UnsafeCell<T>,
}

// Safety: same bounds as std::sync::RwLock.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            raw: StdRwLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let raw = match self.raw.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockReadGuard {
            _raw: raw,
            data: self.data.get(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let raw = match self.raw.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        RwLockWriteGuard {
            _raw: raw,
            data: self.data.get(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockReadGuard<'a, ()>,
    data: *const T,
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Narrow the guard to a component of the protected data.
    pub fn map<U: ?Sized, F>(guard: Self, f: F) -> MappedRwLockReadGuard<'a, U>
    where
        F: FnOnce(&T) -> &U,
    {
        // Safety: the raw read guard keeps the data shared-borrowable for 'a.
        let mapped = f(unsafe { &*guard.data }) as *const U;
        MappedRwLockReadGuard {
            _raw: guard._raw,
            data: mapped,
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the raw guard holds the read lock.
        unsafe { &*self.data }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockWriteGuard<'a, ()>,
    data: *mut T,
}

impl<'a, T: ?Sized> RwLockWriteGuard<'a, T> {
    /// Narrow the guard to a component of the protected data.
    pub fn map<U: ?Sized, F>(guard: Self, f: F) -> MappedRwLockWriteGuard<'a, U>
    where
        F: FnOnce(&mut T) -> &mut U,
    {
        // Safety: the raw write guard keeps the data exclusively held for 'a.
        let mapped = f(unsafe { &mut *guard.data }) as *mut U;
        MappedRwLockWriteGuard {
            _raw: guard._raw,
            data: mapped,
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the raw guard holds the write lock.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.data }
    }
}

/// A read guard narrowed by [`RwLockReadGuard::map`].
pub struct MappedRwLockReadGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockReadGuard<'a, ()>,
    data: *const T,
}

impl<T: ?Sized> Deref for MappedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the raw guard holds the read lock.
        unsafe { &*self.data }
    }
}

/// A write guard narrowed by [`RwLockWriteGuard::map`].
pub struct MappedRwLockWriteGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockWriteGuard<'a, ()>,
    data: *mut T,
}

impl<T: ?Sized> Deref for MappedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: the raw guard holds the write lock.
        unsafe { &*self.data }
    }
}

impl<T: ?Sized> DerefMut for MappedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as above.
        unsafe { &mut *self.data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_map() {
        let l = RwLock::new((1u32, String::from("x")));
        let s = RwLockReadGuard::map(l.read(), |t| &t.1);
        assert_eq!(&*s, "x");
        drop(s);
        let mut n = RwLockWriteGuard::map(l.write(), |t| &mut t.0);
        *n = 7;
        drop(n);
        assert_eq!(l.read().0, 7);
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (m.clone(), c.clone());
        let t = std::thread::spawn(move || {
            let mut done = m2.lock();
            while !*done {
                let r = c2.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out(), "should be notified, not time out");
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        c.notify_all();
        t.join().unwrap();
    }
}
