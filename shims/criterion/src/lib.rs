//! Offline shim for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` (+ `throughput`/`finish`),
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple measurement
//! loop (warm-up, then timed batches) and plain-text output. No statistics,
//! plots, or baselines; good enough to run and eyeball the benches offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, as in criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark context handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Attach a throughput to subsequent benches (reported as rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<I: IntoBenchmarkId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Finish the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a bench id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

/// Units processed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` over this batch's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    // Warm up and estimate a batch size targeting ~50ms of measurement.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut best = Duration::MAX;
    for _ in 0..3 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        if per < best {
            best = per;
        }
    }
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let mbps = n as f64 / best.as_secs_f64() / 1e6;
            format!("  ({mbps:.1} MB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / best.as_secs_f64();
            format!("  ({eps:.0} elem/s)")
        }
        None => String::new(),
    };
    println!("bench {name:<50} {best:>12.3?}/iter{rate}");
}

/// Collect benchmark functions into a group runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(1 + 2)));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| ()));
        group.finish();
    }
}
