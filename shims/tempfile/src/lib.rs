//! Offline shim for the `tempfile` crate: just [`tempdir`] / [`TempDir`],
//! which is all this workspace uses. Directories are created under the
//! system temp dir with a process-unique, monotonically numbered name and
//! removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A directory deleted (recursively) when the handle drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consume the handle without deleting the directory.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Create a fresh temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    let base = std::env::temp_dir();
    loop {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".tdb-tmp-{}-{n}", std::process::id()));
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        fs::write(path.join("f"), b"x").unwrap();
        fs::create_dir(path.join("sub")).unwrap();
        fs::write(path.join("sub/g"), b"y").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn distinct_dirs() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
